"""Baseline files: adopt upalint on a codebase with existing findings.

``repro lint --baseline upalint-baseline.json <paths>`` has ratchet
semantics:

* baseline file absent → record every current finding and exit 0 (the
  debt is acknowledged, not forgiven);
* baseline file present → findings whose fingerprints appear in it are
  filtered out; only *new* findings are reported and only new errors
  fail the build.

Fingerprints hash the finding's code, file, object and message — not
its line number — so unrelated edits that shift code up or down do not
invalidate the baseline, while any change to what is actually reported
(a new site, a different receiver) shows up as new.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, List, Set, Tuple

from repro.staticcheck.diagnostics import Diagnostic

FORMAT_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Stable, line-independent identity of one finding."""
    payload = "\x1f".join(
        (diag.code, diag.file, diag.obj, diag.message)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Record the current findings; returns how many were recorded."""
    records = {}
    for diag in diagnostics:
        records.setdefault(
            fingerprint(diag),
            {"code": diag.code, "file": diag.file,
             "obj": diag.obj, "message": diag.message},
        )
    document = {
        "format_version": FORMAT_VERSION,
        "tool": "upalint",
        "findings": dict(sorted(records.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(records)


def load_baseline(path: str) -> Set[str]:
    """The set of known fingerprints recorded at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline format in {path}: expected "
            f"format_version={FORMAT_VERSION}"
        )
    return set(document.get("findings", {}))


def apply_baseline(
    path: str, diagnostics: List[Diagnostic]
) -> Tuple[List[Diagnostic], bool]:
    """Filter known findings; returns (new_findings, wrote_baseline).

    When the file does not exist yet it is created from the current
    findings and *everything* is treated as known.
    """
    if not os.path.exists(path):
        write_baseline(path, diagnostics)
        return [], True
    known = load_baseline(path)
    fresh = [d for d in diagnostics if fingerprint(d) not in known]
    return fresh, False
