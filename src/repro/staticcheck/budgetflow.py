"""Budget-flow pass: accounting checks over entry-point scripts.

UPA's privacy guarantee is only as good as its accounting: every
released output must be charged to a :class:`PrivacyAccountant`, and
epsilon/delta literals must be valid.  This pass parses workload /
example / analyst scripts (no imports, no execution) and reports:

* ``UPA201`` — a ``UPASession`` constructed without ``accountant=``
  whose ``run()``/``run_sql()`` results are therefore never charged;
* ``UPA202`` — literal epsilon/delta arguments that are non-positive,
  non-finite, or out of range wherever they appear (``run``,
  ``run_sql``, ``UPAConfig``, ``PrivacyAccountant``, ``charge``);
* ``UPA203`` — evaluation-only ``UPAResult`` fields (``raw_output``,
  ``plain_output``, neighbour outputs) flowing into ``print`` — fine
  in benchmarks, but those values are *not* differentially private.

The literal and print checks are flow-insensitive AST walks.  Session
tracking runs on the shared dataflow framework
(:mod:`repro.staticcheck.cfg` + :mod:`repro.staticcheck.dataflow`):
each scope's CFG is solved to a fixed point over a two-label lattice
(``charged`` / ``uncharged``), so a session rebound on one branch of
an ``if`` merges correctly at the join instead of depending on source
order.  A release is flagged only when *every* path reaching it holds
an uncharged session (``uncharged`` present, ``charged`` absent) —
the pass stays name-based and silent where it cannot resolve the
receiver: a linter must never cry wolf on code it does not understand.
"""

from __future__ import annotations

import ast
import math
import os
from typing import FrozenSet, Iterable, List, Mapping, Optional

from repro.staticcheck.cfg import BasicBlock, build_cfg
from repro.staticcheck.dataflow import Env, env_join, env_set, solve_forward
from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

PASS = "budget"

#: UPAResult fields that exist only for evaluation, never for release.
NON_PRIVATE_FIELDS = {
    "raw_output",
    "plain_output",
    "removal_outputs",
    "addition_outputs",
    "neighbour_outputs",
    "partition_outputs",
}

#: keyword names holding an epsilon at each call site.
_EPSILON_KEYWORDS = {"epsilon", "total_epsilon", "epsilon_per_step"}
_DELTA_KEYWORDS = {"delta", "total_delta"}

#: session-accounting labels (the pass's tiny lattice).
_UNCHARGED = frozenset({"uncharged"})
_CHARGED = frozenset({"charged"})


def _literal_number(node: ast.AST) -> Optional[float]:
    """The float value of a numeric literal (handles unary +/-)."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called function ('UPASession', 'run', ...)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _session_has_accountant(call: ast.Call) -> bool:
    """Does this ``UPASession(...)`` construction pass an accountant?"""
    for kw in call.keywords:
        if kw.arg == "accountant" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    # Positional form UPASession(config, engine, enforcer, accountant).
    return len(call.args) >= 4


class _BudgetPass:
    def __init__(self, file: str):
        self.file = file
        self.diagnostics: List[Diagnostic] = []

    # -- helpers ------------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST, *,
              hint: str = "") -> None:
        self.diagnostics.append(
            make_diagnostic(
                code, message, file=self.file,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                obj=os.path.basename(self.file), hint=hint, pass_name=PASS,
            )
        )

    def _check_privacy_literals(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg in _EPSILON_KEYWORDS:
                value = _literal_number(kw.value)
                if value is None:
                    continue
                if value <= 0 or not math.isfinite(value):
                    self._emit(
                        "UPA202",
                        f"epsilon literal {value!r} passed to "
                        f"{_call_name(node)}() must be a positive "
                        "finite number",
                        kw.value,
                        hint="epsilon is the privacy loss per release; "
                        "the paper's evaluation uses 0.1",
                    )
            elif kw.arg in _DELTA_KEYWORDS:
                value = _literal_number(kw.value)
                if value is None:
                    continue
                if value < 0 or value >= 1 or not math.isfinite(value):
                    self._emit(
                        "UPA202",
                        f"delta literal {value!r} passed to "
                        f"{_call_name(node)}() must lie in [0, 1)",
                        kw.value,
                        hint="delta is a failure probability; typical "
                        "values are <= 1/|dataset|",
                    )

    # -- flow-insensitive checks (literals, prints, inline sessions) --------

    def _walk_checks(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("run", "run_sql", "UPAConfig", "UPASession",
                        "PrivacyAccountant", "charge", "grouped_query"):
                self._check_privacy_literals(node)
            if name in ("run", "run_sql") and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if isinstance(receiver, ast.Call) and (
                    _call_name(receiver) == "UPASession"
                    and not _session_has_accountant(receiver)
                ):
                    self._emit(
                        "UPA201",
                        f"UPASession(...).{name}() releases an output "
                        "from a throwaway session with no "
                        "PrivacyAccountant",
                        node,
                        hint="pass accountant=PrivacyAccountant("
                        "total_epsilon=...) to UPASession",
                    )
            if name == "print":
                for arg in ast.walk(node):
                    if isinstance(arg, ast.Attribute) and (
                        arg.attr in NON_PRIVATE_FIELDS
                    ):
                        self._emit(
                            "UPA203",
                            f"printing UPAResult.{arg.attr}: this field "
                            "is evaluation-only and not differentially "
                            "private; never show it to an analyst",
                            arg,
                            hint="release noisy_output / noisy_scalar() "
                            "only",
                        )

    # -- flow-sensitive session tracking (on the shared CFG engine) ---------

    def _transfer(self, block: BasicBlock, env: Env) -> Env:
        for elem in block.elements:
            env = self._step(elem, env, report=False)
        return env

    def _step(self, elem: ast.AST, env: Env, *, report: bool) -> Env:
        if report:
            self._report_element(elem, env)
        if isinstance(elem, ast.Assign):
            value = elem.value
            if isinstance(value, ast.Call) and \
                    _call_name(value) == "UPASession":
                labels = (_CHARGED if _session_has_accountant(value)
                          else _UNCHARGED)
                for target in elem.targets:
                    if isinstance(target, ast.Name):
                        env = env_set(env, target.id, labels)
            else:
                # Rebinding a tracked name to anything else clears it.
                for target in elem.targets:
                    if isinstance(target, ast.Name) and target.id in env:
                        env = env_set(env, target.id, frozenset())
        return env

    def _report_element(self, elem: ast.AST, env: Env) -> None:
        if isinstance(elem, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested scope: analyze with the enclosing bindings minus
            # anything the function's parameters shadow.
            params = {
                a.arg for a in (
                    list(elem.args.posonlyargs) + list(elem.args.args)
                    + list(elem.args.kwonlyargs)
                    + ([elem.args.vararg] if elem.args.vararg else [])
                    + ([elem.args.kwarg] if elem.args.kwarg else [])
                )
            }
            initial = {name: labels for name, labels in env.items()
                       if name not in params}
            self._flow_scope(elem.body, initial)
            return
        if isinstance(elem, (ast.For, ast.AsyncFor, ast.With,
                             ast.AsyncWith, ast.ClassDef)):
            return  # headers / opaque scopes hold no session calls
        for node in ast.walk(elem):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in ("run", "run_sql") or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            receiver = node.func.value
            if not isinstance(receiver, ast.Name):
                continue
            labels = env.get(receiver.id, frozenset())
            if "uncharged" in labels and "charged" not in labels:
                self._emit(
                    "UPA201",
                    f"{receiver.id}.{name}() releases an output, but "
                    f"{receiver.id} was constructed without a "
                    "PrivacyAccountant — the epsilon spend is never "
                    "charged against a total budget",
                    node,
                    hint="pass accountant=PrivacyAccountant("
                    "total_epsilon=...) to UPASession",
                )

    def _flow_scope(self, body: List[ast.stmt], initial: Env) -> Env:
        cfg = build_cfg(body)
        states = solve_forward(cfg, self._transfer, initial, env_join)
        for block in cfg.blocks_in_order():
            env = states[block.bid][0]
            for elem in block.elements:
                env = self._step(elem, env, report=True)
        return states[cfg.exit][0]

    def check_module(self, tree: ast.Module) -> List[Diagnostic]:
        self._walk_checks(tree)
        self._flow_scope(tree.body, {})
        return self.diagnostics


def check_source(
    source: str, filename: str = "<string>"
) -> List[Diagnostic]:
    """Run the budget-flow pass over Python source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            make_diagnostic(
                "UPA202",
                f"could not parse {filename}: {exc.msg}",
                file=filename,
                line=exc.lineno or 0,
                pass_name=PASS,
                hint="fix the syntax error to enable budget analysis",
            )
        ]
    return _BudgetPass(filename).check_module(tree)


def check_file(path: str) -> List[Diagnostic]:
    """Run the budget-flow pass over one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        rel = os.path.relpath(path)
    except ValueError:
        rel = path
    return check_source(source, rel)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".pytest_cache")
                ]
                found.extend(
                    os.path.join(root, f)
                    for f in files if f.endswith(".py")
                )
        elif path.endswith(".py"):
            found.append(path)
    return sorted(found)
