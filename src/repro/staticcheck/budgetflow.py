"""Budget-flow pass: AST checks over entry-point scripts.

UPA's privacy guarantee is only as good as its accounting: every
released output must be charged to a :class:`PrivacyAccountant`, and
epsilon/delta literals must be valid.  This pass parses workload /
example / analyst scripts (no imports, no execution) and reports:

* ``UPA201`` — a ``UPASession`` constructed without ``accountant=``
  whose ``run()``/``run_sql()`` results are therefore never charged;
* ``UPA202`` — literal epsilon/delta arguments that are non-positive,
  non-finite, or out of range wherever they appear (``run``,
  ``run_sql``, ``UPAConfig``, ``PrivacyAccountant``, ``charge``);
* ``UPA203`` — evaluation-only ``UPAResult`` fields (``raw_output``,
  ``plain_output``, neighbour outputs) flowing into ``print`` — fine
  in benchmarks, but those values are *not* differentially private.

The pass is intraprocedural and name-based on purpose: it follows the
overwhelmingly common pattern (``session = UPASession(...)`` then
``session.run(...)``) and stays silent where it cannot resolve the
receiver — a linter must never cry wolf on code it does not understand.
"""

from __future__ import annotations

import ast
import math
import os
from typing import Iterable, List, Optional, Set

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

PASS = "budget"

#: UPAResult fields that exist only for evaluation, never for release.
NON_PRIVATE_FIELDS = {
    "raw_output",
    "plain_output",
    "removal_outputs",
    "addition_outputs",
    "neighbour_outputs",
    "partition_outputs",
}

#: keyword names holding an epsilon at each call site.
_EPSILON_KEYWORDS = {"epsilon", "total_epsilon", "epsilon_per_step"}
_DELTA_KEYWORDS = {"delta", "total_delta"}


def _literal_number(node: ast.AST) -> Optional[float]:
    """The float value of a numeric literal (handles unary +/-)."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called function ('UPASession', 'run', ...)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _BudgetVisitor(ast.NodeVisitor):
    def __init__(self, file: str):
        self.file = file
        self.diagnostics: List[Diagnostic] = []
        #: variable names bound to a UPASession WITHOUT an accountant.
        self.uncharged_sessions: Set[str] = set()
        #: names bound to sessions WITH an accountant (never flagged).
        self.charged_sessions: Set[str] = set()

    # -- helpers ------------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST, *,
              hint: str = "") -> None:
        self.diagnostics.append(
            make_diagnostic(
                code, message, file=self.file,
                line=getattr(node, "lineno", 0),
                obj=os.path.basename(self.file), hint=hint, pass_name=PASS,
            )
        )

    def _check_privacy_literals(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg in _EPSILON_KEYWORDS:
                value = _literal_number(kw.value)
                if value is None:
                    continue
                if value <= 0 or not math.isfinite(value):
                    self._emit(
                        "UPA202",
                        f"epsilon literal {value!r} passed to "
                        f"{_call_name(node)}() must be a positive "
                        "finite number",
                        kw.value,
                        hint="epsilon is the privacy loss per release; "
                        "the paper's evaluation uses 0.1",
                    )
            elif kw.arg in _DELTA_KEYWORDS:
                value = _literal_number(kw.value)
                if value is None:
                    continue
                if value < 0 or value >= 1 or not math.isfinite(value):
                    self._emit(
                        "UPA202",
                        f"delta literal {value!r} passed to "
                        f"{_call_name(node)}() must lie in [0, 1)",
                        kw.value,
                        hint="delta is a failure probability; typical "
                        "values are <= 1/|dataset|",
                    )

    def _session_has_accountant(self, call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "accountant" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return True
        # Positional form UPASession(config, engine, enforcer, accountant).
        return len(call.args) >= 4

    # -- visitors -----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Call) and _call_name(value) == "UPASession":
            charged = self._session_has_accountant(value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    (self.charged_sessions if charged
                     else self.uncharged_sessions).add(target.id)
                    (self.uncharged_sessions if charged
                     else self.charged_sessions).discard(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in ("run", "run_sql", "UPAConfig", "UPASession",
                    "PrivacyAccountant", "charge", "grouped_query"):
            self._check_privacy_literals(node)
        if name in ("run", "run_sql") and isinstance(
            node.func, ast.Attribute
        ):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and (
                receiver.id in self.uncharged_sessions
            ):
                self._emit(
                    "UPA201",
                    f"{receiver.id}.{name}() releases an output, but "
                    f"{receiver.id} was constructed without a "
                    "PrivacyAccountant — the epsilon spend is never "
                    "charged against a total budget",
                    node,
                    hint="pass accountant=PrivacyAccountant("
                    "total_epsilon=...) to UPASession",
                )
            elif isinstance(receiver, ast.Call) and (
                _call_name(receiver) == "UPASession"
                and not self._session_has_accountant(receiver)
            ):
                self._emit(
                    "UPA201",
                    f"UPASession(...).{name}() releases an output from "
                    "a throwaway session with no PrivacyAccountant",
                    node,
                    hint="pass accountant=PrivacyAccountant("
                    "total_epsilon=...) to UPASession",
                )
        if name == "print":
            for arg in ast.walk(node):
                if isinstance(arg, ast.Attribute) and (
                    arg.attr in NON_PRIVATE_FIELDS
                ):
                    self._emit(
                        "UPA203",
                        f"printing UPAResult.{arg.attr}: this field is "
                        "evaluation-only and not differentially "
                        "private; never show it to an analyst",
                        arg,
                        hint="release noisy_output / noisy_scalar() "
                        "only",
                    )
        self.generic_visit(node)


def check_source(
    source: str, filename: str = "<string>"
) -> List[Diagnostic]:
    """Run the budget-flow pass over Python source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            make_diagnostic(
                "UPA202",
                f"could not parse {filename}: {exc.msg}",
                file=filename,
                line=exc.lineno or 0,
                pass_name=PASS,
                hint="fix the syntax error to enable budget analysis",
            )
        ]
    visitor = _BudgetVisitor(filename)
    visitor.visit(tree)
    return visitor.diagnostics


def check_file(path: str) -> List[Diagnostic]:
    """Run the budget-flow pass over one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        rel = os.path.relpath(path)
    except ValueError:
        rel = path
    return check_source(source, rel)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".pytest_cache")
                ]
                found.extend(
                    os.path.join(root, f)
                    for f in files if f.endswith(".py")
                )
        elif path.endswith(".py"):
            found.append(path)
    return sorted(found)
