"""Query-purity pass: AST inspection of MapReduceQuery monoid methods.

UPA's pipeline evaluates ``map_record`` once per record and then reuses
every mapped element and partial aggregate across ~2n sampled
neighbouring datasets (prefix/suffix folds, ``R(M(S'))`` reuse).  That
only computes ``f`` correctly if the monoid methods are *pure*:

* deterministic — no ``random``/``time``/``datetime.now``/``uuid``;
* stateless — no mutation of ``self``, globals, or closures;
* non-destructive — ``combine`` must not mutate its arguments in
  place (the right argument is always borrowed; the left argument is
  reused by the prefix/suffix folds too);
* structurally commutative — ``combine`` applying ``-``/``/`` across
  its two arguments cannot form a commutative monoid.

``build_aux`` additionally must not read the protected table (aux is
computed once from x, not per neighbour) unless the class explicitly
declares ``aux_reads_protected = True`` and its semantics stay linear
in protected records (e.g. KMeans' deterministic center init).

Everything here is best-effort static analysis over
``inspect.getsource``: methods whose source is unavailable produce an
``UPA006`` info diagnostic and are skipped, never crash the lint.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.query import MapReduceQuery
from repro.staticcheck.diagnostics import (
    Diagnostic,
    Severity,
    make_diagnostic,
)

PASS = "purity"

#: monoid methods inspected on every query class.
MONOID_METHODS = ("map_record", "zero", "combine", "finalize", "build_aux")

#: batched kernels and the scalar method defining each one's semantics.
#: validate_monoid cross-checks an overridden kernel against the scalar
#: path, which only means something if the scalar side is the query's
#: own (the prefix/suffix and combine kernels both re-implement the
#: reducer, hence ``combine``).
BATCH_PARTNERS = {
    "map_batch": "map_record",
    "prefix_suffix_batch": "combine",
    "combine_batch": "combine",
    "finalize_batch": "finalize",
    "fold_batch": "combine",
}

#: module roots whose calls are nondeterministic.
_NONDET_ROOTS = {"random", "uuid", "secrets", "time"}

#: attribute names that read the clock regardless of the module alias.
_CLOCK_ATTRS = {"now", "utcnow", "today"}

#: method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse",
    "fill", "resize", "put", "itemset",
}

#: non-commutative binary operators (commutativity heuristic).
_NON_COMMUTATIVE_OPS = (
    ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.MatMult,
)

#: repro.obs entry points a monoid method has no business calling.
_OBS_NAMES = {
    "trace", "get_tracer", "set_tracer", "use_tracer", "current_span",
    "Tracer", "PrivacyLedger", "make_entry",
}

#: live-monitoring machinery that owns threads/sockets (UPA013):
#: constructing either class, or calling a .serve() method, inside a
#: monoid method would spawn one server/profiler per neighbour replay.
_SERVER_NAMES = {"ObservabilityServer", "SamplingProfiler"}
_SERVER_METHODS = {"serve"}


def _root_name(node: ast.AST) -> Optional[str]:
    """The base Name id of an Attribute/Subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _unwrap_callable(func):
    """Peel decorator layers down to the innermost plain function.

    ``inspect.unwrap`` only follows ``__wrapped__`` (functools.wraps);
    methods built from ``functools.partial`` / ``partialmethod`` hide
    the real function behind ``.func``, and bound/class methods behind
    ``__func__`` — none of which ``inspect.getsourcelines`` can read,
    so UPA006 used to misreport them as "source unavailable".
    """
    seen = set()
    while id(func) not in seen:
        seen.add(id(func))
        for attr in ("__wrapped__", "__func__", "func"):
            inner = getattr(func, attr, None)
            if callable(inner):
                func = inner
                break
        else:
            break
    return func


class _MethodSource:
    """Parsed source of one method with absolute line mapping."""

    def __init__(self, func, owner_name: str, method_name: str):
        self.owner_name = owner_name
        self.method_name = method_name
        self.func = func
        raw = _unwrap_callable(func)
        lines, start = inspect.getsourcelines(raw)
        self.start_line = start
        filename = inspect.getsourcefile(raw) or ""
        try:
            self.file = os.path.relpath(filename)
        except ValueError:  # different drive on windows
            self.file = filename
        tree = ast.parse(textwrap.dedent("".join(lines)))
        node = tree.body[0]
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise TypeError(f"{method_name} source is not a function def")
        self.node = node
        args = list(node.args.posonlyargs) + list(node.args.args)
        if args and args[0].arg in ("self", "cls"):
            args = args[1:]
        self.params = [a.arg for a in args]

    def line_of(self, node: ast.AST) -> int:
        return self.start_line + getattr(node, "lineno", 1) - 1

    def where(self) -> str:
        return f"{self.owner_name}.{self.method_name}"


def _resolve_method(cls: type, name: str):
    """The function implementing ``name``, skipping the abstract base.

    Returns None when the class inherits MapReduceQuery's default
    (raise NotImplementedError / return None) — nothing to analyze.
    """
    for klass in cls.__mro__:
        if klass in (MapReduceQuery, object):
            return None
        func = klass.__dict__.get(name)
        if func is not None:
            if isinstance(func, (staticmethod, classmethod)):
                func = func.__func__
            return func
    return None


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_nondeterminism(src: _MethodSource) -> Iterable[Diagnostic]:
    for node in ast.walk(src.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        reason = None
        if isinstance(func, ast.Attribute):
            root = _root_name(func)
            if root in _NONDET_ROOTS:
                reason = f"calls {root}.{func.attr}()"
            elif func.attr in _CLOCK_ATTRS:
                reason = f"reads the clock via .{func.attr}()"
            elif func.attr == "urandom" and root == "os":
                reason = "calls os.urandom()"
            else:
                # numpy.random.* through any attribute chain.
                chain = []
                probe: ast.AST = func
                while isinstance(probe, ast.Attribute):
                    chain.append(probe.attr)
                    probe = probe.value
                if isinstance(probe, ast.Name) and "random" in chain and (
                    probe.id in ("np", "numpy")
                ):
                    reason = f"calls {probe.id}.random.{chain[0]}()"
        if reason:
            yield make_diagnostic(
                "UPA001",
                f"{src.where()} {reason}; monoid methods must be "
                "deterministic (UPA replays them across ~2n sampled "
                "neighbouring datasets)",
                file=src.file,
                line=src.line_of(node),
                obj=src.owner_name,
                hint="move randomness to sample_domain_record() or "
                "inject it through the dataset, never the monoid",
                pass_name=PASS,
            )


def _check_state_mutation(src: _MethodSource) -> Iterable[Diagnostic]:
    for node in ast.walk(src.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            yield make_diagnostic(
                "UPA002",
                f"{src.where()} declares `{kind} "
                f"{', '.join(node.names)}`; monoid methods must not "
                "write shared state (folds run in any order on any "
                "partition)",
                file=src.file,
                line=src.line_of(node),
                obj=src.owner_name,
                hint="thread state through the monoid element or aux",
                pass_name=PASS,
            )
            continue
        targets: Sequence[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,) if node.target is not None else ()
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, (ast.Attribute, ast.Subscript)) and (
                    _root_name(leaf) == "self"
                ):
                    yield make_diagnostic(
                        "UPA002",
                        f"{src.where()} assigns to an attribute of "
                        "self; monoid methods must be stateless",
                        file=src.file,
                        line=src.line_of(node),
                        obj=src.owner_name,
                        hint="compute in build_aux() (once per run) or "
                        "carry the value inside the monoid element",
                        pass_name=PASS,
                    )
                    break
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS and isinstance(
                node.func.value, (ast.Attribute, ast.Subscript)
            ) and _root_name(node.func.value) == "self":
                yield make_diagnostic(
                    "UPA002",
                    f"{src.where()} calls the mutating method "
                    f".{node.func.attr}() on an attribute of self",
                    file=src.file,
                    line=src.line_of(node),
                    obj=src.owner_name,
                    hint="monoid methods must not accumulate into self",
                    pass_name=PASS,
                )


def _argument_mutations(
    src: _MethodSource, param: str
) -> Iterable[Tuple[ast.AST, str]]:
    """Yield (node, description) for statements that mutate ``param``."""
    for node in ast.walk(src.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    _root_name(target) == param
                ):
                    yield node, f"assigns into `{param}[...]`"
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                _root_name(target) == param
            ):
                yield node, f"augments `{param}[...]` in place"
            elif isinstance(target, ast.Name) and target.id == param:
                yield node, (
                    f"augments `{param}` with an in-place operator "
                    "(mutates lists/ndarrays)"
                )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if _root_name(target) == param and isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ):
                    yield node, f"deletes from `{param}`"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and (
                func.attr in _MUTATOR_METHODS
                and _root_name(func.value) == param
            ):
                yield node, f"calls `{param}.{func.attr}(...)`"
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name) and (
                    kw.value.id == param
                ):
                    yield node, f"writes into `{param}` via out={param}"


def _check_combine(src: _MethodSource) -> Iterable[Diagnostic]:
    if len(src.params) < 2:
        return
    left, right = src.params[0], src.params[1]
    for node, what in _argument_mutations(src, right):
        yield make_diagnostic(
            "UPA003",
            f"{src.where()} {what}: combine's right argument is always "
            "borrowed — the union-preserving reduce reuses every mapped "
            "element across prefix/suffix folds",
            file=src.file,
            line=src.line_of(node),
            obj=src.owner_name,
            hint="build and return a fresh element "
            "(e.g. `return a + b`, not `b += a`)",
            pass_name=PASS,
        )
    for node, what in _argument_mutations(src, left):
        yield make_diagnostic(
            "UPA003",
            f"{src.where()} {what}: the prefix/suffix folds also reuse "
            "left-hand aggregates, so mutating the left argument "
            "corrupts later neighbour outputs",
            severity=Severity.WARNING,
            file=src.file,
            line=src.line_of(node),
            obj=src.owner_name,
            hint="return a fresh element instead of mutating either "
            "argument",
            pass_name=PASS,
        )
    # Commutativity heuristic: a - b style expressions across params.
    for node in ast.walk(src.node):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _NON_COMMUTATIVE_OPS
        ):
            lhs, rhs = _names_in(node.left), _names_in(node.right)
            crosses = (left in lhs and right in rhs) or (
                right in lhs and left in rhs
            )
            if crosses:
                op = type(node.op).__name__
                yield make_diagnostic(
                    "UPA004",
                    f"{src.where()} combines its arguments with the "
                    f"non-commutative operator {op}; the reducer must "
                    "be a commutative monoid (partial aggregates merge "
                    "in partition-dependent order)",
                    file=src.file,
                    line=src.line_of(node),
                    obj=src.owner_name,
                    hint="restructure the element so combine is a sum/"
                    "max/union; run validate_monoid() to confirm",
                    pass_name=PASS,
                )


def _obs_call_reason(node: ast.Call) -> Optional[str]:
    """Why ``node`` looks like a repro.obs call, or None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _OBS_NAMES:
        return f"calls {func.id}()"
    if isinstance(func, ast.Attribute):
        chain = []
        probe: ast.AST = func
        while isinstance(probe, ast.Attribute):
            chain.append(probe.attr)
            probe = probe.value
        chain.reverse()  # e.g. repro.obs.trace -> ["obs", "trace"]
        if isinstance(probe, ast.Name):
            dotted = ".".join([probe.id] + chain)
            if probe.id == "obs" or ".obs." in f".{dotted}.":
                return f"calls {dotted}()"
            if chain[-1] in _OBS_NAMES and probe.id in (
                "tracing", "ledger", "obs",
            ):
                return f"calls {dotted}()"
    return None


def _check_obs_calls(src: _MethodSource) -> Iterable[Diagnostic]:
    """UPA011: monoid methods instrumenting themselves via repro.obs."""
    suspects: List[Tuple[ast.AST, str]] = []
    decorator_nodes = {
        id(n) for deco in src.node.decorator_list for n in ast.walk(deco)
    }
    for node in ast.walk(src.node):
        if isinstance(node, ast.Call) and id(node) not in decorator_nodes:
            reason = _obs_call_reason(node)
            if reason:
                suspects.append((node, reason))
    for deco in src.node.decorator_list:
        probe: ast.AST = deco.func if isinstance(deco, ast.Call) else deco
        name = probe.attr if isinstance(probe, ast.Attribute) else (
            probe.id if isinstance(probe, ast.Name) else None
        )
        if name in _OBS_NAMES:
            suspects.append((deco, f"is decorated with @{name}"))
    for node, reason in suspects:
        yield make_diagnostic(
            "UPA011",
            f"{src.where()} {reason}; monoid methods replay ~2n times "
            "across sampled neighbouring datasets, so per-record "
            "instrumentation explodes trace volume and can record "
            "non-private intermediate state",
            file=src.file,
            line=src.line_of(node),
            obj=src.owner_name,
            hint="remove the repro.obs call — the pipeline already "
            "traces the map/reduce phases and audits releases",
            pass_name=PASS,
        )


def _server_call_reason(node: ast.Call) -> Optional[str]:
    """Why ``node`` looks like it starts live-monitoring machinery."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SERVER_NAMES:
        return f"constructs {func.id}()"
    if isinstance(func, ast.Attribute):
        if func.attr in _SERVER_NAMES:
            dotted = _root_name(func)
            prefix = f"{dotted}." if dotted else ""
            return f"constructs {prefix}{func.attr}()"
        if func.attr in _SERVER_METHODS:
            dotted = _root_name(func)
            prefix = f"{dotted}." if dotted else ""
            return f"calls {prefix}{func.attr}()"
    return None


def _check_server_calls(src: _MethodSource) -> Iterable[Diagnostic]:
    """UPA013: monoid methods starting a server or profiler.

    Same contract as UPA011, one level worse: where an obs *call*
    records a span, a server/profiler owns a daemon thread and (for the
    server) a listening socket — one per neighbour replay.
    """
    for node in ast.walk(src.node):
        if not isinstance(node, ast.Call):
            continue
        reason = _server_call_reason(node)
        if reason:
            yield make_diagnostic(
                "UPA013",
                f"{src.where()} {reason}; monoid methods replay ~2n "
                "times across sampled neighbouring datasets, so each "
                "replay would spawn another server/profiler thread "
                "(and, for the server, bind another socket)",
                file=src.file,
                line=src.line_of(node),
                obj=src.owner_name,
                hint="start live monitoring once, outside the query: "
                "UPASession.serve(), EngineContext.serve(), or "
                "`repro run --serve PORT`",
                pass_name=PASS,
            )


_LOOP_NODES = (
    ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
    ast.GeneratorExp,
)


def _eval_calls(node: ast.AST) -> Iterable[ast.Call]:
    """``X.eval(...)`` attribute calls anywhere under ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "eval"
        ):
            yield sub


def _check_eval_loops(src: _MethodSource) -> Iterable[Diagnostic]:
    """UPA012: per-row ``Expression.eval`` in a hot path.

    ``map_record`` is itself the body of the ~2n-replay loop, so any
    ``.eval(`` call there is per-row; in the other monoid methods only
    calls nested inside a loop or comprehension are flagged.
    """
    if src.method_name == "map_record":
        suspects = list(_eval_calls(src.node))
    else:
        suspects = []
        seen: set = set()
        for node in ast.walk(src.node):
            if isinstance(node, _LOOP_NODES):
                for call in _eval_calls(node):
                    if id(call) not in seen:
                        seen.add(id(call))
                        suspects.append(call)
    for call in suspects:
        yield make_diagnostic(
            "UPA012",
            f"{src.where()} interprets an expression AST per row "
            "(.eval() in a replayed hot path); the ~2n neighbour "
            "replays multiply this cost",
            file=src.file,
            line=src.line_of(call),
            obj=src.owner_name,
            hint="build a compiled closure once (repro.sql.compiler."
            "compile_expression / compile_predicate, or "
            "Expression.compiled()) and call it in the loop",
            pass_name=PASS,
        )


#: ast default-value nodes that denote a freshly built mutable container.
_MUTABLE_DEFAULT_NODES = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)

#: constructor names whose call as a default builds a mutable container.
_MUTABLE_DEFAULT_CALLS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
}


def _local_bindings(node: ast.AST) -> set:
    """Names bound inside a function body (stores, imports, handlers)."""
    bound: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            bound.add(sub.id)
        elif isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and sub is not node:
            bound.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _resolved_capture(src: _MethodSource, name: str) -> Any:
    """The runtime object ``name`` resolves to in the method's scope.

    Checks closure cells first, then the defining module's globals —
    the two places a captured (non-local, non-parameter) name can live.
    Returns None when unresolvable, which callers treat as "not
    provably a module" (i.e. still suspicious).
    """
    raw = _unwrap_callable(src.func)
    code = getattr(raw, "__code__", None)
    closure = getattr(raw, "__closure__", None)
    if code is not None and closure and name in code.co_freevars:
        try:
            return closure[code.co_freevars.index(name)].cell_contents
        except ValueError:  # empty cell
            return None
    return getattr(raw, "__globals__", {}).get(name)


def _mutable_default_params(node) -> set:
    """Parameter names whose default value is a mutable container."""
    import itertools as _it

    suspects: set = set()
    positional = list(node.args.posonlyargs) + list(node.args.args)
    defaults = node.args.defaults
    pairs = list(zip(positional[len(positional) - len(defaults):], defaults))
    pairs.extend(
        (a, d) for a, d in _it.zip_longest(
            node.args.kwonlyargs, node.args.kw_defaults
        ) if d is not None
    )
    for arg, default in pairs:
        if isinstance(default, _MUTABLE_DEFAULT_NODES) or (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in _MUTABLE_DEFAULT_CALLS
        ):
            suspects.add(arg.arg)
    return suspects


def _check_captured_state(src: _MethodSource) -> Iterable[Diagnostic]:
    """UPA015: mutation of state captured from outside the call.

    UPA002 flags mutation of ``self`` and explicit ``global``/
    ``nonlocal`` declarations; this check covers what those miss —
    writes through names that are neither parameters nor locals
    (``CACHE.append(x)``, ``STATE[key] = v`` on a free variable or
    module-level container) and mutation of mutable default arguments.
    Both accumulate across calls, and the incremental session path
    replays *cached* mapped elements instead of re-invoking the
    method, so any such accumulation diverges from a cold run and
    breaks append()'s bitwise-equivalence guarantee.
    """
    import inspect as _inspect

    node = src.node
    known = set(src.params) | _local_bindings(node)
    known.update(("self", "cls"))
    if node.args.vararg:
        known.add(node.args.vararg.arg)
    if node.args.kwarg:
        known.add(node.args.kwarg.arg)
    known.update(a.arg for a in node.args.kwonlyargs)

    def captured(name: Optional[str]) -> bool:
        if name is None or name in known:
            return False
        # A name resolving to a module (np, math, ...) is an API
        # surface, not captured state: `np.add(a, b)` is not `np`
        # being mutated.
        return not _inspect.ismodule(_resolved_capture(src, name))

    hint = (
        "thread state through the monoid element or aux; the "
        "incremental path replays cached elements, so cross-call "
        "accumulation never re-executes"
    )
    for sub in ast.walk(node):
        targets: Sequence[ast.AST] = ()
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = (sub.target,) if sub.target is not None else ()
        elif isinstance(sub, ast.Delete):
            targets = sub.targets
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if captured(root):
                    yield make_diagnostic(
                        "UPA015",
                        f"{src.where()} writes into the captured name "
                        f"`{root}`; state that outlives the call makes "
                        "the monoid unsafe on the incremental "
                        "append()/retire() path, which replays cached "
                        "mapped elements instead of re-running it",
                        file=src.file,
                        line=src.line_of(sub),
                        obj=src.owner_name,
                        hint=hint,
                        pass_name=PASS,
                    )
        if isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ) and sub.func.attr in _MUTATOR_METHODS:
            root = _root_name(sub.func.value)
            if captured(root):
                yield make_diagnostic(
                    "UPA015",
                    f"{src.where()} calls the mutating method "
                    f".{sub.func.attr}() on the captured name "
                    f"`{root}`; cross-call accumulation diverges from "
                    "a cold run once append()/retire() replays cached "
                    "elements",
                    file=src.file,
                    line=src.line_of(sub),
                    obj=src.owner_name,
                    hint=hint,
                    pass_name=PASS,
                )
    for param in _mutable_default_params(node):
        for sub, what in _argument_mutations(src, param):
            yield make_diagnostic(
                "UPA015",
                f"{src.where()} {what}, and `{param}` defaults to a "
                "mutable container — the default is created once and "
                "shared across every call, so it accumulates state "
                "exactly like a captured global",
                file=src.file,
                line=src.line_of(sub),
                obj=src.owner_name,
                hint="use None as the default and build the container "
                "inside the call",
                pass_name=PASS,
            )


def _check_build_aux(
    src: _MethodSource, protected: str, declared: bool
) -> Iterable[Diagnostic]:
    if not src.params:
        return
    tables_param = src.params[0]
    for node in ast.walk(src.node):
        hit = False
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ) and node.value.id == tables_param:
            key = node.slice
            if isinstance(key, ast.Constant) and key.value == protected:
                hit = bool(protected)
            elif isinstance(key, ast.Attribute) and (
                key.attr == "protected_table"
                and _root_name(key) == "self"
            ):
                hit = True
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr == "get" and isinstance(
            node.func.value, ast.Name
        ) and node.func.value.id == tables_param and node.args:
            key = node.args[0]
            if isinstance(key, ast.Constant) and key.value == protected:
                hit = bool(protected)
        if hit:
            severity = Severity.INFO if declared else None
            suffix = (
                " (declared via aux_reads_protected=True)"
                if declared else ""
            )
            yield make_diagnostic(
                "UPA005",
                f"{src.where()} reads the protected table "
                f"{protected or 'self.protected_table'!r}{suffix}; aux "
                "is built once from x, not per neighbour, so the "
                "query is only sound if it stays linear in protected "
                "records",
                severity=severity,
                file=src.file,
                line=src.line_of(node),
                obj=src.owner_name,
                hint="derive the structure from auxiliary tables, or "
                "set `aux_reads_protected = True` and document why "
                "linearity still holds",
                pass_name=PASS,
            )


def _check_batch_kernels(
    cls: type, owner: str
) -> Iterable[Diagnostic]:
    """UPA010: overridden batched kernels without their scalar partner,
    or batched kernels that mutate their input batches in place."""
    for batch_name, partner in BATCH_PARTNERS.items():
        func = _resolve_method(cls, batch_name)
        if func is None:
            continue
        try:
            src = _MethodSource(func, owner, batch_name)
        except (OSError, TypeError, SyntaxError, IndentationError) as exc:
            yield make_diagnostic(
                "UPA006",
                f"{owner}.{batch_name}: source unavailable "
                f"({type(exc).__name__}); batch-kernel checks skipped",
                obj=owner,
                pass_name=PASS,
            )
            continue
        yield from _check_obs_calls(src)
        yield from _check_server_calls(src)
        yield from _check_captured_state(src)
        if _resolve_method(cls, partner) is None:
            yield make_diagnostic(
                "UPA010",
                f"{src.where()} overrides a batched kernel but the "
                f"class never overrides {partner}(), the scalar method "
                "that defines its semantics; validate_monoid has no "
                "reference to cross-check the kernel against",
                file=src.file,
                line=src.line_of(src.node),
                obj=owner,
                hint=f"implement {partner}() alongside {batch_name}() "
                "and run validate_monoid() to confirm they agree",
                pass_name=PASS,
            )
        for param in src.params:
            for node, what in _argument_mutations(src, param):
                yield make_diagnostic(
                    "UPA010",
                    f"{src.where()} {what}: batched kernels borrow "
                    "their input batches — the session reuses the same "
                    "mapped batch across prefix/suffix folds, partition "
                    "outputs and the final aggregate, so in-place "
                    "writes corrupt later neighbour outputs",
                    file=src.file,
                    line=src.line_of(node),
                    obj=owner,
                    hint="allocate a fresh array (np.copy / arithmetic "
                    "that returns a new array) instead of writing into "
                    f"`{param}`",
                    pass_name=PASS,
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_query(query: Any) -> List[Diagnostic]:
    """Run the purity pass on a MapReduceQuery instance or class."""
    cls = query if isinstance(query, type) else type(query)
    owner = getattr(query, "name", "") or cls.__name__
    protected = str(getattr(query, "protected_table", "") or "")
    declared = bool(getattr(query, "aux_reads_protected", False))
    diagnostics: List[Diagnostic] = []
    for method_name in MONOID_METHODS:
        func = _resolve_method(cls, method_name)
        if func is None:
            continue
        try:
            src = _MethodSource(func, owner, method_name)
        except (OSError, TypeError, SyntaxError, IndentationError) as exc:
            diagnostics.append(
                make_diagnostic(
                    "UPA006",
                    f"{owner}.{method_name}: source unavailable "
                    f"({type(exc).__name__}); purity not verified",
                    obj=owner,
                    pass_name=PASS,
                )
            )
            continue
        diagnostics.extend(_check_nondeterminism(src))
        diagnostics.extend(_check_state_mutation(src))
        diagnostics.extend(_check_captured_state(src))
        diagnostics.extend(_check_obs_calls(src))
        diagnostics.extend(_check_server_calls(src))
        diagnostics.extend(_check_eval_loops(src))
        if method_name == "combine":
            diagnostics.extend(_check_combine(src))
        if method_name == "build_aux":
            diagnostics.extend(_check_build_aux(src, protected, declared))
    diagnostics.extend(_check_batch_kernels(cls, owner))
    return diagnostics
