"""Plan-stability pass: dataflow over :mod:`repro.sql.logical` trees.

*Stability* of an operator (Johnson et al., FLEX) bounds how many output
rows one protected record can influence.  UPA's supported operator
matrix (paper Table 2) is exactly the fragment where stability stays
finite and the plan decomposes into the Mapper/Reducer form the
pipeline needs:

* ``Scan`` of the protected table — stability 1 (one record, one row);
* ``Filter`` / ``Project`` — stability preserved;
* ``Join`` — multiplies stability by the join key's max frequency on
  the other side (the amplification FLEX's bound magnifies on
  TPCH16/TPCH21);
* a single global ``COUNT``/``SUM`` ``Aggregate`` at the root.

Operators outside the matrix on the *protected path* (Sort, Limit,
Distinct, Union, GROUP BY, nested aggregates, protected self-joins)
make per-record provenance non-linear: the SQL bridge would reject the
plan at compile time, and this pass reports the same facts as
diagnostics *before* anything runs.  Subtrees that never read the
protected table are static — they are evaluated once and indexed, so
any operator is fine there.

The pass also cross-checks each workload's declared ``flex_supported``
flag against the FLEX baseline's actual fragment
(:func:`repro.baselines.flex.analysis.flex_fragment_reason`), so the
Table 2 comparison can never silently diverge from reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sql.expr import Column
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)
from repro.staticcheck.diagnostics import (
    Diagnostic,
    Severity,
    make_diagnostic,
)

PASS = "plan"

#: operators allowed on the protected path below the aggregate.
SUPPORTED_BELOW_AGGREGATE = (Scan, Filter, Project, Join)

#: presentation operators allowed above the aggregate.
PRESENTATION_OPS = (Project, Sort, Limit)

_TABLE2_RATIONALE = (
    "outside UPA's supported operator matrix (paper Table 2): only "
    "Scan/Filter/Project/Join trees under a single global COUNT/SUM "
    "keep per-record provenance linear"
)


@dataclass
class StabilityReport:
    """Per-base-table stability bounds computed by the walk.

    ``bounds[t]`` is an upper bound on the number of pre-aggregate rows
    one record of table ``t`` can influence; ``math.inf`` means the
    bound is data-dependent (no metadata available, computed join key,
    or membership-style operator).
    """

    bounds: Dict[str, float] = field(default_factory=dict)
    factors: List[str] = field(default_factory=list)


def _reads_table(plan: LogicalPlan, table: str) -> bool:
    return table in plan.base_tables()


def _scan_for(node: LogicalPlan, column: str) -> Optional[Scan]:
    if isinstance(node, Scan):
        return node if node.schema.has(column) else None
    for child in node.children():
        if child.schema.has(column):
            found = _scan_for(child, column)
            if found is not None:
                return found
    return None


def _key_fanout(key, side: LogicalPlan, metadata) -> Optional[float]:
    """Max frequency of a join key on ``side``; None = data-dependent."""
    if not isinstance(key, Column):
        return None
    scan = _scan_for(side, key.name)
    if scan is None:
        return None
    if metadata is None:
        return math.inf
    return float(max(1, metadata.max_frequency(scan.table_name, key.name)))


class _PlanWalker:
    def __init__(self, protected: Optional[str], metadata, obj: str):
        self.protected = protected
        self.metadata = metadata
        self.obj = obj
        self.diagnostics: List[Diagnostic] = []

    # -- diagnostics helpers ------------------------------------------------

    def _emit(self, code: str, message: str, *, severity=None,
              hint: str = "") -> None:
        self.diagnostics.append(
            make_diagnostic(
                code, message, severity=severity, obj=self.obj,
                hint=hint, pass_name=PASS,
            )
        )

    def _on_protected_path(self, plan: LogicalPlan) -> bool:
        if self.protected is None:
            return True  # no protected table known: check everywhere
        return _reads_table(plan, self.protected)

    # -- the walk -----------------------------------------------------------

    def walk(self, plan: LogicalPlan) -> StabilityReport:
        if isinstance(plan, Scan):
            return StabilityReport(bounds={plan.table_name: 1.0})
        if isinstance(plan, (Filter, Project)):
            return self.walk(plan.children()[0])
        if isinstance(plan, Join):
            return self._walk_join(plan)
        if isinstance(plan, (Sort, Limit, Distinct, Union, Aggregate)):
            if self._on_protected_path(plan):
                kind = type(plan).__name__
                detail = {
                    Sort: "row order depends on every record at once",
                    Limit: "which rows survive depends on every record",
                    Distinct: "one record can merge or split result rows",
                    Union: "UNION mixes provenance across branches",
                    Aggregate: "a nested aggregate collapses provenance "
                               "before the final reduce",
                }[type(plan)]
                self._emit(
                    "UPA101",
                    f"{kind} on the protected path is {_TABLE2_RATIONALE} "
                    f"({detail})",
                    hint="move the operator into a static (non-protected)"
                    " subtree, or use the grouped-query API",
                )
            # Static subtree: any operator is fine; still recurse so
            # nested protected scans are not missed.
            report = StabilityReport()
            for child in plan.children():
                sub = self.walk(child)
                for table, bound in sub.bounds.items():
                    report.bounds[table] = math.inf if isinstance(
                        plan, (Distinct, Union, Aggregate)
                    ) else bound
                report.factors.extend(sub.factors)
            return report
        self._emit(
            "UPA101",
            f"unknown plan operator {type(plan).__name__} is "
            f"{_TABLE2_RATIONALE}",
        )
        return StabilityReport()

    def _walk_join(self, plan: Join) -> StabilityReport:
        left_report = self.walk(plan.left)
        right_report = self.walk(plan.right)
        protected = self.protected
        if protected is not None and _reads_table(
            plan.left, protected
        ) and _reads_table(plan.right, protected):
            self._emit(
                "UPA101",
                f"the protected table {protected!r} appears on both "
                f"sides of a {plan.how} join (self-join): one record "
                "can influence rows through both sides, so the query "
                "is not linear in protected records",
                hint="rewrite so the protected table is scanned once, "
                "or protect a different table",
            )

        report = StabilityReport()
        report.factors = left_report.factors + right_report.factors
        for left_key, right_key in plan.keys:
            left_fanout = _key_fanout(left_key, plan.left, self.metadata)
            right_fanout = _key_fanout(right_key, plan.right, self.metadata)
            for key, fanout, side in (
                (left_key, left_fanout, "left"),
                (right_key, right_fanout, "right"),
            ):
                if fanout is None and not isinstance(key, Column):
                    self._emit(
                        "UPA104",
                        f"join key {key!r} ({side} side) is a computed "
                        "expression; per-column frequency metadata "
                        "cannot bound its fan-out",
                        hint="project the expression into a named "
                        "column first, or accept a data-dependent "
                        "stability bound",
                    )

            def _times(bound: float, fanout: Optional[float]) -> float:
                if fanout is None or math.isinf(bound):
                    return math.inf
                return bound * fanout

            # A record on the left influences <= right-key max-frequency
            # joined rows, and vice versa (semi/anti: membership of left
            # rows — right-side influence is unbounded statically).
            for table, bound in left_report.bounds.items():
                report.bounds[table] = max(
                    report.bounds.get(table, 0.0),
                    _times(bound, right_fanout),
                )
            for table, bound in right_report.bounds.items():
                influence = (
                    math.inf if plan.how in ("semi", "anti")
                    else _times(bound, left_fanout)
                )
                report.bounds[table] = max(
                    report.bounds.get(table, 0.0), influence
                )

            def _show(f: Optional[float]) -> str:
                if f is None:
                    return "computed-key"
                if math.isinf(f):
                    return "max-freq(data-dependent)"
                return f"{f:g}"

            factor = (
                f"join[{plan.how}] {left_key!r} x {right_key!r}: "
                f"fan-out {_show(left_fanout)} x {_show(right_fanout)}"
            )
            report.factors.append(factor)
            self._emit(
                "UPA102",
                f"{factor}; one protected record can influence up to "
                "that many pre-aggregate rows — the regime where "
                "FLEX's static bound magnifies (paper Fig. 2a, "
                "TPCH16/TPCH21) while UPA's sampled inference stays "
                "accurate",
            )
        return report


def _strip_presentation(plan: LogicalPlan) -> LogicalPlan:
    node = plan
    while isinstance(node, PRESENTATION_OPS):
        node = node.children()[0]
    return node


def check_plan(
    plan: LogicalPlan,
    protected_table: Optional[str] = None,
    tables: Optional[dict] = None,
    query_name: str = "",
    flex_supported: Optional[bool] = None,
) -> List[Diagnostic]:
    """Run the plan-stability pass; returns diagnostics (never raises).

    Args:
        plan: the logical plan to analyze.
        protected_table: scope matrix checks to the protected path
            (None = check every operator).
        tables: optional concrete rows; enables numeric join fan-outs
            via the FLEX baseline's column metadata.
        query_name: label used in diagnostics.
        flex_supported: the workload's declared FLEX flag, cross-checked
            against the baseline's real fragment when given.
    """
    obj = query_name or "plan"
    metadata = None
    if tables is not None:
        from repro.baselines.flex.metadata import TableMetadata

        metadata = TableMetadata(tables)
    walker = _PlanWalker(protected_table, metadata, obj)

    root = _strip_presentation(plan)
    if not isinstance(root, Aggregate):
        walker._emit(
            "UPA101",
            "no global aggregate at the plan root: UPA releases a "
            f"single COUNT/SUM vector and this plan is {_TABLE2_RATIONALE}",
            hint="wrap the query in SELECT COUNT(*)/SUM(...) or use "
            "the DataFrame .agg() API",
        )
        walker.walk(root)
    else:
        if root.group_exprs:
            walker._emit(
                "UPA101",
                f"GROUP BY is {_TABLE2_RATIONALE}; a grouped release "
                "must charge each group's output explicitly",
                hint="use repro.core.grouped.grouped_query, which runs "
                "one UPA slice per group in parallel",
            )
        for spec in root.aggregates:
            if spec.func not in ("count", "sum"):
                walker._emit(
                    "UPA101",
                    f"aggregate {spec.func.upper()} is "
                    f"{_TABLE2_RATIONALE}: it is not linear in "
                    "individual records, so one record's contribution "
                    "cannot be isolated",
                    hint="COUNT and SUM decompose; MIN/MAX/AVG need a "
                    "hand-written MapReduceQuery",
                )
        walker.walk(root.child)

    # FLEX cross-check (baselines/flex/analysis.py assumptions).
    if flex_supported is not None:
        from repro.baselines.flex.analysis import flex_fragment_reason

        reason = flex_fragment_reason(plan)
        if flex_supported and reason is not None:
            walker._emit(
                "UPA103",
                f"query declares flex_supported=True but FLEX's "
                f"fragment rejects its plan: {reason}",
                hint="set flex_supported=False or simplify the plan "
                "to a single global COUNT over raw-column joins",
            )
        elif not flex_supported and reason is None:
            walker._emit(
                "UPA103",
                "query declares flex_supported=False but its plan fits "
                "FLEX's fragment; the Table 2 comparison could include "
                "it",
                severity=Severity.INFO,
                hint="set flex_supported=True to enable the baseline",
            )
    return walker.diagnostics
