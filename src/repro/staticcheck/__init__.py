"""``upalint``: static safety analysis for UPA queries, plans, budgets.

Three diagnostics-producing passes (surfaced as ``repro lint`` and as
the strict-mode registration gate in :class:`repro.core.UPASession`):

* :mod:`repro.staticcheck.purity` — AST purity checks on every
  registered :class:`MapReduceQuery`'s monoid methods (UPA001–UPA006);
* :mod:`repro.staticcheck.stability` — a stability dataflow over
  :mod:`repro.sql.logical` plans against the paper's Table 2 operator
  matrix, cross-checked with the FLEX baseline (UPA101–UPA104);
* :mod:`repro.staticcheck.budgetflow` — budget accounting checks over
  entry-point scripts (UPA201–UPA203).

All passes emit the shared :class:`Diagnostic` record with stable
codes; ``docs/static_analysis.md`` catalogues them.
"""

from repro.staticcheck.analyzer import (
    LintReport,
    lint_paths,
    lint_query,
    lint_workloads,
    run_lint,
)
from repro.staticcheck.budgetflow import check_file, check_source
from repro.staticcheck.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    Severity,
    has_errors,
    make_diagnostic,
    render_json,
    render_text,
)
from repro.staticcheck.purity import check_query
from repro.staticcheck.stability import StabilityReport, check_plan

__all__ = [
    "CODE_REGISTRY",
    "Diagnostic",
    "LintReport",
    "Severity",
    "StabilityReport",
    "check_file",
    "check_plan",
    "check_query",
    "check_source",
    "has_errors",
    "lint_paths",
    "lint_query",
    "lint_workloads",
    "make_diagnostic",
    "render_json",
    "render_text",
    "run_lint",
]
