"""``upalint``: static safety analysis for UPA queries, plans, budgets.

Five diagnostics-producing passes (surfaced as ``repro lint`` and as
the strict-mode registration gate in :class:`repro.core.UPASession`):

* :mod:`repro.staticcheck.purity` — AST purity checks on every
  registered :class:`MapReduceQuery`'s monoid methods (UPA001–UPA006);
* :mod:`repro.staticcheck.stability` — a stability dataflow over
  :mod:`repro.sql.logical` plans against the paper's Table 2 operator
  matrix, cross-checked with the FLEX baseline (UPA101–UPA104);
* :mod:`repro.staticcheck.budgetflow` — budget accounting checks over
  entry-point scripts (UPA201–UPA203);
* :mod:`repro.staticcheck.taint` — interprocedural taint tracking from
  protected tables to release sinks (UPA301–UPA305);
* :mod:`repro.staticcheck.pickleability` — will the query's monoid
  methods survive stdlib pickle when the process executor backend
  ships them to workers (UPA014)?  See ``docs/performance.md``.

The flow-sensitive passes share one dataflow framework: a CFG builder
(:mod:`repro.staticcheck.cfg`) and a worklist fixed-point engine
(:mod:`repro.staticcheck.dataflow`).

All passes emit the shared :class:`Diagnostic` record with stable
codes; ``docs/static_analysis.md`` catalogues them.  Findings can be
silenced inline (:mod:`repro.staticcheck.suppress`), ratcheted against
a baseline file (:mod:`repro.staticcheck.baseline`), and rendered as
SARIF 2.1.0 for code-scanning upload (:mod:`repro.staticcheck.sarif`).
"""

from repro.staticcheck.analyzer import (
    LintReport,
    lint_paths,
    lint_query,
    lint_workloads,
    run_lint,
)
from repro.staticcheck.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.budgetflow import check_file, check_source
from repro.staticcheck.cfg import CFG, BasicBlock, Guard, build_cfg
from repro.staticcheck.dataflow import (
    env_add,
    env_join,
    env_set,
    solve_forward,
)
from repro.staticcheck.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    Severity,
    dedupe,
    has_errors,
    make_diagnostic,
    render_json,
    render_text,
)
from repro.staticcheck.pickleability import (
    check_query as check_query_pickleability,
)
from repro.staticcheck.purity import check_query
from repro.staticcheck.sarif import render_sarif
from repro.staticcheck.stability import StabilityReport, check_plan
from repro.staticcheck.suppress import (
    apply_suppressions,
    collect_suppressions,
)
from repro.staticcheck.taint import (
    check_query_methods as check_query_taint,
    check_file as check_file_taint,
    check_source as check_source_taint,
)

__all__ = [
    "CFG",
    "CODE_REGISTRY",
    "BasicBlock",
    "Diagnostic",
    "Guard",
    "LintReport",
    "Severity",
    "StabilityReport",
    "apply_baseline",
    "apply_suppressions",
    "build_cfg",
    "check_file",
    "check_file_taint",
    "check_plan",
    "check_query",
    "check_query_pickleability",
    "check_query_taint",
    "check_source",
    "check_source_taint",
    "collect_suppressions",
    "dedupe",
    "env_add",
    "env_join",
    "env_set",
    "fingerprint",
    "has_errors",
    "lint_paths",
    "lint_query",
    "lint_workloads",
    "load_baseline",
    "make_diagnostic",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "solve_forward",
    "write_baseline",
]
