"""Interprocedural privacy taint pass (codes UPA301–UPA309).

UPA's end-to-end guarantee assumes the analyst's *script* only ever
releases DP outputs.  The runtime cannot enforce that: a protected
table handle flowing into a ``print()``, a file write or an HTTP
response never passes through ``session.run()``, so no noise is ever
added and no budget is ever charged.  This pass tracks that flow
statically over the shared CFG/worklist framework
(:mod:`repro.staticcheck.cfg`, :mod:`repro.staticcheck.dataflow`),
following calls between functions defined in the analyzed module.

**Sources** (values labelled ``protected``):

* protected table construction — ``XyzGenerator(...).generate()``,
  ``dpread(...)``, ``make_tables``/``make_life_science_tables``/
  ``load_tables`` calls;
* registration — arguments of ``create_table``/``register_table``/
  ``register_tables`` become protected from that point on;
* records/values *derived* from the above by subscripting, iteration,
  arithmetic, f-string interpolation, and pass-through builtins
  (``str``, ``sorted``, ``min``...).

``UPAResult`` evaluation-only fields (``raw_output`` et al.) are a
second, softer source labelled ``eval`` (UPA305/UPA203 territory).

**Sanitizers**: ``session.run(...)`` / ``session.run_sql(...)`` — a
released value is differentially private — and an explicit
:func:`repro.declassify` call, which documents a reviewed release.

**Sinks**: ``print``, file/socket/HTTP writes (``.write``, ``.send``,
``requests.post``, ``urlopen``...), logging calls, and ``return``
from an entry point (``main`` or any function invoked from module
top level).

The pass deliberately does **not** taint scalar aggregates produced
by opaque third-party calls (``len(tables["t"])``,
``query.output(tables)``): a linter that flagged every derived
statistic would cry wolf on every evaluation script.  What it does
flag is the table handle itself, its records, and values reached from
them through data flow the analyzer can actually see.
"""

from __future__ import annotations

import ast
import os
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.staticcheck.budgetflow import (
    NON_PRIVATE_FIELDS,
    _DELTA_KEYWORDS,
    _EPSILON_KEYWORDS,
    _session_has_accountant,
)
from repro.staticcheck.cfg import CFG, BasicBlock, build_cfg
from repro.staticcheck.dataflow import (
    Env,
    env_add,
    env_join,
    env_set,
    solve_forward,
)
from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic

PASS = "taint"

# -- taint labels -----------------------------------------------------------

PROTECTED = "protected"  # raw protected records / table handles
EVAL = "eval"  # UPAResult evaluation-only field values
FACTORY = "factory"  # a dataset generator object (.generate() -> protected)
UNCHARGED = "uncharged-session"  # UPASession built without an accountant
CHARGED = "charged-session"

_PROTECTED_SET = frozenset({PROTECTED})
_EMPTY: FrozenSet[str] = frozenset()

# -- source / sink / sanitizer vocabularies ---------------------------------

#: plain calls whose result is a protected table/handle.
SOURCE_CALLS = {"dpread", "make_tables", "make_life_science_tables",
                "load_tables"}
#: registering rows makes the passed variables protected.
REGISTRATION_CALLS = {"create_table", "register_table", "register_tables"}
#: releases: the result is differentially private.
SANITIZER_CALLS = {"run", "run_sql", "declassify"}
RELEASE_CALLS = {"run", "run_sql"}
#: builtins through which taint flows unchanged (per-record values).
PASSTHROUGH_CALLS = {
    "str", "repr", "format", "ascii", "list", "tuple", "sorted",
    "reversed", "set", "frozenset", "dict", "iter", "next", "min",
    "max", "copy", "deepcopy", "float", "int", "bool", "complex",
    "abs", "round", "zip", "enumerate", "filter", "map",
}
#: container methods that hand back the container's records.
CONTAINER_METHODS = {
    "copy", "items", "values", "keys", "get", "pop", "popitem",
    "most_common", "head", "take", "collect",
}
#: attribute calls that write bytes/text somewhere observable.
WRITE_SINK_METHODS = {
    "write", "writelines", "send", "sendall", "sendto", "post", "put",
    "patch", "publish",
}
#: calls that ship data over HTTP regardless of receiver.
NETWORK_SINK_CALLS = {"urlopen", "urlretrieve"}
LOG_METHODS = {"debug", "info", "warning", "warn", "error", "critical",
               "exception", "log"}

_MAX_CALL_DEPTH = 25


def _trailing_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_log_call(func: ast.AST) -> bool:
    """``logging.info(...)`` / ``logger.error(...)`` style calls."""
    if not (isinstance(func, ast.Attribute) and func.attr in LOG_METHODS):
        return False
    root = _root_name(func.value)
    return bool(root) and root.lower().startswith("log")


def _default_line(node: ast.AST) -> int:
    return getattr(node, "lineno", 0)


class _Scope:
    """Per-analyzed-function bookkeeping."""

    def __init__(self, name: str, is_entry: bool,
                 params_with_uncharged: FrozenSet[str]):
        self.name = name
        self.is_entry = is_entry
        self.params_with_uncharged = params_with_uncharged
        self.return_labels: FrozenSet[str] = _EMPTY


class TaintAnalyzer:
    """One taint analysis over one module (or one monoid method)."""

    def __init__(
        self,
        filename: str,
        functions: Optional[Dict[str, ast.AST]] = None,
        line_of: Callable[[ast.AST], int] = _default_line,
        obj: str = "",
    ):
        self.file = filename
        self.obj = obj or os.path.basename(filename)
        self.functions = functions or {}
        self.line_of = line_of
        self.diagnostics: List[Diagnostic] = []
        self.module_env: Env = {}
        self.entry_points: Set[str] = set()
        #: (fname, signature) -> return-taint labels
        self._summaries: Dict[Tuple[str, Any], FrozenSet[str]] = {}
        self._in_progress: Set[Tuple[str, Any]] = set()

    # -- diagnostics --------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST, *,
              hint: str = "", severity=None) -> None:
        self.diagnostics.append(
            make_diagnostic(
                code, message,
                severity=severity,
                file=self.file,
                line=self.line_of(node),
                col=getattr(node, "col_offset", 0),
                obj=self.obj,
                hint=hint,
                pass_name=PASS,
            )
        )

    # -- expression taint ---------------------------------------------------

    def taint_of(self, node: ast.AST, env: Env) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Attribute):
            base = self.taint_of(node.value, env)
            if node.attr in NON_PRIVATE_FIELDS:
                return base | frozenset({EVAL})
            return base
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await)):
            return self.taint_of(node.value, env)
        if isinstance(node, ast.Call):
            return self._taint_of_call(node, env)
        if isinstance(node, ast.BinOp):
            return (self.taint_of(node.left, env)
                    | self.taint_of(node.right, env))
        if isinstance(node, ast.BoolOp):
            labels: FrozenSet[str] = _EMPTY
            for value in node.values:
                labels |= self.taint_of(value, env)
            return labels
        if isinstance(node, ast.Compare):
            labels = self.taint_of(node.left, env)
            for comp in node.comparators:
                labels |= self.taint_of(comp, env)
            return labels
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand, env)
        if isinstance(node, ast.IfExp):
            return (self.taint_of(node.body, env)
                    | self.taint_of(node.orelse, env))
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value, env)
        if isinstance(node, ast.JoinedStr):
            labels = _EMPTY
            for value in node.values:
                labels |= self.taint_of(value, env)
            return labels
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = _EMPTY
            for elt in node.elts:
                labels |= self.taint_of(elt, env)
            return labels
        if isinstance(node, ast.Dict):
            labels = _EMPTY
            for key in node.keys:
                if key is not None:
                    labels |= self.taint_of(key, env)
            for value in node.values:
                labels |= self.taint_of(value, env)
            return labels
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # Conservative: a comprehension over protected data yields
            # protected elements; free names keep their env labels.
            labels = _EMPTY
            for gen in node.generators:
                labels |= self.taint_of(gen.iter, env)
            return labels
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        if isinstance(node, ast.Lambda):
            return _EMPTY
        return _EMPTY

    def _taint_of_call(self, node: ast.Call, env: Env) -> FrozenSet[str]:
        func = node.func
        name = _trailing_name(func)
        if name in SANITIZER_CALLS:
            return _EMPTY  # a release / explicit declassification
        if name in SOURCE_CALLS:
            return _PROTECTED_SET
        if name == "UPASession":
            return frozenset(
                {CHARGED if _session_has_accountant(node) else UNCHARGED}
            )
        if isinstance(func, ast.Name):
            if func.id.endswith("Generator"):
                return frozenset({FACTORY})
            if func.id in self.functions:
                return self._call_local(func.id, node, env)
            if func.id in PASSTHROUGH_CALLS:
                labels: FrozenSet[str] = _EMPTY
                for arg in node.args:
                    labels |= self.taint_of(arg, env)
                for kw in node.keywords:
                    labels |= self.taint_of(kw.value, env)
                return labels
            return _EMPTY
        if isinstance(func, ast.Attribute):
            receiver = self.taint_of(func.value, env)
            if func.attr == "generate" and FACTORY in receiver:
                return _PROTECTED_SET
            if func.attr == "format":
                labels = _EMPTY
                for arg in node.args:
                    labels |= self.taint_of(arg, env)
                for kw in node.keywords:
                    labels |= self.taint_of(kw.value, env)
                return labels
            if func.attr in CONTAINER_METHODS and (
                PROTECTED in receiver or EVAL in receiver
            ):
                return receiver & frozenset({PROTECTED, EVAL})
            if func.attr in PASSTHROUGH_CALLS and func.attr in (
                "copy", "deepcopy"
            ):
                return receiver
            # Opaque method call: aggregates, framework calls — clean.
            return _EMPTY
        return _EMPTY

    # -- interprocedural ----------------------------------------------------

    def _call_local(self, fname: str, call: ast.Call,
                    env: Env) -> FrozenSet[str]:
        """Summary-based analysis of a call to a module-local function."""
        funcdef = self.functions[fname]
        args = funcdef.args
        params = [a.arg for a in
                  list(args.posonlyargs) + list(args.args)]
        bound: Dict[str, FrozenSet[str]] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                continue
            labels = self.taint_of(arg, env)
            if labels:
                bound[params[i]] = labels
        for kw in call.keywords:
            if kw.arg and kw.arg in params:
                labels = self.taint_of(kw.value, env)
                if labels:
                    bound[kw.arg] = labels
        return self.analyze_function(fname, bound)

    def analyze_function(
        self, fname: str, bound: Dict[str, FrozenSet[str]]
    ) -> FrozenSet[str]:
        """Analyze ``fname`` with taint labels bound to its parameters;
        memoized on the (function, signature) pair.  Diagnostics inside
        the callee are emitted once per distinct signature (and then
        deduplicated by the analyzer's finalize step)."""
        sig = tuple(sorted(
            (name, tuple(sorted(labels))) for name, labels in bound.items()
        ))
        key = (fname, sig)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress or \
                len(self._in_progress) > _MAX_CALL_DEPTH:
            return _EMPTY  # recursion / pathological depth: stop here
        self._in_progress.add(key)
        try:
            funcdef = self.functions[fname]
            args = funcdef.args
            param_names = {
                a.arg for a in (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                )
            }
            initial = {
                name: labels for name, labels in self.module_env.items()
                if name not in param_names
            }
            for name, labels in bound.items():
                initial[name] = labels
            scope = _Scope(
                fname,
                is_entry=fname in self.entry_points,
                params_with_uncharged=frozenset(
                    name for name, labels in bound.items()
                    if UNCHARGED in labels
                ),
            )
            result = self._analyze_body(funcdef.body, initial, scope)
            self._summaries[key] = result
            return result
        finally:
            self._in_progress.discard(key)

    # -- the flow analysis itself -------------------------------------------

    def _analyze_body(self, body: Sequence[ast.stmt], initial: Env,
                      scope: _Scope) -> FrozenSet[str]:
        """Fixpoint + reporting pass over one scope; returns the taint
        of the scope's returned value."""
        cfg = build_cfg(body)

        def transfer(block: BasicBlock, env: Env) -> Env:
            for elem in block.elements:
                env = self._step(elem, env, scope, report=False,
                                 block=block)
            return env

        states = solve_forward(cfg, transfer, initial, env_join)
        for block in cfg.blocks_in_order():
            env = states[block.bid][0]
            for elem in block.elements:
                env = self._step(elem, env, scope, report=True,
                                 block=block)
        return scope.return_labels

    def analyze_module(self, tree: ast.Module) -> None:
        """Analyze module top-level code, then every module function."""
        self.functions = {
            stmt.name: stmt for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Entry points: `main` plus anything invoked from top level
        # (including under `if __name__ == "__main__":`).
        called: Set[str] = set()

        def _collect_calls(stmts: Iterable[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Name):
                        called.add(node.func.id)

        _collect_calls(tree.body)
        self.entry_points = (called | {"main"}) & set(self.functions)

        # Module top-level flow (binds the base environment functions
        # inherit for reads of module globals).
        module_scope = _Scope("<module>", is_entry=False,
                              params_with_uncharged=frozenset())
        cfg = build_cfg(tree.body)

        def transfer(block: BasicBlock, env: Env) -> Env:
            for elem in block.elements:
                env = self._step(elem, env, module_scope, report=False,
                                 block=block)
            return env

        states = solve_forward(cfg, transfer, {}, env_join)
        self.module_env = states[cfg.exit][0]
        for block in cfg.blocks_in_order():
            env = states[block.bid][0]
            for elem in block.elements:
                env = self._step(elem, env, module_scope, report=True,
                                 block=block)
        # Every module function gets analyzed at least once (clean
        # signature) so leaks of sources constructed *inside* helper
        # functions are found even if the helper is never called.
        for fname in self.functions:
            self.analyze_function(fname, {})

    # -- statement transfer (shared by fixpoint + reporting) ----------------

    def _step(self, elem: ast.AST, env: Env, scope: _Scope, *,
              report: bool, block: BasicBlock) -> Env:
        if report:
            self._scan_calls(elem, env, scope, block)
        if isinstance(elem, ast.Assign):
            labels = self.taint_of(elem.value, env)
            for target in elem.targets:
                env = self._bind(target, elem.value, labels, env)
            return env
        if isinstance(elem, ast.AnnAssign) and elem.value is not None:
            labels = self.taint_of(elem.value, env)
            return self._bind(elem.target, elem.value, labels, env)
        if isinstance(elem, ast.AugAssign):
            labels = self.taint_of(elem.value, env)
            root = _root_name(elem.target)
            if root:
                env = env_add(env, root, labels)
            return env
        if isinstance(elem, (ast.For, ast.AsyncFor)):
            labels = self.taint_of(elem.iter, env)
            return self._bind(elem.target, elem.iter, labels, env)
        if isinstance(elem, (ast.With, ast.AsyncWith)):
            for item in elem.items:
                if item.optional_vars is not None:
                    labels = self.taint_of(item.context_expr, env)
                    env = self._bind(item.optional_vars,
                                     item.context_expr, labels, env)
            return env
        if isinstance(elem, ast.Return):
            labels = (self.taint_of(elem.value, env)
                      if elem.value is not None else _EMPTY)
            scope.return_labels |= labels
            if report and scope.is_entry and PROTECTED in labels:
                self._emit(
                    "UPA301",
                    f"{scope.name}() is an entry point and returns a "
                    "value derived from protected records; whoever "
                    "called the script receives raw, un-noised data",
                    elem,
                    hint="release session.run(...).noisy_output (or "
                    "wrap a reviewed value in declassify()) instead of "
                    "returning raw records",
                )
            return env
        # Registration calls make their argument variables protected.
        env = self._apply_registrations(elem, env)
        return env

    def _bind(self, target: ast.AST, value: Optional[ast.AST],
              labels: FrozenSet[str], env: Env) -> Env:
        if isinstance(target, ast.Name):
            return env_set(env, target.id, labels)
        if isinstance(target, (ast.Tuple, ast.List)):
            # Elementwise when the RHS is a literal tuple of the same
            # length; otherwise every element inherits the full label
            # set (unpacking a protected sequence yields records).
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    env = self._bind(t_elt, v_elt,
                                     self.taint_of(v_elt, env), env)
                return env
            for t_elt in target.elts:
                env = self._bind(t_elt, None, labels, env)
            return env
        if isinstance(target, ast.Starred):
            return self._bind(target.value, None, labels, env)
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root:
                return env_add(env, root, labels)
        return env

    def _apply_registrations(self, elem: ast.AST, env: Env) -> Env:
        for call in self._calls_in(elem):
            if _trailing_name(call.func) in REGISTRATION_CALLS:
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    if isinstance(arg, ast.Name):
                        env = env_add(env, arg.id, _PROTECTED_SET)
        return env

    # -- sinks, releases, privacy parameters --------------------------------

    def _calls_in(self, elem: ast.AST) -> List[ast.Call]:
        """Call nodes evaluated *by this element* (headers contribute
        only their own expressions, never their bodies)."""
        if isinstance(elem, (ast.For, ast.AsyncFor)):
            roots: List[ast.AST] = [elem.iter]
        elif isinstance(elem, (ast.With, ast.AsyncWith)):
            roots = [item.context_expr for item in elem.items]
        elif isinstance(elem, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return []  # separate scopes
        else:
            roots = [elem]
        calls: List[ast.Call] = []
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    calls.append(node)
        return calls

    def _scan_calls(self, elem: ast.AST, env: Env, scope: _Scope,
                    block: BasicBlock) -> None:
        for call in self._calls_in(elem):
            name = _trailing_name(call.func)
            if name == "print":
                self._check_sink(call, env, "print()")
            elif isinstance(call.func, ast.Attribute) and \
                    call.func.attr in WRITE_SINK_METHODS:
                self._check_sink(call, env,
                                 f".{call.func.attr}() write")
            elif name in NETWORK_SINK_CALLS:
                self._check_sink(call, env, f"{name}()")
            elif _is_log_call(call.func):
                self._check_sink(call, env, f"log call .{name}()")
            if name in RELEASE_CALLS and isinstance(
                call.func, ast.Attribute
            ):
                self._check_release(call, env, scope, block)
            if name in ("run", "run_sql", "UPAConfig",
                        "PrivacyAccountant", "charge", "grouped_query",
                        "release_histogram"):
                self._check_privacy_params(call, env)
            # Analyze local helpers reached as bare call statements too
            # (result discarded, so taint_of never visited them).
            if isinstance(call.func, ast.Name) and \
                    call.func.id in self.functions:
                self._call_local(call.func.id, call, env)

    def _check_sink(self, call: ast.Call, env: Env, what: str) -> None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            labels = self.taint_of(arg, env)
            if PROTECTED in labels:
                self._emit(
                    "UPA301",
                    f"a value derived from protected records reaches "
                    f"{what} without passing through session.run() — "
                    "raw, un-noised data leaves the pipeline and no "
                    "budget is charged",
                    arg,
                    hint="release only DP outputs "
                    "(result.noisy_output / noisy_scalar()), or wrap "
                    "a reviewed value in repro.declassify()",
                )
            elif EVAL in labels and not self._directly_references_field(
                arg
            ):
                self._emit(
                    "UPA305",
                    f"a value carrying UPAResult evaluation-only data "
                    f"flows into {what}; those fields (raw_output, "
                    "plain_output, neighbour outputs) are not "
                    "differentially private",
                    arg,
                    hint="fine for local evaluation; never show these "
                    "values to an analyst",
                )

    @staticmethod
    def _directly_references_field(arg: ast.AST) -> bool:
        """The direct-print case UPA203 already reports — skip the
        flow-based duplicate when the sink argument itself names the
        evaluation field."""
        return any(
            isinstance(node, ast.Attribute)
            and node.attr in NON_PRIVATE_FIELDS
            for node in ast.walk(arg)
        )

    def _check_release(self, call: ast.Call, env: Env, scope: _Scope,
                       block: BasicBlock) -> None:
        # UPA302: the release executes under data-dependent control
        # flow — the script-level analogue of plan stability.
        for guard in block.guards:
            if guard.kind not in ("if", "while", "for", "match"):
                continue
            if PROTECTED in self.taint_of(guard.test, env):
                kind = ("iterating over protected data"
                        if guard.kind == "for"
                        else f"an `{guard.kind}` condition derived "
                        "from protected records")
                self._emit(
                    "UPA302",
                    f"this {_trailing_name(call.func)}() release "
                    f"executes under {kind} (line {guard.line}); "
                    "whether — and which — query runs becomes "
                    "data-dependent, so the sequence of executed "
                    "plans itself leaks protected information",
                    call,
                    hint="decide the query schedule from public "
                    "values only, or release the branching value "
                    "first via a DP query",
                )
                break
        # UPA304: released through a session a *caller* constructed
        # without an accountant (the interprocedural face of UPA201).
        receiver = call.func.value
        if isinstance(receiver, ast.Name):
            labels = env.get(receiver.id, _EMPTY)
            if (UNCHARGED in labels and CHARGED not in labels
                    and receiver.id in scope.params_with_uncharged):
                self._emit(
                    "UPA304",
                    f"{scope.name}() releases through parameter "
                    f"{receiver.id!r}, a UPASession its caller "
                    "constructed without a PrivacyAccountant — the "
                    "epsilon spend is never charged against a total "
                    "budget (see UPA201)",
                    call,
                    hint="construct the session with accountant="
                    "PrivacyAccountant(total_epsilon=...) at the "
                    "call site",
                )

    def _check_privacy_params(self, call: ast.Call, env: Env) -> None:
        name = _trailing_name(call.func)
        candidates: List[Tuple[str, ast.AST]] = []
        for kw in call.keywords:
            if kw.arg in _EPSILON_KEYWORDS or kw.arg in _DELTA_KEYWORDS:
                candidates.append((kw.arg, kw.value))
        if name in RELEASE_CALLS and len(call.args) >= 3:
            candidates.append(("epsilon", call.args[2]))
        for param, value in candidates:
            labels = self.taint_of(value, env)
            if PROTECTED in labels or EVAL in labels:
                self._emit(
                    "UPA303",
                    f"the {param} passed to {name}() is derived from "
                    "protected data; a data-dependent privacy "
                    "parameter is itself a leak and voids the "
                    "epsilon-DP accounting",
                    value,
                    hint="privacy parameters must be public "
                    "constants (the paper's evaluation uses 0.1)",
                )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_source(source: str, filename: str = "<string>"
                 ) -> List[Diagnostic]:
    """Run the taint pass over Python source text (a script/module)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []  # budgetflow already reports unparsable files
    analyzer = TaintAnalyzer(filename)
    analyzer.analyze_module(tree)
    return analyzer.diagnostics


def check_file(path: str) -> List[Diagnostic]:
    """Run the taint pass over one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        rel = os.path.relpath(path)
    except ValueError:
        rel = path
    return check_source(source, rel)


#: monoid methods whose leading parameter is raw protected data.
_TAINTED_METHOD_PARAMS = {
    "map_record": "one raw protected record",
    "map_batch": "a batch of raw protected records",
    "build_aux": "the protected tables",
}


def check_query_methods(query: Any) -> List[Diagnostic]:
    """Taint pass over a query's monoid methods: the ``record`` /
    ``records`` / ``tables`` parameter IS protected data, so a
    ``print``/write/log inside a monoid method is a raw-record leak
    (UPA301) replayed ~2n times across the sampled neighbours."""
    from repro.staticcheck import purity

    cls = query if isinstance(query, type) else type(query)
    owner = getattr(query, "name", "") or cls.__name__
    diagnostics: List[Diagnostic] = []
    for method_name, what in _TAINTED_METHOD_PARAMS.items():
        func = purity._resolve_method(cls, method_name)
        if func is None:
            continue
        try:
            src = purity._MethodSource(func, owner, method_name)
        except (OSError, TypeError, SyntaxError, IndentationError,
                ValueError):
            continue  # the purity pass already reports UPA006
        if not src.params:
            continue
        analyzer = TaintAnalyzer(
            src.file, functions={}, line_of=src.line_of, obj=owner,
        )
        scope = _Scope(f"{owner}.{method_name}", is_entry=False,
                       params_with_uncharged=frozenset())
        initial = {src.params[0]: _PROTECTED_SET}
        analyzer._analyze_body(src.node.body, initial, scope)
        for diag in analyzer.diagnostics:
            diagnostics.append(diag)
    return diagnostics
