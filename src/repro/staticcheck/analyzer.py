"""``upalint`` orchestration: run the three passes and collect a report.

The analyzer is deliberately cheap: the purity pass reads source (no
query execution), the plan pass builds logical plans against
schema-only catalogs (no data generation), and the budget pass parses
scripts (no imports).  ``repro lint`` over all nine workloads plus
``examples/`` completes in well under a second, which is what lets
strict-mode sessions afford to run it at query registration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from repro.staticcheck.diagnostics import (
    Diagnostic,
    Severity,
    dedupe,
    has_errors,
    make_diagnostic,
    render_json,
    render_text,
)
from repro.staticcheck import (
    budgetflow,
    pickleability,
    purity,
    stability,
    taint,
)
from repro.staticcheck.sarif import render_sarif
from repro.staticcheck.suppress import (
    apply_suppressions,
    suppressions_for_file,
)


@dataclass
class LintReport:
    """All diagnostics from one analyzer invocation."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: True when --baseline pointed at a missing file and this run
    #: recorded the current findings instead of reporting them.
    baseline_written: bool = False

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity == Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        return 1 if not self.ok else 0

    def render(self, as_json: bool = False, format: str = "") -> str:
        fmt = format or ("json" if as_json else "text")
        if fmt == "json":
            return render_json(self.diagnostics)
        if fmt == "sarif":
            from repro._version import __version__

            return render_sarif(
                self.diagnostics, tool_version=__version__
            )
        return render_text(self.diagnostics)


def _schema_session():
    """A SQLSession with every TPC-H table registered schema-only.

    Plans need schemas for analysis, not rows — registering empty
    tables keeps ``repro lint`` free of data generation.
    """
    from repro.sql.session import SQLSession
    from repro.tpch.schema import ALL_SCHEMAS

    session = SQLSession()
    for name, schema in ALL_SCHEMAS.items():
        session.create_table(name, [], schema)
    return session


def lint_query(
    query: Any,
    tables: Optional[dict] = None,
    include_plan: bool = True,
) -> List[Diagnostic]:
    """Purity + pickleability + taint passes (always) + plan pass
    (when available)."""
    diagnostics = purity.check_query(query)
    diagnostics.extend(pickleability.check_query(query))
    diagnostics.extend(taint.check_query_methods(query))
    if include_plan and hasattr(query, "dataframe"):
        try:
            plan = query.dataframe(_schema_session()).plan
        except Exception as exc:  # plan construction is best-effort
            diagnostics.append(
                make_diagnostic(
                    "UPA006",
                    f"{getattr(query, 'name', type(query).__name__)}: "
                    f"could not build the logical plan for analysis "
                    f"({type(exc).__name__}: {exc})",
                    obj=getattr(query, "name", ""),
                    pass_name=stability.PASS,
                )
            )
        else:
            diagnostics.extend(
                stability.check_plan(
                    plan,
                    protected_table=getattr(query, "protected_table", None),
                    tables=tables,
                    query_name=getattr(query, "name", ""),
                    flex_supported=getattr(query, "flex_supported", None),
                )
            )
    return diagnostics


def lint_workloads(
    names: Optional[Sequence[str]] = None,
    tables: Optional[dict] = None,
) -> List[Diagnostic]:
    """Lint the built-in workload registry (default: all nine)."""
    from repro.workloads import all_workloads

    diagnostics: List[Diagnostic] = []
    for workload in all_workloads():
        if names and workload.name not in names:
            continue
        diagnostics.extend(lint_query(workload.query, tables=tables))
    return diagnostics


def lint_paths(
    paths: Sequence[str],
    exclude: Sequence[str] = (),
) -> List[Diagnostic]:
    """Budget + taint passes over files / directories of scripts.

    ``exclude`` holds paths (files or directory prefixes) to skip —
    how CI keeps the deliberately-leaky lint fixtures out of the
    clean-tree gate while still linting everything else.
    """
    excluded = {os.path.normpath(e) for e in exclude}

    def _is_excluded(path: str) -> bool:
        norm = os.path.normpath(path)
        return any(
            norm == e or norm.startswith(e + os.sep) for e in excluded
        )

    diagnostics: List[Diagnostic] = []
    suppressions = {}
    for path in budgetflow.iter_python_files(paths):
        if _is_excluded(path):
            continue
        diagnostics.extend(budgetflow.check_file(path))
        diagnostics.extend(taint.check_file(path))
        suppressions[os.path.relpath(path)] = suppressions_for_file(path)
    return apply_suppressions(diagnostics, suppressions)


def run_lint(
    workloads: bool = True,
    workload_names: Optional[Sequence[str]] = None,
    paths: Sequence[str] = (),
    min_severity: Severity = Severity.INFO,
    exclude: Sequence[str] = (),
    baseline: Optional[str] = None,
) -> LintReport:
    """The full analyzer: workload passes + script passes.

    With ``baseline`` set, findings recorded in that file are filtered
    out (ratchet mode); a missing baseline file is created from the
    current findings and the run reports clean — see
    :mod:`repro.staticcheck.baseline`.
    """
    report = LintReport()
    if workloads:
        report.extend(lint_workloads(workload_names))
    if paths:
        report.extend(lint_paths(paths, exclude=exclude))
    report.diagnostics = dedupe(report.diagnostics)
    if baseline:
        from repro.staticcheck.baseline import apply_baseline

        report.diagnostics, report.baseline_written = apply_baseline(
            baseline, report.diagnostics
        )
    if min_severity > Severity.INFO:
        report.diagnostics = [
            d for d in report.diagnostics if d.severity >= min_severity
        ]
    return report
