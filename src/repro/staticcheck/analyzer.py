"""``upalint`` orchestration: run the three passes and collect a report.

The analyzer is deliberately cheap: the purity pass reads source (no
query execution), the plan pass builds logical plans against
schema-only catalogs (no data generation), and the budget pass parses
scripts (no imports).  ``repro lint`` over all nine workloads plus
``examples/`` completes in well under a second, which is what lets
strict-mode sessions afford to run it at query registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from repro.staticcheck.diagnostics import (
    Diagnostic,
    Severity,
    has_errors,
    make_diagnostic,
    render_json,
    render_text,
)
from repro.staticcheck import budgetflow, purity, stability


@dataclass
class LintReport:
    """All diagnostics from one analyzer invocation."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity == Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        return 1 if not self.ok else 0

    def render(self, as_json: bool = False) -> str:
        if as_json:
            return render_json(self.diagnostics)
        return render_text(self.diagnostics)


def _schema_session():
    """A SQLSession with every TPC-H table registered schema-only.

    Plans need schemas for analysis, not rows — registering empty
    tables keeps ``repro lint`` free of data generation.
    """
    from repro.sql.session import SQLSession
    from repro.tpch.schema import ALL_SCHEMAS

    session = SQLSession()
    for name, schema in ALL_SCHEMAS.items():
        session.create_table(name, [], schema)
    return session


def lint_query(
    query: Any,
    tables: Optional[dict] = None,
    include_plan: bool = True,
) -> List[Diagnostic]:
    """Purity pass (always) + plan pass (when the query has a plan)."""
    diagnostics = purity.check_query(query)
    if include_plan and hasattr(query, "dataframe"):
        try:
            plan = query.dataframe(_schema_session()).plan
        except Exception as exc:  # plan construction is best-effort
            diagnostics.append(
                make_diagnostic(
                    "UPA006",
                    f"{getattr(query, 'name', type(query).__name__)}: "
                    f"could not build the logical plan for analysis "
                    f"({type(exc).__name__}: {exc})",
                    obj=getattr(query, "name", ""),
                    pass_name=stability.PASS,
                )
            )
        else:
            diagnostics.extend(
                stability.check_plan(
                    plan,
                    protected_table=getattr(query, "protected_table", None),
                    tables=tables,
                    query_name=getattr(query, "name", ""),
                    flex_supported=getattr(query, "flex_supported", None),
                )
            )
    return diagnostics


def lint_workloads(
    names: Optional[Sequence[str]] = None,
    tables: Optional[dict] = None,
) -> List[Diagnostic]:
    """Lint the built-in workload registry (default: all nine)."""
    from repro.workloads import all_workloads

    diagnostics: List[Diagnostic] = []
    for workload in all_workloads():
        if names and workload.name not in names:
            continue
        diagnostics.extend(lint_query(workload.query, tables=tables))
    return diagnostics


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Budget-flow pass over files / directories of Python scripts."""
    diagnostics: List[Diagnostic] = []
    for path in budgetflow.iter_python_files(paths):
        diagnostics.extend(budgetflow.check_file(path))
    return diagnostics


def run_lint(
    workloads: bool = True,
    workload_names: Optional[Sequence[str]] = None,
    paths: Sequence[str] = (),
    min_severity: Severity = Severity.INFO,
) -> LintReport:
    """The full analyzer: workload passes + script passes."""
    report = LintReport()
    if workloads:
        report.extend(lint_workloads(workload_names))
    if paths:
        report.extend(lint_paths(paths))
    if min_severity > Severity.INFO:
        report.diagnostics = [
            d for d in report.diagnostics if d.severity >= min_severity
        ]
    return report
