"""Diagnostic records shared by every ``upalint`` pass.

Each finding is a :class:`Diagnostic` with a stable code (``UPA001``…),
a severity, a best-effort ``file:line`` location, and a fix hint.  The
code registry below is the single source of truth: the docs
(``docs/static_analysis.md``) and the tests both enumerate it, so a new
check must land here first.

Severities follow the usual compiler convention:

* ``error`` — the query/plan/program violates a precondition UPA's
  privacy guarantee rests on; ``repro lint`` exits non-zero.
* ``warning`` — suspicious but not provably wrong (or explicitly
  declared by the author); surfaced, does not fail the build.
* ``info`` — context the analyst should know (e.g. join amplification
  factors), never actionable by CI.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """Ordered so ``max()`` over diagnostics gives the worst finding."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    summary: str


#: The stable code registry (append-only: codes are never renumbered).
CODE_REGISTRY: Dict[str, CodeInfo] = {
    info.code: info
    for info in [
        # -- query-purity pass (UPA0xx) --------------------------------
        CodeInfo(
            "UPA001", "nondeterministic-monoid", Severity.ERROR,
            "A monoid method (map_record/zero/combine/finalize/build_aux) "
            "calls a nondeterminism source (random, time, datetime.now, "
            "uuid, numpy.random). UPA replays these functions across "
            "sampled neighbouring datasets; nondeterminism breaks the "
            "R(M(S')) reuse equivalence and the sensitivity estimate.",
        ),
        CodeInfo(
            "UPA002", "stateful-monoid", Severity.ERROR,
            "A monoid method mutates self, a global, or a closure "
            "variable. Mappers/reducers run many times, in any order, on "
            "any partition; hidden state makes the fold order observable "
            "and the output non-reproducible.",
        ),
        CodeInfo(
            "UPA003", "combine-mutates-right", Severity.ERROR,
            "combine() mutates its right argument in place. The "
            "union-preserving reduce reuses every mapped element across "
            "prefix/suffix folds (the paper's core efficiency claim); an "
            "element mutated by one fold poisons all later neighbours.",
        ),
        CodeInfo(
            "UPA004", "non-commutative-combine", Severity.ERROR,
            "combine() applies a non-commutative operator (-, /, //, %, "
            "**) across its two arguments. The reducer must be a "
            "commutative monoid: partial aggregates arrive in "
            "partition-dependent order.",
        ),
        CodeInfo(
            "UPA005", "aux-reads-protected", Severity.WARNING,
            "build_aux() reads the protected table. Aux structures are "
            "computed once from x, not per neighbour, so the query is "
            "only correct if its semantics stay linear in the protected "
            "records. Declare `aux_reads_protected = True` on the query "
            "class to acknowledge (downgrades to info).",
        ),
        CodeInfo(
            "UPA006", "source-unavailable", Severity.INFO,
            "A monoid method's source could not be retrieved (builtin, "
            "C extension, REPL-defined, or dynamically generated); the "
            "purity pass skipped it.",
        ),
        CodeInfo(
            "UPA010", "batch-kernel-mismatch", Severity.WARNING,
            "A batched kernel (map_batch/prefix_suffix_batch/"
            "combine_batch/finalize_batch/fold_batch) is overridden "
            "without the scalar method that defines its semantics, or "
            "mutates an input batch in place. Batched kernels are an "
            "optimization over the scalar monoid: validate_monoid "
            "cross-checks them against the scalar path, and the "
            "pipeline borrows batches across prefix/suffix folds, so a "
            "kernel with no scalar reference — or one that writes into "
            "its inputs — can silently change released outputs.",
        ),
        CodeInfo(
            "UPA011", "observer-in-monoid", Severity.WARNING,
            "A monoid method (or batched kernel) calls into repro.obs "
            "(trace/get_tracer/use_tracer/span/ledger APIs). "
            "Observability belongs to the pipeline, not the query: "
            "map/reduce functions replay ~2n times across sampled "
            "neighbouring datasets, so per-record spans explode trace "
            "volume, and a ledger touched from a mapper records "
            "non-private intermediate state.",
        ),
        CodeInfo(
            "UPA012", "eval-loop-in-hot-path", Severity.WARNING,
            "A monoid method (or batched kernel) calls Expression.eval "
            "per row — directly in map_record, or inside a loop or "
            "comprehension. Monoid methods replay ~2n times across "
            "sampled neighbouring datasets, so per-row AST "
            "interpretation dominates the replay cost; "
            "repro.sql.compiler provides semantically identical "
            "compiled closures (compile_expression/compile_predicate) "
            "that should be built once in build_aux or __init__ and "
            "called in the loop.",
        ),
        CodeInfo(
            "UPA013", "server-in-monoid", Severity.WARNING,
            "A monoid method (or batched kernel) starts live monitoring "
            "machinery — an ObservabilityServer, a SamplingProfiler, or "
            "a .serve() call. These own daemon threads and OS resources "
            "(a listening socket, a sampling loop); monoid methods "
            "replay ~2n times across sampled neighbouring datasets, so "
            "each replay would spawn another server/profiler, leaking "
            "threads and ports and letting the observer perturb the "
            "observed run. Start them once, from the session or CLI "
            "(UPASession.serve / repro run --serve), never from a "
            "mapper or reducer.",
        ),
        CodeInfo(
            "UPA014", "unpicklable-capture-in-monoid", Severity.WARNING,
            "A monoid method (or batched kernel) captures state the "
            "process executor backend cannot pickle — it ships a lambda "
            "or nested closure into an RDD operator, closes over an "
            "unpicklable free variable, or its query instance holds an "
            "unpicklable attribute (lock, socket, thread, open file). "
            "EngineConfig(backend='processes') ships tasks to workers "
            "with stdlib pickle; an unpicklable capture makes every job "
            "silently fall back to thread/inline execution (counted in "
            "the process_fallbacks metric), forfeiting the multi-core "
            "speedup the backend exists for.",
        ),
        CodeInfo(
            "UPA015", "stateful-monoid-on-incremental-path",
            Severity.ERROR,
            "A monoid method (or batched kernel) mutates state captured "
            "from outside the call — a free variable it closed over, a "
            "module-level container, or a mutable default argument. "
            "Such state survives between calls, and the incremental "
            "session path (UPASession.append/retire) makes that fatal "
            "rather than merely fragile: cached map_record element "
            "blocks are replayed from the engine's block store instead "
            "of re-invoking the mapper, so any accumulation the method "
            "performs diverges from a cold run and the "
            "bitwise-equivalence guarantee breaks. UPA002 covers "
            "mutation of self and explicit global/nonlocal "
            "declarations; this check covers the mutations those miss.",
        ),
        # -- plan-stability pass (UPA1xx) ------------------------------
        CodeInfo(
            "UPA101", "unsupported-plan-operator", Severity.ERROR,
            "The logical plan uses an operator outside UPA's supported "
            "matrix (paper Table 2): only Scan/Filter/Project/Join/"
            "global-Aggregate trees decompose into the Mapper/Reducer "
            "form the pipeline requires. Sort, Limit, Union, Distinct "
            "and GROUP BY need the grouped-query or DataFrame paths.",
        ),
        CodeInfo(
            "UPA102", "join-stability-amplification", Severity.INFO,
            "A join amplifies per-record stability: one protected record "
            "can influence up to max-frequency(join key) result rows. "
            "This is exactly where FLEX's static bound magnifies "
            "(TPCH16/TPCH21 in the paper); UPA's sampled inference "
            "absorbs it, but the factor is worth knowing.",
        ),
        CodeInfo(
            "UPA103", "flex-support-mismatch", Severity.WARNING,
            "The query's declared flex_supported flag disagrees with "
            "FLEX's actual fragment (single global COUNT over Scan/"
            "Filter/Project/Join with raw-column keys). The Table 2 "
            "comparison would silently skip or crash on this workload.",
        ),
        CodeInfo(
            "UPA104", "computed-join-key", Severity.WARNING,
            "A join key is a computed expression, not a raw base-table "
            "column. Per-column frequency metadata cannot bound its "
            "fan-out, so static stability for this join is unbounded.",
        ),
        # -- budget-flow pass (UPA2xx) ---------------------------------
        CodeInfo(
            "UPA201", "uncharged-release", Severity.WARNING,
            "A UPASession constructed without a PrivacyAccountant calls "
            "run()/run_sql(). Every released output consumes epsilon; "
            "with no accountant the spend is untracked and the total "
            "budget unenforced.",
        ),
        CodeInfo(
            "UPA202", "invalid-privacy-parameter", Severity.ERROR,
            "An epsilon/delta literal is invalid: epsilon must be a "
            "positive finite number, delta must be in [0, 1).",
        ),
        CodeInfo(
            "UPA203", "non-private-field-printed", Severity.INFO,
            "An evaluation-only UPAResult field (raw_output, "
            "plain_output, removal_outputs, addition_outputs, "
            "neighbour_outputs) is printed. These fields are not "
            "differentially private and must never be released to an "
            "analyst; fine for local evaluation scripts.",
        ),
        # -- taint pass (UPA3xx) ---------------------------------------
        CodeInfo(
            "UPA301", "protected-data-leak", Severity.ERROR,
            "A value derived from protected records reaches a release "
            "sink (print, file/socket/HTTP write, log interpolation, "
            "or a return from the script's entry point) without "
            "passing through session.run()/run_sql() or an explicit "
            "declassify(). Raw, un-noised data leaves the pipeline "
            "and no budget is charged — the end-to-end DP guarantee "
            "is void.",
        ),
        CodeInfo(
            "UPA302", "data-dependent-release", Severity.WARNING,
            "A session.run()/run_sql() release executes under a "
            "branch or loop condition derived from protected data. "
            "Whether — and which — query runs becomes data-dependent, "
            "so the sequence of executed plans itself leaks protected "
            "information: the script-level analogue of the plan-"
            "stability requirement (UPA1xx).",
        ),
        CodeInfo(
            "UPA303", "tainted-privacy-parameter", Severity.ERROR,
            "An epsilon/delta argument is derived from protected "
            "data. A data-dependent privacy parameter is itself a "
            "leak and voids the epsilon-DP accounting; privacy "
            "parameters must be public constants.",
        ),
        CodeInfo(
            "UPA304", "uncharged-release-interprocedural", Severity.WARNING,
            "A function releases through a UPASession parameter that "
            "its caller constructed without a PrivacyAccountant — the "
            "interprocedural face of UPA201: the epsilon spend is "
            "never charged against a total budget.",
        ),
        CodeInfo(
            "UPA305", "evaluation-field-flow", Severity.INFO,
            "A value carrying UPAResult evaluation-only data "
            "(raw_output, plain_output, neighbour outputs) flows "
            "through assignments into a print/write/log sink. The "
            "flow-tracking complement of UPA203; fine for local "
            "evaluation, never for analyst-facing output.",
        ),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static pass.

    Attributes:
        code: stable registry code (``UPA001``…).
        message: human-readable, instance-specific explanation.
        severity: defaults to the registry's default for the code.
        file: source file the finding points at ('' if synthetic).
        line: 1-based line number (0 if unknown).
        col: 0-based column offset (0 if unknown).
        obj: what was analyzed — query name, plan description, or path.
        hint: a concrete fix suggestion.
        pass_name: 'purity' | 'plan' | 'budget' | 'taint'.
    """

    code: str
    message: str
    severity: Severity
    file: str = ""
    line: int = 0
    col: int = 0
    obj: str = ""
    hint: str = ""
    pass_name: str = ""

    @property
    def location(self) -> str:
        if not self.file:
            return "<unknown>"
        return f"{self.file}:{self.line}" if self.line else self.file

    @property
    def sort_key(self):
        """The canonical deterministic ordering: file, line, col, code.

        Used everywhere diagnostics are rendered or compared, so two
        runs (and two passes emitting at the same site) always present
        findings identically.
        """
        return (self.file, self.line, self.col, self.code,
                -int(self.severity), self.message)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "obj": self.obj,
            "hint": self.hint,
            "pass": self.pass_name,
        }


def make_diagnostic(
    code: str,
    message: str,
    *,
    severity: Optional[Severity] = None,
    file: str = "",
    line: int = 0,
    col: int = 0,
    obj: str = "",
    hint: str = "",
    pass_name: str = "",
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the code registry."""
    info = CODE_REGISTRY.get(code)
    if info is None:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else info.default_severity,
        file=file,
        line=line,
        col=col,
        obj=obj,
        hint=hint,
        pass_name=pass_name,
    )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == Severity.ERROR for d in diagnostics)


def dedupe(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Drop identical findings (several passes can flag the same site)
    and impose the canonical (file, line, col, code) ordering."""
    return sorted(dict.fromkeys(diagnostics), key=lambda d: d.sort_key)


def render_text(diagnostics: List[Diagnostic]) -> str:
    """Compiler-style one-line-per-finding rendering plus a summary."""
    deduped = dedupe(diagnostics)
    lines = []
    for d in deduped:
        obj = f" [{d.obj}]" if d.obj else ""
        hint = f"\n    hint: {d.hint}" if d.hint else ""
        lines.append(
            f"{d.location}: {d.severity}: {d.code}{obj}: {d.message}{hint}"
        )
    errors = sum(1 for d in deduped if d.severity == Severity.ERROR)
    warnings = sum(1 for d in deduped if d.severity == Severity.WARNING)
    infos = sum(1 for d in deduped if d.severity == Severity.INFO)
    lines.append(
        f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
    )
    return "\n".join(lines)


def render_json(diagnostics: List[Diagnostic]) -> str:
    """Machine-readable rendering (one JSON document, stable keys)."""
    deduped = dedupe(diagnostics)
    return json.dumps(
        {
            "diagnostics": [d.to_dict() for d in deduped],
            "errors": sum(
                1 for d in deduped if d.severity == Severity.ERROR
            ),
            "warnings": sum(
                1 for d in deduped if d.severity == Severity.WARNING
            ),
        },
        indent=2,
        sort_keys=True,
    )
