"""Inline suppression comments for upalint findings.

An analyst who has reviewed a finding can silence it at the site::

    print(victim)              # upalint: disable=UPA301
    # upalint: disable=UPA301,UPA305
    fh.write(str(rows))
    leak_everything()          # upalint: disable=all

A suppression applies to the line it sits on, or — when the comment is
alone on its line — to the next line, matching the convention of other
linters.  Suppressions are collected with :mod:`tokenize`, not string
search, so a ``# upalint:`` inside a string literal does not suppress
anything.

Suppressed findings are *dropped*, not downgraded: the analyst has
asserted the site is safe and CI should stay green.  The paired audit
trail for "known but unfixed" findings is the baseline file
(:mod:`repro.staticcheck.baseline`).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Set

from repro.staticcheck.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*upalint:\s*disable=([A-Za-z0-9_,\s]+|all)", re.IGNORECASE
)


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes ('*' meaning all).

    A comment that is the only token on its line suppresses the *next*
    line as well, so block-style suppressions read naturally.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline
        ))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    code_lines = {
        tok.start[0]
        for tok in tokens
        if tok.type
        not in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER)
    }
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if not match:
            continue
        spec = match.group(1).strip()
        if spec.lower() == "all":
            codes = {"*"}
        else:
            codes = {
                c.strip().upper()
                for c in spec.split(",") if c.strip()
            }
        line = tok.start[0]
        suppressions.setdefault(line, set()).update(codes)
        if line not in code_lines:  # standalone comment: covers next line
            suppressions.setdefault(line + 1, set()).update(codes)
    return suppressions


def apply_suppressions(
    diagnostics: Iterable[Diagnostic],
    suppressions_by_file: Dict[str, Dict[int, Set[str]]],
) -> List[Diagnostic]:
    """Drop findings whose file:line carries a matching directive."""
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        codes = suppressions_by_file.get(diag.file, {}).get(diag.line)
        if codes and ("*" in codes or diag.code in codes):
            continue
        kept.append(diag)
    return kept


def suppressions_for_file(path: str) -> Dict[int, Set[str]]:
    """Collect suppression directives from one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return collect_suppressions(handle.read())
    except OSError:
        return {}
