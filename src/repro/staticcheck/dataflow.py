"""A worklist fixed-point engine over :mod:`repro.staticcheck.cfg`.

Generic forward may-analysis: the client supplies a *transfer
function* (how one basic block transforms an abstract state) and a
*join* (how states merge at control-flow confluences); the engine
iterates to the least fixed point.  Both upalint flow passes — taint
(:mod:`repro.staticcheck.taint`) and budget accounting
(:mod:`repro.staticcheck.budgetflow`) — are clients.

States are treated as opaque values compared with ``==``; the helpers
at the bottom implement the common "environment" lattice used by both
passes: an immutable mapping from variable name to a ``frozenset`` of
labels, joined pointwise by set union.  That lattice has finite height
for a finite label alphabet, so termination is guaranteed; a generous
iteration cap turns a client bug (a non-monotone transfer) into a
diagnostic instead of a hang.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from repro.staticcheck.cfg import CFG, BasicBlock

#: name -> set of labels.  Immutable so states can be shared/compared.
Env = Mapping[str, FrozenSet[str]]

EMPTY_ENV: Env = {}

#: Safety valve: |blocks| * |lattice height| is tiny for real scripts;
#: hitting this means a broken transfer function, not a big input.
MAX_PASSES = 10_000


def solve_forward(
    cfg: CFG,
    transfer: Callable[[BasicBlock, Env], Env],
    initial: Env,
    join: Callable[[Env, Env], Env],
) -> Dict[int, Tuple[Env, Env]]:
    """Run a forward analysis to fixed point.

    Returns ``{block_id: (in_state, out_state)}``.  ``initial`` is the
    state at the CFG entry; blocks never reached from the entry keep
    the bottom state (``EMPTY_ENV``-shaped, whatever ``join`` of
    nothing means to the client — here simply their initial in-state).
    """
    in_states: Dict[int, Env] = {bid: EMPTY_ENV for bid in cfg.blocks}
    out_states: Dict[int, Env] = {bid: EMPTY_ENV for bid in cfg.blocks}
    in_states[cfg.entry] = initial
    out_states[cfg.entry] = transfer(cfg.blocks[cfg.entry], initial)

    worklist = [b.bid for b in cfg.blocks_in_order()]
    seen_passes = 0
    while worklist:
        seen_passes += 1
        if seen_passes > MAX_PASSES:  # pragma: no cover - client bug
            raise RuntimeError(
                "dataflow did not converge; non-monotone transfer?"
            )
        bid = worklist.pop(0)
        block = cfg.blocks[bid]
        preds = block.preds
        if bid == cfg.entry:
            new_in = initial
        elif preds:
            new_in = out_states[preds[0]]
            for pred in preds[1:]:
                new_in = join(new_in, out_states[pred])
        else:
            new_in = in_states[bid]  # unreachable: stays bottom
        new_out = transfer(block, new_in)
        changed = (new_in != in_states[bid]
                   or new_out != out_states[bid])
        in_states[bid] = new_in
        out_states[bid] = new_out
        if changed:
            for succ in block.succs:
                if succ not in worklist:
                    worklist.append(succ)
    return {bid: (in_states[bid], out_states[bid]) for bid in cfg.blocks}


# ---------------------------------------------------------------------------
# The shared environment lattice
# ---------------------------------------------------------------------------


def env_join(a: Env, b: Env) -> Env:
    """Pointwise union — the may-analysis join."""
    if not a:
        return b
    if not b:
        return a
    merged = dict(a)
    for name, labels in b.items():
        have = merged.get(name)
        merged[name] = labels if have is None else (have | labels)
    return merged


def env_set(env: Env, name: str, labels: FrozenSet[str]) -> Env:
    """A copy of ``env`` with ``name`` rebound (strong update)."""
    updated = dict(env)
    if labels:
        updated[name] = labels
    else:
        updated.pop(name, None)
    return updated


def env_add(env: Env, name: str, labels: FrozenSet[str]) -> Env:
    """A copy of ``env`` with ``labels`` joined into ``name`` (weak
    update — used for mutations like ``d[k] = v``)."""
    if not labels:
        return env
    updated = dict(env)
    updated[name] = updated.get(name, frozenset()) | labels
    return updated
