"""SARIF 2.1.0 rendering for upalint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard code-scanning services ingest — GitHub's code-scanning tab
renders an uploaded SARIF file as inline annotations on the PR diff.
``repro lint --format sarif`` emits one run whose driver advertises
every registered code as a rule, so consumers can show titles and
summaries without knowing anything about UPA.

Only the stable core of the format is produced: tool.driver.rules,
results with ruleId/level/message/locations, and fingerprints matching
:mod:`repro.staticcheck.baseline` so a SARIF consumer's "new since
last scan" logic agrees with ``--baseline``.
"""

from __future__ import annotations

import json
from typing import List

from repro.staticcheck.baseline import fingerprint
from repro.staticcheck.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    Severity,
    dedupe,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rules() -> List[dict]:
    return [
        {
            "id": info.code,
            "name": info.title,
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.summary},
            "defaultConfiguration": {
                "level": _LEVELS[info.default_severity]
            },
        }
        for info in CODE_REGISTRY.values()
    ]


def _result(diag: Diagnostic) -> dict:
    message = diag.message
    if diag.hint:
        message = f"{message} (hint: {diag.hint})"
    result = {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
        "partialFingerprints": {"upalint/v1": fingerprint(diag)},
    }
    if diag.file:
        region = {}
        if diag.line:
            region["startLine"] = diag.line
            # SARIF columns are 1-based; ast's col_offset is 0-based.
            region["startColumn"] = diag.col + 1
        location = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": diag.file.replace("\\", "/"),
                },
            }
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    return result


def render_sarif(
    diagnostics: List[Diagnostic], *, tool_version: str = ""
) -> str:
    """Render findings as a single-run SARIF 2.1.0 document."""
    driver = {
        "name": "upalint",
        "informationUri":
            "https://github.com/upa-repro/upa#static-analysis",
        "rules": _rules(),
    }
    if tool_version:
        driver["version"] = tool_version
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [_result(d) for d in dedupe(diagnostics)],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
