"""Control-flow graphs over Python function/module bodies.

The shared substrate for upalint's flow-sensitive passes (the taint
pass in :mod:`repro.staticcheck.taint` and the budget pass in
:mod:`repro.staticcheck.budgetflow`).  A :class:`CFG` is a set of
:class:`BasicBlock`\\ s connected by directed edges; each block holds
the *leaf* elements executed in it, in order:

* plain simple statements (``ast.Assign``, ``ast.Expr``, ...);
* the **test expression** of an ``if``/``while`` that the block
  evaluates (an ``ast.expr`` element — clients that only care about
  statements can skip non-``stmt`` elements);
* loop / context-manager **headers**: the ``ast.For`` node itself (its
  body lives in successor blocks; the element stands for "bind the
  loop target from the iterable") and the ``ast.With`` node (standing
  for "bind the ``as`` names from the context expressions").

Every block also carries ``guards`` — the stack of enclosing branch /
loop conditions that control whether the block executes.  That is what
lets the taint pass flag a release whose execution is data-dependent
(UPA302) without computing post-dominators: the builder is structured,
so control dependence is simply the construction-time guard stack.

The graph is an *approximation* by design (upalint never executes
code): ``try`` bodies may jump to their handlers from the entry or the
end of the body, ``raise`` edges go to the function exit, and nested
function/class definitions are opaque single elements (their bodies
are separate scopes analyzed by the client).  For may-analyses — "can
a tainted value reach this statement" — the approximation errs on the
side of exploring more paths, never fewer.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Sequence, Tuple


class Guard(NamedTuple):
    """One enclosing condition controlling a block's execution.

    ``test`` is the branch/loop condition expression (for ``for``
    loops, the iterable); ``kind`` is ``'if' | 'while' | 'for' |
    'match' | 'except'``; ``line`` is the condition's source line.
    """

    test: ast.AST
    kind: str
    line: int


class BasicBlock:
    """A straight-line sequence of leaf elements."""

    def __init__(self, bid: int, guards: Tuple[Guard, ...] = ()):
        self.bid = bid
        self.elements: List[ast.AST] = []
        self.succs: List[int] = []
        self.preds: List[int] = []
        self.guards = guards

    def __repr__(self) -> str:  # debugging aid
        kinds = ",".join(type(e).__name__ for e in self.elements)
        return (f"BasicBlock({self.bid}, [{kinds}], "
                f"succs={self.succs})")


class CFG:
    """A control-flow graph with one entry and one exit block."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self._next_id = 0
        self.entry = self.new_block().bid
        self.exit = self.new_block().bid

    def new_block(self, guards: Tuple[Guard, ...] = ()) -> BasicBlock:
        block = BasicBlock(self._next_id, guards)
        self._next_id += 1
        self.blocks[block.bid] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def blocks_in_order(self) -> List[BasicBlock]:
        """Blocks in creation order (a stable quasi-topological order
        for code without back edges; the worklist handles the rest)."""
        return [self.blocks[bid] for bid in sorted(self.blocks)]


class _LoopFrame(NamedTuple):
    header: int  # target of `continue`
    after: int  # target of `break`


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_LoopFrame] = []

    # Every _stmt* method threads the "current" open block through and
    # returns the block subsequent statements should append to.  A
    # terminated path (after return/break/...) is represented by a
    # fresh unreachable block, which the fixpoint engine simply never
    # populates with state.

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        cur = self.cfg.new_block()
        self.cfg.add_edge(self.cfg.entry, cur.bid)
        cur = self._stmts(body, cur)
        self.cfg.add_edge(cur.bid, self.cfg.exit)
        return self.cfg

    def _stmts(self, body: Sequence[ast.stmt],
               cur: BasicBlock) -> BasicBlock:
        for stmt in body:
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: BasicBlock) -> BasicBlock:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.elements.append(stmt)  # binds the `as` names
            return self._stmts(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        if isinstance(stmt, ast.Return):
            cur.elements.append(stmt)
            self.cfg.add_edge(cur.bid, self.cfg.exit)
            return self.cfg.new_block(cur.guards)
        if isinstance(stmt, ast.Raise):
            cur.elements.append(stmt)
            self.cfg.add_edge(cur.bid, self.cfg.exit)
            return self.cfg.new_block(cur.guards)
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.cfg.add_edge(cur.bid, self.loops[-1].after)
            return self.cfg.new_block(cur.guards)
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.add_edge(cur.bid, self.loops[-1].header)
            return self.cfg.new_block(cur.guards)
        # Everything else — assignments, expression statements, nested
        # def/class (opaque), imports, global/nonlocal, assert, pass —
        # is a leaf element of the current block.
        cur.elements.append(stmt)
        return cur

    def _if(self, stmt: ast.If, cur: BasicBlock) -> BasicBlock:
        cur.elements.append(stmt.test)
        guard = Guard(stmt.test, "if", stmt.lineno)
        after = self.cfg.new_block(cur.guards)
        then = self.cfg.new_block(cur.guards + (guard,))
        self.cfg.add_edge(cur.bid, then.bid)
        then_end = self._stmts(stmt.body, then)
        self.cfg.add_edge(then_end.bid, after.bid)
        if stmt.orelse:
            orelse = self.cfg.new_block(cur.guards + (guard,))
            self.cfg.add_edge(cur.bid, orelse.bid)
            orelse_end = self._stmts(stmt.orelse, orelse)
            self.cfg.add_edge(orelse_end.bid, after.bid)
        else:
            self.cfg.add_edge(cur.bid, after.bid)
        return after

    def _while(self, stmt: ast.While, cur: BasicBlock) -> BasicBlock:
        header = self.cfg.new_block(cur.guards)
        header.elements.append(stmt.test)
        self.cfg.add_edge(cur.bid, header.bid)
        guard = Guard(stmt.test, "while", stmt.lineno)
        after = self.cfg.new_block(cur.guards)
        body = self.cfg.new_block(cur.guards + (guard,))
        self.cfg.add_edge(header.bid, body.bid)
        self.cfg.add_edge(header.bid, after.bid)
        self.loops.append(_LoopFrame(header.bid, after.bid))
        body_end = self._stmts(stmt.body, body)
        self.loops.pop()
        self.cfg.add_edge(body_end.bid, header.bid)
        if stmt.orelse:
            orelse_end = self._stmts(
                stmt.orelse, self.cfg.new_block(cur.guards)
            )
            self.cfg.add_edge(header.bid, orelse_end.bid)
            self.cfg.add_edge(orelse_end.bid, after.bid)
        return after

    def _for(self, stmt, cur: BasicBlock) -> BasicBlock:
        header = self.cfg.new_block(cur.guards)
        header.elements.append(stmt)  # binds target from iter
        self.cfg.add_edge(cur.bid, header.bid)
        guard = Guard(stmt.iter, "for", stmt.lineno)
        after = self.cfg.new_block(cur.guards)
        body = self.cfg.new_block(cur.guards + (guard,))
        self.cfg.add_edge(header.bid, body.bid)
        self.cfg.add_edge(header.bid, after.bid)
        self.loops.append(_LoopFrame(header.bid, after.bid))
        body_end = self._stmts(stmt.body, body)
        self.loops.pop()
        self.cfg.add_edge(body_end.bid, header.bid)
        if stmt.orelse:
            orelse_end = self._stmts(
                stmt.orelse, self.cfg.new_block(cur.guards)
            )
            self.cfg.add_edge(header.bid, orelse_end.bid)
            self.cfg.add_edge(orelse_end.bid, after.bid)
        return after

    def _try(self, stmt: ast.Try, cur: BasicBlock) -> BasicBlock:
        after = self.cfg.new_block(cur.guards)
        body = self.cfg.new_block(cur.guards)
        self.cfg.add_edge(cur.bid, body.bid)
        body_end = self._stmts(stmt.body, body)
        if stmt.orelse:
            # `else` runs only when the body completed without raising.
            else_block = self.cfg.new_block(cur.guards)
            self.cfg.add_edge(body_end.bid, else_block.bid)
            else_end = self._stmts(stmt.orelse, else_block)
            self.cfg.add_edge(else_end.bid, after.bid)
        else:
            self.cfg.add_edge(body_end.bid, after.bid)
        for handler in stmt.handlers:
            guard = Guard(stmt, "except",
                          getattr(handler, "lineno", stmt.lineno))
            h_block = self.cfg.new_block(cur.guards + (guard,))
            # The body may fail at its first or its last statement; an
            # edge from each end approximates "anywhere in between".
            self.cfg.add_edge(body.bid, h_block.bid)
            self.cfg.add_edge(body_end.bid, h_block.bid)
            h_end = self._stmts(handler.body, h_block)
            self.cfg.add_edge(h_end.bid, after.bid)
        if stmt.finalbody:
            return self._stmts(stmt.finalbody, after)
        return after

    def _match(self, stmt: ast.Match, cur: BasicBlock) -> BasicBlock:
        cur.elements.append(stmt.subject)
        guard = Guard(stmt.subject, "match", stmt.lineno)
        after = self.cfg.new_block(cur.guards)
        self.cfg.add_edge(cur.bid, after.bid)  # no case may match
        for case in stmt.cases:
            c_block = self.cfg.new_block(cur.guards + (guard,))
            self.cfg.add_edge(cur.bid, c_block.bid)
            c_end = self._stmts(case.body, c_block)
            self.cfg.add_edge(c_end.bid, after.bid)
        return after


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build a CFG over a statement list (a function body or a module
    body).  Nested function/class definitions are opaque elements —
    build a separate CFG over ``node.body`` to analyze them."""
    return _Builder().build(body)
