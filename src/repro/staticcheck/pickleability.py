"""Pickleability pass: will this query's monoid ship to process workers?

The process executor backend (``EngineConfig(backend="processes")``)
serializes every task with **stdlib pickle** — deliberately, so the
engine has no dependency on cloudpickle.  That makes pickleability a
static property of how a query is written:

* lambdas and nested ``def``s handed to RDD operators
  (``map``/``filter``/``map_partitions``/...) never pickle;
* a method built as a closure over unpicklable values (locks, open
  handles) never pickles;
* a query instance whose attributes hold runtime machinery (threads,
  sockets, tracers, engine contexts) never pickles, and the monoid
  methods are bound to that instance.

None of these are *correctness* bugs — the scheduler detects the pickle
failure synchronously and falls back to thread/inline execution, so
results are identical — but the fallback silently forfeits the
multi-core speedup, which is why UPA014 is a warning rather than an
error.  The dynamic parts (attribute/closure-cell pickling) only run
when the analyzer is given an instance; a class lints structurally.
"""

from __future__ import annotations

import ast
import pickle
from typing import Any, Iterable, List

from repro.staticcheck.diagnostics import Diagnostic, make_diagnostic
from repro.staticcheck.purity import (
    BATCH_PARTNERS,
    MONOID_METHODS,
    _MethodSource,
    _resolve_method,
    _unwrap_callable,
)

PASS = "pickleability"

#: RDD operators that ship their callable argument inside the task.
_SHIPPING_METHODS = {
    "map", "filter", "flat_map", "map_partitions", "key_by", "glom",
    "foreach", "reduce", "fold", "aggregate", "reduce_by_key",
    "combine_by_key", "group_by_key", "sort_by", "top",
}

#: every method the pass inspects (scalar monoid + batched kernels).
_INSPECTED = tuple(MONOID_METHODS) + tuple(BATCH_PARTNERS)


def _truncate(text: str, limit: int = 120) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _check_shipped_closures(src: _MethodSource) -> Iterable[Diagnostic]:
    """Lambdas / nested defs passed into RDD shipping operators."""
    nested = {
        n.name
        for n in ast.walk(src.node)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n is not src.node
    }
    for node in ast.walk(src.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SHIPPING_METHODS
        ):
            continue
        operands = list(node.args) + [kw.value for kw in node.keywords]
        for arg in operands:
            if isinstance(arg, ast.Lambda):
                offender = "a lambda"
            elif isinstance(arg, ast.Name) and arg.id in nested:
                offender = f"the nested function {arg.id}()"
            else:
                continue
            yield make_diagnostic(
                "UPA014",
                f"{src.where()} ships {offender} into "
                f".{node.func.attr}(); stdlib pickle cannot serialize "
                "lambdas or nested closures, so the process backend "
                "falls back to thread/inline execution for every job "
                "running this operator",
                file=src.file,
                line=src.line_of(arg),
                obj=src.owner_name,
                hint="hoist the function to module level (or a small "
                "__slots__ callable class) so process workers can "
                "unpickle the task",
                pass_name=PASS,
            )


def _check_closure_cells(
    func: Any, owner: str, method_name: str, file: str, line: int
) -> Iterable[Diagnostic]:
    """Free variables the method closed over that do not pickle."""
    raw = _unwrap_callable(func)
    closure = getattr(raw, "__closure__", None)
    code = getattr(raw, "__code__", None)
    if not closure or code is None:
        return
    for name, cell in zip(code.co_freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:  # empty cell
            continue
        try:
            pickle.dumps(value)
        except Exception as exc:
            yield make_diagnostic(
                "UPA014",
                f"{owner}.{method_name} closes over {name!r}, an "
                f"unpicklable {type(value).__name__} "
                f"({_truncate(str(exc))}); the process backend cannot "
                "ship this method to workers and will fall back",
                file=file,
                line=line,
                obj=owner,
                hint="pass the value through build_aux()/the monoid "
                "element, or restructure the method so it is a plain "
                "module-level function",
                pass_name=PASS,
            )


def _check_instance_attrs(query: Any, owner: str) -> Iterable[Diagnostic]:
    """Instance attributes that do not pickle (bound methods ship self)."""
    attrs = getattr(query, "__dict__", None)
    if not isinstance(attrs, dict):
        return
    for name in sorted(attrs):
        value = attrs[name]
        try:
            pickle.dumps(value)
        except Exception as exc:
            yield make_diagnostic(
                "UPA014",
                f"{owner} instance attribute {name!r} holds an "
                f"unpicklable {type(value).__name__} "
                f"({_truncate(str(exc))}); monoid methods are bound to "
                "the instance, so the process backend cannot ship any "
                "of them to workers and will fall back",
                obj=owner,
                hint="keep runtime machinery (locks, sockets, engines, "
                "tracers) out of query instances; derive it in "
                "build_aux() or look it up inside the task",
                pass_name=PASS,
            )


def check_query(query: Any) -> List[Diagnostic]:
    """Run the pickleability pass on a query instance or class."""
    cls = query if isinstance(query, type) else type(query)
    owner = getattr(query, "name", "") or cls.__name__
    diagnostics: List[Diagnostic] = []
    for method_name in _INSPECTED:
        func = _resolve_method(cls, method_name)
        if func is None:
            continue
        try:
            src = _MethodSource(func, owner, method_name)
        except (OSError, TypeError, SyntaxError, IndentationError):
            # purity already reports UPA006 for unavailable source.
            file, line = "", 0
        else:
            file, line = src.file, src.start_line
            diagnostics.extend(_check_shipped_closures(src))
        diagnostics.extend(
            _check_closure_cells(func, owner, method_name, file, line)
        )
    if not isinstance(query, type):
        diagnostics.extend(_check_instance_attrs(query, owner))
    return diagnostics
