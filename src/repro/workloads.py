"""Registry of the paper's nine evaluated workloads (Table II).

Each workload pairs a query with the generator of its dataset so
benchmarks can say "give me all nine at scale S, seed k".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.query import MapReduceQuery, Tables
from repro.mining import (
    KMeansQuery,
    LifeScienceConfig,
    LinearRegressionQuery,
    make_life_science_tables,
)
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import all_queries as tpch_queries


@dataclass(frozen=True)
class Workload:
    """One evaluated query plus its dataset factory.

    Attributes:
        query: the MapReduceQuery instance.
        make_tables: (scale_rows, seed) -> tables dict.
        query_type: 'count' / 'arithmetic' / 'ml' (Table II).
        flex_supported: whether FLEX's analysis applies.
    """

    query: MapReduceQuery
    make_tables: Callable[[int, int], Tables]
    query_type: str
    flex_supported: bool

    @property
    def name(self) -> str:
        return self.query.name


def _tpch_tables(scale_rows: int, seed: int) -> Tables:
    return TPCHGenerator(TPCHConfig(scale_rows=scale_rows, seed=seed)).generate()


def _ml_tables(dim: int, clusters: int):
    def make(scale_rows: int, seed: int) -> Tables:
        return make_life_science_tables(
            LifeScienceConfig(
                num_records=scale_rows, dim=dim, num_clusters=clusters, seed=seed
            )
        )

    return make


def all_workloads(ml_dim: int = 4, ml_clusters: int = 3) -> List[Workload]:
    """The nine workloads in the paper's Table II order."""
    workloads = [
        Workload(q, _tpch_tables, q.query_type, q.flex_supported)
        for q in tpch_queries()
    ]
    workloads.append(
        Workload(
            KMeansQuery(num_clusters=ml_clusters, dim=ml_dim),
            _ml_tables(ml_dim, ml_clusters),
            "ml",
            False,
        )
    )
    workloads.append(
        Workload(
            LinearRegressionQuery(dim=ml_dim),
            _ml_tables(ml_dim, ml_clusters),
            "ml",
            False,
        )
    )
    return workloads


def workload_by_name(name: str) -> Workload:
    registry = {w.name: w for w in all_workloads()}
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(registry)}"
        ) from None
