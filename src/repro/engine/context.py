"""EngineContext: entry point to the MapReduce engine.

Owns the scheduler, shuffle manager, block store and metrics — the
moral equivalent of a ``SparkContext``.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.common.config import DEFAULT_CONFIG, EngineConfig
from repro.engine.accumulator import Accumulator
from repro.engine.broadcast import Broadcast
from repro.engine.fault import FaultInjector
from repro.engine.metrics import MetricsRegistry
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import TaskScheduler
from repro.engine.shuffle import ShuffleManager
from repro.engine.storage import BlockStore

T = TypeVar("T")


class EngineContext:
    """Creates RDDs and owns all engine services.

    Example:
        >>> ctx = EngineContext()
        >>> rdd = ctx.parallelize([1, 2, 3, 4], num_partitions=2)
        >>> rdd.map(lambda v: v + 1).collect()
        [2, 3, 4, 5]
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or DEFAULT_CONFIG
        self.metrics = MetricsRegistry()
        self.block_store = BlockStore(self.config.cache_capacity_blocks, self.metrics)
        self.scheduler = TaskScheduler(
            self.metrics,
            max_task_retries=self.config.max_task_retries,
            backend=self.config.effective_backend,
            max_workers=self.config.max_workers,
            process_start_method=self.config.process_start_method,
        )
        self.shuffle_manager = ShuffleManager(self)
        #: span tracer shared with the scheduler and shuffle manager
        #: (disabled by default; see install_tracer).
        self.tracer = self.scheduler.tracer
        #: sampling profiler shared with the scheduler (None unless
        #: install_profiler ran; workers mirror it when live).
        self.profiler = None
        #: live introspection server, if serve() started one.
        self.obs_server = None
        #: time-series store sampling this engine's metrics (None
        #: unless install_timeseries ran; stop() stops its sampler).
        self.timeseries = None
        self._rdd_ids = itertools.count(1)
        self._lock = threading.Lock()
        #: bumped by every stop(); part of cache_epoch() so derived
        #: caches (incremental partials) cannot survive a lifecycle
        #: clear-and-restart unnoticed.
        self._stop_generation = 0

    def _next_rdd_id(self) -> int:
        with self._lock:
            return next(self._rdd_ids)

    def reserve_cache_id(self) -> int:
        """Reserve a block-store namespace id.

        Drawn from the same counter as RDD ids, so callers that cache
        derived data directly in the block store (e.g. the incremental
        session's mapped-element blocks) can never collide with a
        cached RDD's partitions.
        """
        return self._next_rdd_id()

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------

    def parallelize(
        self, data: Iterable[T], num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute an in-memory collection into an RDD."""
        return ParallelCollectionRDD(
            self, list(data), num_partitions or self.config.default_parallelism
        )

    def parallelize_columnar(
        self, rows: Iterable, num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute dict rows as columnar partition blocks.

        The returned RDD iterates dict rows like :meth:`parallelize`
        (boxing lazily per partition), but stores data column-major —
        ``map_partitions`` functions and batch kernels that understand
        :class:`~repro.engine.columnar.ColumnarPartition` skip per-row
        boxing, and the process backend ships whole column buffers.
        """
        from repro.engine.rdd import ColumnarCollectionRDD

        return ColumnarCollectionRDD.from_rows(
            self, list(rows), num_partitions or self.config.default_parallelism
        )

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    def union(self, rdds: Sequence[RDD]) -> RDD:
        """Union of several RDDs."""
        if not rdds:
            return self.empty_rdd()
        result = rdds[0]
        for rdd in rdds[1:]:
            result = result.union(rdd)
        return result

    # ------------------------------------------------------------------
    # Shared variables
    # ------------------------------------------------------------------

    def broadcast(self, value: T) -> Broadcast:
        """Ship a read-only value to all tasks (counted by the cost model)."""
        return Broadcast(value, self.metrics, self.config.broadcast_record_cost)

    def accumulator(self, zero: T, combine: Callable[[T, T], T]) -> Accumulator:
        return Accumulator(zero, combine)

    # ------------------------------------------------------------------
    # Fault injection (tests / chaos benchmarks)
    # ------------------------------------------------------------------

    def install_fault_injector(self, injector: Optional[FaultInjector]) -> None:
        """Install (or clear, with None) a task-level fault injector."""
        self.scheduler.fault_injector = injector

    def install_job_listener(self, listener) -> None:
        """Install (or clear, with None) a job event listener."""
        self.scheduler.job_listener = listener

    def install_tracer(self, tracer, events: bool = True) -> None:
        """Install (or clear, with None) a span tracer on the engine.

        Engine jobs and shuffles then emit spans into it.  With
        ``events=True`` (the default) a :class:`JobListener` is
        auto-wired alongside — traces and the job event log describe
        the same executions — unless one is already installed.
        """
        from repro.engine.events import JobListener
        from repro.obs.tracing import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scheduler.tracer = self.tracer
        if (
            events
            and self.tracer.enabled
            and self.scheduler.job_listener is None
        ):
            self.install_job_listener(JobListener())

    def install_timeseries(self, store) -> None:
        """Install (or clear, with None) a metric time-series store.

        The store samples this engine's registry (it is read-only over
        thread-safe snapshots, so it can never influence outputs);
        installing it here makes :meth:`serve` expose it on
        ``/timeseries`` + ``/dashboard`` and makes :meth:`stop` stop
        its sampler thread with the rest of the engine services.
        """
        if store is None:
            if self.timeseries is not None:
                self.timeseries.stop()
            self.timeseries = None
            return
        self.timeseries = store

    def install_profiler(self, profiler) -> None:
        """Install (or clear, with None) a sampling profiler.

        The scheduler reads it when shipping process tasks: while the
        profiler is running, workers mirror its sampling rate and ship
        their collapsed stacks back with each task result, merged into
        this profiler's aggregate (see :mod:`repro.obs.crossproc`).
        Thread/inline backends need no wiring — the profiler sees
        their frames directly.
        """
        self.profiler = profiler
        self.scheduler.profiler = profiler

    @property
    def job_listener(self):
        """The installed job event listener, if any."""
        return self.scheduler.job_listener

    @property
    def stop_generation(self) -> int:
        """How many times this context has been stop()ped."""
        return self._stop_generation

    def cache_epoch(self) -> tuple:
        """Version tag for caches of *derived* engine data.

        Combines the stop generation, the executor backend and the
        worker-respawn count: any of them changing means partials
        computed under the old execution regime must not be merged
        with new ones (a respawned process pool, a backend switch or a
        stopped-and-restarted context may have lost or changed ambient
        state).  Callers stamp cached blocks with this tuple via
        :meth:`BlockStore.put_tagged` and a mismatch reads as a miss.
        """
        return (
            self._stop_generation,
            self.scheduler.backend,
            int(self.metrics.get(MetricsRegistry.WORKER_RESPAWNS)),
        )

    def clear_shuffle_state(self) -> None:
        """Drop stored shuffle outputs (frees memory between experiments)."""
        self.shuffle_manager.clear()

    def serve(self, port: int = 0, host: str = "127.0.0.1",
              **sources: Any):
        """Start a live introspection server over this engine.

        Exposes the engine's metrics registry (and its tracer, when one
        is installed) on ``/metrics``, ``/healthz``, ``/traces``;
        ``sources`` forwards extra data sources (``ledger=``,
        ``accountants=``, ``alerts=``, ``profiler=``) straight to
        :class:`~repro.obs.server.ObservabilityServer`.  ``port=0``
        binds an ephemeral port; the started server is returned and
        also stopped by :meth:`stop`.
        """
        from repro.obs.server import ObservabilityServer
        from repro.obs.tracing import NULL_TRACER

        if self.obs_server is not None:
            return self.obs_server
        tracer = self.tracer if self.tracer is not NULL_TRACER else None
        sources.setdefault("tracer", tracer)
        sources.setdefault("timeseries", self.timeseries)
        self.obs_server = ObservabilityServer(
            metrics=self.metrics, host=host, port=port, **sources
        ).start()
        return self.obs_server

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Release engine resources (idempotent).

        Shuts down the scheduler's persistent worker pools and drops
        stored shuffle outputs *and* cached partition blocks — a
        stopped context must not keep partition data alive between
        experiments.  The context remains usable: a later job lazily
        recreates the pools and repopulates caches from lineage,
        mirroring how ``SparkContext`` users call ``stop()`` when an
        application finishes.
        """
        if self.obs_server is not None:
            self.obs_server.stop()
            self.obs_server = None
        if self.timeseries is not None:
            self.timeseries.stop()
        self.scheduler.shutdown()
        self.shuffle_manager.clear()
        self.block_store.clear()
        self._stop_generation += 1

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
