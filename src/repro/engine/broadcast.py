"""Broadcast variables: read-only values shared by all tasks.

In a distributed engine broadcasting replicates a value to every worker;
here it is a wrapper whose creation is *counted* by the metrics registry
(size estimate = number of records for sized collections) so the cost
model sees it — UPA's reduceByKeyDP broadcasts maps of sampled records
(paper section V-B).
"""

from __future__ import annotations

import itertools
from typing import Any, Generic, TypeVar

from repro.engine.metrics import MetricsRegistry

T = TypeVar("T")

_ids = itertools.count()


def _estimate_records(value: Any) -> int:
    if isinstance(value, (list, tuple, set, frozenset, dict, str, bytes)):
        return len(value)
    return 1


class Broadcast(Generic[T]):
    """A broadcast value; access it through ``.value``."""

    def __init__(self, value: T, metrics: MetricsRegistry, record_cost: float):
        self.broadcast_id = next(_ids)
        self._value = value
        self._destroyed = False
        #: estimated record count, exposed so callers (e.g. the SQL
        #: broadcast hash join) can report replication size in traces.
        self.records = _estimate_records(value)
        metrics.incr(MetricsRegistry.BROADCASTS)
        metrics.incr(MetricsRegistry.BROADCAST_RECORDS, self.records)
        metrics.incr(MetricsRegistry.NETWORK_COST, self.records * record_cost)

    @property
    def value(self) -> T:
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.broadcast_id} was destroyed")
        return self._value

    def destroy(self) -> None:
        """Release the broadcast value."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]
