"""Fault injection for the engine's tasks.

Distributed engines must tolerate worker failures; Spark does so by
recomputing lost partitions from lineage.  UPA's correctness argument
assumes operators are commutative and associative *because* this lets
failed work be redone in any order.  The fault injector lets tests kill
a configurable fraction of task attempts and assert that results are
identical to a failure-free run.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.common.rng import make_rng


class InjectedFault(Exception):
    """Raised inside a task attempt chosen to fail by the injector."""

    def __init__(self, stage_id: int, partition: int, attempt: int):
        super().__init__(
            f"injected fault in stage {stage_id} partition {partition} "
            f"attempt {attempt}"
        )


class FaultInjector:
    """Randomly fails task attempts with a given probability.

    Args:
        failure_probability: chance that any single task *attempt* fails.
        max_failures: optional hard cap on total injected failures, so a
            high probability cannot fail the same task past the retry
            limit in tests.
        seed: RNG seed for deterministic failure patterns.
    """

    def __init__(
        self,
        failure_probability: float = 0.0,
        max_failures: Optional[int] = None,
        seed: Optional[int] = 0,
    ):
        if not 0.0 <= failure_probability <= 1.0:
            raise ValueError("failure_probability must be within [0, 1]")
        self.failure_probability = failure_probability
        self.max_failures = max_failures
        self._rng = make_rng(seed, "fault-injector")
        self._lock = threading.Lock()
        self.failures_injected = 0

    def maybe_fail(self, stage_id: int, partition: int, attempt: int) -> None:
        """Raise :class:`InjectedFault` for attempts selected to fail."""
        if self.failure_probability == 0.0:
            return
        with self._lock:
            if self.max_failures is not None and self.failures_injected >= self.max_failures:
                return
            if self._rng.random() < self.failure_probability:
                self.failures_injected += 1
                raise InjectedFault(stage_id, partition, attempt)
