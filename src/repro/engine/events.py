"""Job event log: observability for engine executions.

A listener attached to the scheduler records one event per job (stage
id, partition count, wall time, task attempts), giving tests and
benchmarks a structured view of *what ran* — the moral equivalent of
Spark's event log / SparkListener.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, List


@dataclass(frozen=True)
class JobEvent:
    """One completed job."""

    stage_id: int
    rdd_id: int
    rdd_type: str
    num_partitions: int
    duration_seconds: float
    task_attempts: int


class JobListener:
    """Collects :class:`JobEvent` records; install via
    :meth:`repro.engine.context.EngineContext.install_job_listener`."""

    def __init__(self, capacity: int = 10_000):
        self._lock = threading.Lock()
        # deque(maxlen=...) evicts the oldest event in O(1); the old
        # list implementation paid an O(n) left-shift per eviction,
        # which compounds when a long session overflows the capacity
        # on every job.
        self._events: Deque[JobEvent] = deque(maxlen=capacity)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, event: JobEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> List[JobEvent]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def total_duration(self) -> float:
        return sum(e.duration_seconds for e in self.events())

    def jobs_over(self, seconds: float) -> List[JobEvent]:
        """Slow-job report: every job longer than ``seconds``."""
        return [e for e in self.events() if e.duration_seconds > seconds]

    def summary(self) -> str:
        """One-line-per-job text report."""
        lines = [
            f"stage={e.stage_id} rdd={e.rdd_type}[{e.rdd_id}] "
            f"partitions={e.num_partitions} tasks={e.task_attempts} "
            f"{e.duration_seconds * 1000:.1f}ms"
            for e in self.events()
        ]
        return "\n".join(lines)
