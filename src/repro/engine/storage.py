"""Block store: LRU cache of materialized RDD partitions.

``rdd.cache()`` marks an RDD persistent; the first computation of each
partition stores the realized record list here, and later computations
are served from memory.  Eviction follows LRU with a block-count
capacity.  Losing a block is always safe: the scheduler recomputes it
from lineage (this is exercised by the fault-injection tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.engine.metrics import MetricsRegistry

BlockId = Tuple[int, int]  # (rdd_id, partition_index)


class _TaggedBlock:
    """A block payload stamped with a version tag.

    Tagged blocks are how callers that cache *derived* data (the
    incremental session's mapped-element blocks, columnar partition
    caches) invalidate on epoch changes: a ``get_tagged`` with a
    different tag behaves exactly like a miss and drops the stale
    entry, so a stale partial can never be merged after a backend
    switch or worker respawn.
    """

    __slots__ = ("tag", "payload")

    def __init__(self, tag, payload):
        self.tag = tag
        self.payload = payload


class BlockStore:
    """Thread-safe LRU store of partition blocks."""

    def __init__(self, capacity_blocks: int, metrics: MetricsRegistry):
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        self._capacity = capacity_blocks
        self._metrics = metrics
        self._lock = threading.Lock()
        self._blocks: "OrderedDict[BlockId, List]" = OrderedDict()

    def get(self, block_id: BlockId) -> Optional[List]:
        """Return the cached block, or None on miss; updates LRU order."""
        with self._lock:
            block = self._blocks.get(block_id)
            if block is None or isinstance(block, _TaggedBlock):
                # tagged blocks are only reachable via get_tagged —
                # an untagged read must never see versioned payloads.
                self._metrics.incr(MetricsRegistry.CACHE_MISSES)
                return None
            self._blocks.move_to_end(block_id)
            self._metrics.incr(MetricsRegistry.CACHE_HITS)
            return block

    def put(self, block_id: BlockId, records: List) -> None:
        """Insert a block, evicting LRU blocks past capacity."""
        with self._lock:
            self._blocks[block_id] = records
            self._blocks.move_to_end(block_id)
            while len(self._blocks) > self._capacity:
                self._blocks.popitem(last=False)
                self._metrics.incr(MetricsRegistry.CACHE_EVICTIONS)

    def get_tagged(self, block_id: BlockId, tag) -> Optional[List]:
        """Return a tagged block's payload iff its tag matches.

        A present block with a *different* tag is dropped and counted
        as a miss — version tags exist so stale derived data is
        unreachable the instant its epoch moves on.
        """
        with self._lock:
            entry = self._blocks.get(block_id)
            if isinstance(entry, _TaggedBlock) and entry.tag == tag:
                self._blocks.move_to_end(block_id)
                self._metrics.incr(MetricsRegistry.CACHE_HITS)
                return entry.payload
            if entry is not None:
                del self._blocks[block_id]
            self._metrics.incr(MetricsRegistry.CACHE_MISSES)
            return None

    def put_tagged(self, block_id: BlockId, tag, payload: List) -> None:
        """Insert a version-tagged block (same LRU policy as ``put``)."""
        with self._lock:
            self._blocks[block_id] = _TaggedBlock(tag, payload)
            self._blocks.move_to_end(block_id)
            while len(self._blocks) > self._capacity:
                self._blocks.popitem(last=False)
                self._metrics.incr(MetricsRegistry.CACHE_EVICTIONS)

    def evict_rdd(self, rdd_id: int) -> int:
        """Drop every block of an RDD (``unpersist``); returns count dropped."""
        with self._lock:
            victims = [bid for bid in self._blocks if bid[0] == rdd_id]
            for bid in victims:
                del self._blocks[bid]
        return len(victims)

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks

    def drop(self, block_id: BlockId) -> bool:
        """Drop one block (used by fault-injection tests). True if present."""
        with self._lock:
            return self._blocks.pop(block_id, None) is not None

    def clear(self) -> int:
        """Drop every block (``EngineContext.stop``); returns count dropped.

        Not counted as evictions: eviction metrics measure capacity
        pressure, and a lifecycle clear is not capacity pressure.
        """
        with self._lock:
            dropped = len(self._blocks)
            self._blocks.clear()
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
