"""Columnar partition representation: per-column buffers, not row dicts.

Every hot path in the engine historically iterated Python dict rows —
one heap-allocated ``dict`` per record, one boxed object per field.
``ColumnarPartition`` stores a partition column-major instead:

* numeric columns live in compact typed buffers — ``array.array``
  (``'d'``/``'q'``/``'b'``) by default, promoted to numpy arrays when
  numpy is importable (``numpy_column`` is then zero-copy);
* everything else (dates, strings, None-bearing columns) stays in a
  plain object list;
* ``slice()`` is zero-copy for numpy-backed columns (views) and
  buffer-protocol cheap for ``array`` columns (``memoryview`` slices);
* the row adapters (``iter_rows`` / ``__iter__`` / ``__getitem__``)
  box dicts lazily, so row-oriented operators keep working unchanged
  and pay for boxing only when a row is actually materialized.

A ``ColumnarPartition`` deliberately quacks like ``Sequence[Row]``
(``len``, ``bool``, iteration, int/slice indexing) so it can be handed
to any ``map_batch`` kernel or ``map_partitions`` function written
against row sequences; kernels that know about columns call
``column``/``numpy_column`` and skip boxing entirely (see
``repro.core.batch.column_values``).

Partitions pickle by column buffer — not row-by-row — which is what
makes them the natural shipping format for the process executor
backend (``EngineConfig(backend="processes")``).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # optional acceleration: everything works on array/memoryview alone
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

Row = Dict[str, Any]

#: typecodes tried for all-numeric columns, in preference order.
_INT_TYPECODE = "q"
_FLOAT_TYPECODE = "d"
_BOOL_TYPECODE = "b"


def _build_buffer(values: List[Any]) -> Any:
    """Pack ``values`` into the tightest buffer that holds them exactly.

    Homogeneous bools/ints/floats become typed ``array`` buffers (or
    numpy arrays when available); anything else — None, dates, strings,
    mixed types — stays a plain list so no value is coerced.
    """
    kind = None  # 'b' | 'q' | 'd'
    for v in values:
        t = type(v)
        if t is bool:
            k = _BOOL_TYPECODE
        elif t is int:
            k = _INT_TYPECODE
        elif t is float:
            k = _FLOAT_TYPECODE
        else:
            return list(values)
        if kind is None or kind == k:
            kind = k
        elif {kind, k} == {_INT_TYPECODE, _FLOAT_TYPECODE}:
            kind = _FLOAT_TYPECODE
        else:
            return list(values)
    if kind is None:  # empty column
        kind = _FLOAT_TYPECODE
    buf = array(kind, values)
    if _np is not None:
        return _np.asarray(buf)
    return buf


def _buffer_length(buf: Any) -> int:
    return len(buf)


class ColumnarPartition:
    """One partition stored column-major.

    Attributes:
        names: column names, in stable (first-row) order.
        version: partition-version tag.  Structural operations (slice/
            select/take/compress) and pickling preserve it; callers that
            cache derived blocks (see ``BlockStore.put_tagged``) bump it
            when the underlying table is re-registered so stale cached
            partitions read as misses instead of being merged.
    """

    __slots__ = ("_columns", "names", "_length", "version")

    def __init__(self, columns: Dict[str, Any], length: Optional[int] = None,
                 names: Optional[Sequence[str]] = None, version: int = 0):
        self._columns = dict(columns)
        self.version = int(version)
        self.names: Tuple[str, ...] = tuple(
            names if names is not None else columns.keys()
        )
        if length is None:
            length = (
                _buffer_length(next(iter(columns.values())))
                if columns else 0
            )
        self._length = int(length)
        for name in self.names:
            if _buffer_length(self._columns[name]) != self._length:
                raise ValueError(
                    f"column {name!r} has "
                    f"{_buffer_length(self._columns[name])} values, "
                    f"expected {self._length}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Row],
                  names: Optional[Sequence[str]] = None,
                  ) -> "ColumnarPartition":
        """Transpose dict rows into column buffers.

        ``names`` fixes the column set; by default it is taken from the
        first row (every row must then have the same keys, the same
        contract ``Schema.from_rows`` enforces in the SQL layer).
        """
        rows = rows if isinstance(rows, list) else list(rows)
        if names is None:
            names = list(rows[0].keys()) if rows else []
        columns = {
            name: _build_buffer([row[name] for row in rows])
            for name in names
        }
        return cls(columns, length=len(rows), names=names)

    def with_version(self, version: int) -> "ColumnarPartition":
        """The same partition (shared buffers) under a new version tag."""
        return ColumnarPartition(
            self._columns, length=self._length, names=self.names,
            version=version,
        )

    @classmethod
    def empty_like(cls, other: "ColumnarPartition") -> "ColumnarPartition":
        return other.slice(0, 0)

    # ------------------------------------------------------------------
    # Column access (no boxing)
    # ------------------------------------------------------------------

    def column(self, name: str) -> Any:
        """The raw buffer of one column (array/ndarray/list)."""
        return self._columns[name]

    def numpy_column(self, name: str):
        """A numpy view of one column (zero-copy for typed buffers).

        Object columns come back as ``dtype=object`` arrays; raises
        ``RuntimeError`` when numpy is unavailable.
        """
        if _np is None:  # pragma: no cover - numpy is present in CI
            raise RuntimeError("numpy is not available")
        buf = self._columns[name]
        if isinstance(buf, _np.ndarray):
            return buf
        if isinstance(buf, array):
            return _np.frombuffer(buf, dtype=buf.typecode)
        out = _np.empty(self._length, dtype=object)
        out[:] = buf
        return out

    def memoryview(self, name: str) -> memoryview:
        """A zero-copy memoryview of a typed column buffer."""
        buf = self._columns[name]
        if isinstance(buf, array):
            return memoryview(buf)
        if _np is not None and isinstance(buf, _np.ndarray) \
                and buf.dtype != object:
            return memoryview(buf)
        raise TypeError(f"column {name!r} is not buffer-backed")

    # ------------------------------------------------------------------
    # Structural operations (zero- or single-copy, never per-row)
    # ------------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "ColumnarPartition":
        """Rows ``[start, stop)`` — numpy columns are zero-copy views."""
        start, stop, _ = slice(start, stop).indices(self._length)
        columns = {
            name: buf[start:stop] for name, buf in self._columns.items()
        }
        return ColumnarPartition(
            columns, length=max(0, stop - start), names=self.names,
            version=self.version,
        )

    def select(
        self, names: Sequence[Tuple[str, str]]
    ) -> "ColumnarPartition":
        """Project to ``[(out_name, source_name), ...]`` — zero-copy.

        The new partition shares the selected column buffers; renames
        cost nothing because only the name → buffer mapping changes.
        """
        names = list(names)
        return ColumnarPartition(
            {out: self._columns[src] for out, src in names},
            length=self._length,
            names=[out for out, _src in names],
            version=self.version,
        )

    def take(self, indices: Sequence[int]) -> "ColumnarPartition":
        """Sub-partition at ``indices`` (order preserved)."""
        idx = list(indices)
        columns = {}
        for name, buf in self._columns.items():
            if _np is not None and isinstance(buf, _np.ndarray):
                columns[name] = buf[_np.asarray(idx, dtype=int)]
            else:
                columns[name] = type(buf)(
                    buf.typecode, [buf[i] for i in idx]
                ) if isinstance(buf, array) else [buf[i] for i in idx]
        return ColumnarPartition(columns, length=len(idx), names=self.names,
                                 version=self.version)

    def compress(self, mask: Any) -> "ColumnarPartition":
        """Keep rows where ``mask`` (boolean array/sequence) is true."""
        if _np is not None:
            mask = _np.asarray(mask, dtype=bool)
            columns = {}
            for name, buf in self._columns.items():
                if isinstance(buf, _np.ndarray):
                    columns[name] = buf[mask]
                else:
                    columns[name] = [
                        v for v, keep in zip(buf, mask) if keep
                    ]
            return ColumnarPartition(
                columns, length=int(mask.sum()), names=self.names,
                version=self.version,
            )
        keep = [i for i, flag in enumerate(mask) if flag]
        return self.take(keep)

    # ------------------------------------------------------------------
    # Row adapters (boxing happens here, lazily, and nowhere else)
    # ------------------------------------------------------------------

    def iter_rows(self) -> Iterator[Row]:
        """Yield dict rows; the adapter row-oriented operators consume."""
        names = self.names
        columns = [self._columns[n] for n in names]
        for values in zip(*columns):
            yield dict(zip(names, (_unbox(v) for v in values)))
        if not names:  # zero columns still yields len() empty rows
            for _ in range(self._length):
                yield {}

    def rows(self) -> List[Row]:
        return list(self.iter_rows())

    def row(self, index: int) -> Row:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return {
            name: _unbox(self._columns[name][index]) for name in self.names
        }

    # ------------------------------------------------------------------
    # Sequence protocol — quacks like Sequence[Row]
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Row]:
        return self.iter_rows()

    def __getitem__(self, item):
        if isinstance(item, slice):
            if item.step not in (None, 1):
                indices = range(*item.indices(self._length))
                return self.take(list(indices))
            start, stop, _ = item.indices(self._length)
            return self.slice(start, stop)
        return self.row(int(item))

    # ------------------------------------------------------------------
    # Pickling (column buffers cross the process boundary whole)
    # ------------------------------------------------------------------

    def __reduce__(self):
        # numpy views pickle their base array unless materialized; keep
        # the payload tight by letting numpy contiguous-copy on demand.
        columns = {}
        for name, buf in self._columns.items():
            if _np is not None and isinstance(buf, _np.ndarray) \
                    and buf.base is not None:
                buf = buf.copy()
            columns[name] = buf
        return (_rebuild_partition,
                (columns, self._length, self.names, self.version))

    def __repr__(self) -> str:
        return (
            f"<ColumnarPartition rows={self._length} "
            f"columns={list(self.names)!r}>"
        )


def _unbox(value: Any) -> Any:
    """Convert numpy scalars back to Python numbers when boxing rows."""
    if _np is not None and isinstance(value, _np.generic):
        return value.item()
    return value


def _rebuild_partition(columns, length, names, version=0):
    return ColumnarPartition(columns, length=length, names=names,
                             version=version)


def as_rows(records: Any) -> Sequence[Row]:
    """Normalize a row sequence or ColumnarPartition to dict rows."""
    if isinstance(records, ColumnarPartition):
        return records.rows()
    return records
