"""Process-pool worker protocol for the ``processes`` executor backend.

A process worker cannot share the driver's object graph, so a task must
be *self-contained*: everything it needs crosses the boundary as one
pickle.  The unit shipped is a :class:`ProcessTask` —

* ``base``: the partition's source records (a list slice from a
  ``ParallelCollectionRDD``, a cached block, or a
  :class:`~repro.engine.columnar.ColumnarPartition`, which pickles by
  column buffer rather than row-by-row);
* ``ops``: the narrow operator chain above the source, as
  ``(split, f)`` pairs in application order — the same
  ``f(split, iterator)`` callables ``MapPartitionsRDD`` holds;
* ``func``: the job function the scheduler would apply to the final
  partition iterator.

``RDD._process_plan`` extracts ``(base, ops)`` from a lineage.  Plans
exist only for narrow lineages over in-memory data; shuffles, cache
misses on persisted RDDs, and coalesced partitions raise
:class:`ProcessUnsupported`, and the scheduler transparently falls back
to the thread/inline path (counted by the ``process_fallbacks``
metric).  Unpicklable closures are caught the same way: the driver
pickles the task itself before submitting, so a ``pickle`` failure is a
fallback, never a job error.

Workers are marked via a pool initializer (:func:`worker_initializer`):
any :class:`~repro.engine.context.EngineContext` *created inside a
worker* detects :func:`in_worker` and runs its jobs inline — the
process-backend restatement of the "nested jobs run inline" rule that
keeps a worker from trying to fan out into a pool it is itself part of.
The initializer also replays the driver's ``sys.path`` so ``spawn``
workers (which do not inherit the parent's interpreter state) can
import the repro package exactly as the driver does.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


class ProcessUnsupported(Exception):
    """This lineage/job cannot be shipped to a process worker."""


#: True in a pool worker process (set by :func:`worker_initializer`);
#: always False on the driver.
_IN_WORKER = False


def in_worker() -> bool:
    """Is the current process a pool worker?"""
    return _IN_WORKER


def worker_initializer(sys_path: Sequence[str]) -> None:
    """Pool initializer: mark the worker and replay the driver's path."""
    global _IN_WORKER
    _IN_WORKER = True
    import sys

    for entry in sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


@dataclass
class ProcessTask:
    """One partition's work, self-contained and picklable."""

    stage_id: int
    split: int
    base: Any  # Sequence of records (list or ColumnarPartition)
    ops: Tuple[Tuple[int, Callable[[int, Iterator], Any]], ...]
    func: Callable[[Iterator], Any]
    #: span parentage + profiler rate when the driver is traced (see
    #: :mod:`repro.obs.crossproc`); None keeps the untraced fast path.
    span_context: Optional[Any] = None

    def run(self) -> Any:
        """Replay the operator chain over the base records, apply func."""
        it: Iterator = iter(self.base)
        for split, f in self.ops:
            it = iter(f(split, it))
        return self.func(it)


def build_process_task(rdd, func: Callable[[Iterator], Any],
                       stage_id: int, split: int,
                       span_context: Optional[Any] = None) -> ProcessTask:
    """Extract a self-contained task for one partition of ``rdd``.

    Raises:
        ProcessUnsupported: when the lineage has no process plan
            (shuffle input, uncached persisted parent, coalesce, ...).
    """
    base, ops = rdd._process_plan(split)
    return ProcessTask(stage_id, split, base, tuple(ops), func, span_context)


def dumps_task(task: ProcessTask) -> bytes:
    """Pickle a task, translating pickle failures to fallbacks.

    Pickling on the driver (rather than letting the executor's feeder
    thread do it) turns "this closure can't cross a process boundary"
    into a synchronous :class:`ProcessUnsupported` the scheduler can
    catch and fall back on, instead of an asynchronous future error.
    """
    try:
        return pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ProcessUnsupported(f"task does not pickle: {exc!r}") from exc


def run_payload(payload: bytes) -> Tuple[float, Any, Optional[Any]]:
    """Worker entry point: unpickle, run, return
    ``(elapsed_seconds, result, telemetry)``.

    The elapsed time is measured *inside* the worker so the driver's
    ``task_seconds`` histogram reflects compute, not queueing or IPC.
    The third element is the piggybacked
    :class:`~repro.obs.crossproc.WorkerTelemetry` delta when the task
    ships a live :class:`~repro.obs.crossproc.SpanContext`, else None —
    the untraced path touches no telemetry machinery at all.
    """
    task: ProcessTask = pickle.loads(payload)
    ctx = task.span_context
    if ctx is None or not ctx.enabled:
        started = time.perf_counter()
        result = task.run()
        return (time.perf_counter() - started, result, None)
    from repro.obs.crossproc import run_traced_task

    return run_traced_task(task)
