"""Engine metrics: counters, histograms and gauges for the engine.

The reproduction uses metrics in three ways:

* tests assert structural facts (e.g. "UPA's joinDP triggers exactly two
  shuffles where vanilla join triggers one", paper section V-C);
* benchmarks report a deterministic cost model (records shuffled times a
  per-record cost) alongside wall-clock time, because wall-clock on a
  laptop does not reflect a 40 Gbps cluster but the *structure* does;
* the observability layer (:mod:`repro.obs`) summarizes distributions —
  task durations, neighbour batch sizes, shuffle record counts — as
  percentile summaries in the per-run report.

Counters accumulate, histograms record individual observations (so
snapshots can diff them), gauges hold the latest value.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method but works on plain
    sequences without an array round-trip.  A single sample is every
    percentile of itself; tied values interpolate to the tie.

    Raises:
        ValueError: on an empty sequence or ``q`` outside [0, 100].
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot take a percentile of zero samples")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return data[low] + (data[high] - data[low]) * fraction


@dataclass(frozen=True)
class HistogramSummary:
    """Percentile summary of one histogram's observations.

    An empty histogram summarizes to all-zero statistics with
    ``count == 0`` (reports render it as "no samples" instead of
    crashing mid-run).
    """

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p90: float
    p99: float
    #: p95 and the population standard deviation feed the Prometheus
    #: exporter's quantile gauges; they default so older positional
    #: constructions (and pickles) keep working.
    p95: float = 0.0
    stddev: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "HistogramSummary":
        data = [float(v) for v in values]
        if not data:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mean = sum(data) / len(data)
        variance = sum((v - mean) ** 2 for v in data) / len(data)
        return cls(
            count=len(data),
            minimum=min(data),
            maximum=max(data),
            mean=mean,
            p50=percentile(data, 50.0),
            p90=percentile(data, 90.0),
            p99=percentile(data, 99.0),
            p95=percentile(data, 95.0),
            stddev=math.sqrt(variance),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "stddev": self.stddev,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable snapshot of all metrics at a point in time."""

    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def get_gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def histogram(self, name: str) -> Tuple[float, ...]:
        return self.histograms.get(name, ())

    def summary(self, name: str) -> HistogramSummary:
        return HistogramSummary.from_values(self.histogram(name))

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Metrics accumulated since ``earlier``.

        Counters subtract; histograms keep the observations appended
        since ``earlier`` (histograms are append-only, so the earlier
        snapshot's length is a prefix marker); gauges keep the current
        value (a "latest value" has no meaningful delta).  A gauge that
        exists only in ``earlier`` was deleted in between
        (``MetricsRegistry.delete_gauge``) and must not linger in the
        diff with its stale value — only gauges still present in *this*
        snapshot survive.
        """
        keys = set(self.counters) | set(earlier.counters)
        counters = {
            k: self.counters.get(k, 0.0) - earlier.counters.get(k, 0.0)
            for k in keys
        }
        histograms = {
            name: values[len(earlier.histograms.get(name, ())):]
            for name, values in self.histograms.items()
        }
        gauges = {name: value for name, value in self.gauges.items()}
        return MetricsSnapshot(counters, histograms, gauges)

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: HistogramSummary.from_values(values).to_dict()
                for name, values in self.histograms.items()
            },
            "gauges": dict(self.gauges),
        }


class MetricsRegistry:
    """Thread-safe metrics registry attached to an :class:`EngineContext`."""

    #: Counter names used by the engine itself.
    JOBS = "jobs_run"
    TASKS = "tasks_run"
    TASK_RETRIES = "task_retries"
    SHUFFLES = "shuffles"
    RECORDS_SHUFFLED = "records_shuffled"
    RECORDS_READ = "records_read"
    CACHE_HITS = "cache_hits"
    CACHE_MISSES = "cache_misses"
    CACHE_EVICTIONS = "cache_evictions"
    BROADCASTS = "broadcasts"
    BROADCAST_RECORDS = "broadcast_records"
    NETWORK_COST = "simulated_network_cost"
    #: process-backend jobs that fell back to the thread/inline path
    #: (unpicklable closure, shuffle lineage, uncached persisted parent).
    PROCESS_FALLBACKS = "process_fallbacks"
    #: process pools respawned after a worker died (BrokenProcessPool).
    WORKER_RESPAWNS = "worker_respawns"

    #: Counter names used by the SQL layer (plan cache + join planning).
    SQL_PLAN_CACHE_HITS = "sql.plan_cache.hits"
    SQL_PLAN_CACHE_MISSES = "sql.plan_cache.misses"
    #: entries pushed out of the bounded plan/bridge caches by the LRU
    #: cap (lifecycle clears are not evictions, same convention as
    #: CACHE_EVICTIONS).
    SQL_PLAN_CACHE_EVICTIONS = "sql.plan_cache.evictions"
    SQL_JOIN_BROADCAST = "sql.join.broadcast"
    SQL_JOIN_SHUFFLE = "sql.join.shuffle"
    #: rows entering a columnar fused stage vs rows actually boxed into
    #: dicts at its row-oriented boundary — their ratio is the per-row
    #: boxing reduction the vectorized filters bought.
    SQL_COLUMNAR_ROWS_SCANNED = "sql.columnar.rows_scanned"
    SQL_COLUMNAR_ROWS_BOXED = "sql.columnar.rows_boxed"

    #: Counter names used by the incremental session path
    #: (UPASession.append / retire — see docs/performance.md).
    INCR_APPENDS = "incremental.appends"
    INCR_RETIRES = "incremental.retires"
    #: element blocks served from / recomputed into the block store.
    INCR_BLOCK_HITS = "incremental.block_hits"
    INCR_BLOCK_MISSES = "incremental.block_misses"
    #: records whose mapped element was reused vs freshly mapped.
    INCR_RECORDS_REUSED = "incremental.records_reused"
    INCR_RECORDS_MAPPED = "incremental.records_mapped"
    #: whole-cache invalidations (engine epoch change, external table
    #: mutation, query switch).
    INCR_INVALIDATIONS = "incremental.invalidations"
    #: gauge: freshly mapped records / total records of the last
    #: incremental release (1.0 = effectively a cold run).
    INCR_DELTA_FRACTION = "incremental.delta_fraction"

    #: Counter/gauge names recorded per DP release by UPASession so the
    #: time-series store (repro.obs.timeseries) can derive rates and the
    #: windowed alert rules can forecast budget exhaustion.  The epsilon
    #: counter accumulates *charged* epsilon (cache hits add zero), the
    #: budget gauges mirror the accountant, and the sensitivity gauge is
    #: the last release's exact local sensitivity.
    RELEASES = "release.count"
    RELEASE_CLAMPS = "release.clamps"
    RELEASE_RECORDS_REMOVED = "release.records_removed"
    RELEASE_EPSILON = "release.epsilon_charged"
    RELEASE_SENSITIVITY = "release.local_sensitivity"
    # "session." prefix keeps the sanitized Prometheus families clear
    # of the accountant-labelled upa_budget_* gauges the server emits.
    BUDGET_REMAINING = "session.budget_remaining_epsilon"
    BUDGET_SPENT = "session.budget_spent_epsilon"

    #: Histogram names used by the engine and the UPA pipeline.
    TASK_SECONDS = "task_seconds"
    JOB_SECONDS = "job_seconds"
    SHUFFLE_RECORDS = "shuffle_records"
    NEIGHBOUR_BATCH = "neighbour_batch_size"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, list] = {}
        self._gauges: Dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            bucket = self._histograms.get(name)
            if bucket is None:
                bucket = self._histograms[name] = []
            bucket.append(float(value))

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def delete_gauge(self, name: str) -> None:
        """Drop gauge ``name`` (no-op if absent).

        A gauge is a "latest value", and some latest values stop being
        meaningful — a per-run gauge after the run, a per-session gauge
        after the session.  Deleting it keeps it out of later snapshots
        and out of every ``/metrics`` scrape, instead of exporting a
        stale reading forever.
        """
        with self._lock:
            self._gauges.pop(name, None)

    def get(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def get_gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def histogram_summary(self, name: str) -> HistogramSummary:
        with self._lock:
            values = list(self._histograms.get(name, ()))
        return HistogramSummary.from_values(values)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                dict(self._counters),
                {k: tuple(v) for k, v in self._histograms.items()},
                dict(self._gauges),
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()

    def cache_hit_rate(self) -> float:
        """Fraction of block lookups served from cache (0.0 if none)."""
        with self._lock:
            hits = self._counters.get(self.CACHE_HITS, 0.0)
            misses = self._counters.get(self.CACHE_MISSES, 0.0)
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total


#: sink for recordings made when no ambient registry is installed — a
#: process worker running an *untraced* task keeps working, its counts
#: simply are not shipped anywhere.
_DISCARD = MetricsRegistry()
_ambient_metrics: Optional[MetricsRegistry] = None


def ambient_metrics() -> MetricsRegistry:
    """The ambient registry of the current process.

    On the driver this is normally unset (engine components hold their
    registry directly).  Inside a process worker running a traced task,
    :mod:`repro.obs.crossproc` installs the worker-local registry here
    so instrumented code that crossed the pickle boundary *without* its
    registry (e.g. columnar scan counters) can rebind and keep
    counting; the per-task delta is then shipped back to the driver.
    """
    return _ambient_metrics if _ambient_metrics is not None else _DISCARD


def set_ambient_metrics(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install the ambient registry; returns the previous one."""
    global _ambient_metrics
    previous = _ambient_metrics
    _ambient_metrics = registry
    return previous
