"""Engine metrics: counters for tasks, shuffles, cache and simulated cost.

The reproduction uses metrics in two ways:

* tests assert structural facts (e.g. "UPA's joinDP triggers exactly two
  shuffles where vanilla join triggers one", paper section V-C);
* benchmarks report a deterministic cost model (records shuffled times a
  per-record cost) alongside wall-clock time, because wall-clock on a
  laptop does not reflect a 40 Gbps cluster but the *structure* does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable snapshot of all counters at a point in time."""

    counters: Dict[str, float] = field(default_factory=dict)

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters accumulated since ``earlier``."""
        keys = set(self.counters) | set(earlier.counters)
        return MetricsSnapshot(
            {k: self.counters.get(k, 0.0) - earlier.counters.get(k, 0.0) for k in keys}
        )


class MetricsRegistry:
    """Thread-safe counter registry attached to an :class:`EngineContext`."""

    #: Counter names used by the engine itself.
    JOBS = "jobs_run"
    TASKS = "tasks_run"
    TASK_RETRIES = "task_retries"
    SHUFFLES = "shuffles"
    RECORDS_SHUFFLED = "records_shuffled"
    RECORDS_READ = "records_read"
    CACHE_HITS = "cache_hits"
    CACHE_MISSES = "cache_misses"
    CACHE_EVICTIONS = "cache_evictions"
    BROADCASTS = "broadcasts"
    BROADCAST_RECORDS = "broadcast_records"
    NETWORK_COST = "simulated_network_cost"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(dict(self._counters))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()

    def cache_hit_rate(self) -> float:
        """Fraction of block lookups served from cache (0.0 if none)."""
        with self._lock:
            hits = self._counters.get(self.CACHE_HITS, 0.0)
            misses = self._counters.get(self.CACHE_MISSES, 0.0)
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total
