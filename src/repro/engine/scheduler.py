"""Task scheduler: runs per-partition tasks with retries from lineage.

The scheduler is intentionally simple — a job is a function applied to
each partition's iterator — but it implements the two behaviours the
reproduction depends on:

* **retry from lineage**: a failed attempt (real exception from the
  fault injector) is retried by recomputing the partition from scratch,
  which is only correct because RDD computation is deterministic and
  side-effect free;
* **optional thread pool** so concurrency bugs (ordering assumptions,
  shared state) surface in tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.common.errors import TaskFailedError
from repro.common.timing import Timer
from repro.engine.events import JobEvent, JobListener
from repro.engine.fault import FaultInjector, InjectedFault
from repro.engine.metrics import MetricsRegistry

T = TypeVar("T")
U = TypeVar("U")


class TaskScheduler:
    """Executes jobs over the partitions of an RDD."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        max_task_retries: int,
        use_threads: bool = False,
        max_workers: int = 4,
    ):
        self._metrics = metrics
        self._max_retries = max_task_retries
        self._use_threads = use_threads
        self._max_workers = max_workers
        self.fault_injector: Optional[FaultInjector] = None
        self.job_listener: Optional[JobListener] = None
        self._stage_ids = iter(range(1, 1 << 62))

    def run_job(
        self,
        rdd,
        func: Callable[[Iterator[T]], U],
        partitions: Optional[Sequence[int]] = None,
    ) -> List[U]:
        """Apply ``func`` to each partition iterator of ``rdd``.

        Returns one result per partition, in partition order.
        """
        if partitions is None:
            partitions = range(rdd.num_partitions)
        stage_id = next(self._stage_ids)
        self._metrics.incr(MetricsRegistry.JOBS)
        attempts_before = self._metrics.get(MetricsRegistry.TASKS) + \
            self._metrics.get(MetricsRegistry.TASK_RETRIES)

        def run_one(split: int) -> U:
            return self._run_task(rdd, func, stage_id, split)

        with Timer() as timer:
            if self._use_threads and len(partitions) > 1:
                with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                    results = list(pool.map(run_one, partitions))
            else:
                results = [run_one(split) for split in partitions]
        if self.job_listener is not None:
            attempts_after = self._metrics.get(MetricsRegistry.TASKS) + \
                self._metrics.get(MetricsRegistry.TASK_RETRIES)
            self.job_listener.record(
                JobEvent(
                    stage_id=stage_id,
                    rdd_id=rdd.rdd_id,
                    rdd_type=type(rdd).__name__,
                    num_partitions=len(partitions),
                    duration_seconds=timer.elapsed,
                    task_attempts=int(attempts_after - attempts_before),
                )
            )
        return results

    def _run_task(
        self, rdd, func: Callable[[Iterator[T]], U], stage_id: int, split: int
    ) -> U:
        attempts = 0
        while True:
            attempts += 1
            try:
                if self.fault_injector is not None:
                    self.fault_injector.maybe_fail(stage_id, split, attempts)
                result = func(rdd.iterator(split))
                self._metrics.incr(MetricsRegistry.TASKS)
                return result
            except InjectedFault as fault:
                self._metrics.incr(MetricsRegistry.TASK_RETRIES)
                if attempts > self._max_retries:
                    raise TaskFailedError(stage_id, split, attempts, fault) from fault
