"""Task scheduler: runs per-partition tasks with retries from lineage.

The scheduler is intentionally simple — a job is a function applied to
each partition's iterator — but it implements the behaviours the
reproduction depends on:

* **retry from lineage**: a failed attempt (injected fault, or a worker
  process dying mid-task) is retried by recomputing the partition from
  scratch, which is only correct because RDD computation is
  deterministic and side-effect free;
* **pluggable executor backends** (``EngineConfig.backend``):

  - ``inline`` — tasks run sequentially on the calling thread;
  - ``threads`` — a persistent thread pool, so concurrency bugs
    (ordering assumptions, shared state) surface in tests;
  - ``processes`` — a persistent ``ProcessPoolExecutor``.  Each task
    ships as a self-contained pickle (see
    :mod:`repro.engine.procpool`): the partition's base records plus
    its narrow operator chain.  Jobs whose lineage or functions cannot
    cross a process boundary **fall back transparently** to the
    thread/inline path, counted by the ``process_fallbacks`` metric.
    A dead worker breaks the whole pool (CPython's
    ``BrokenProcessPool``); the scheduler respawns the pool, counts a
    ``worker_respawns``, and re-runs every unfinished partition from
    lineage — the process-backend expression of retry-from-lineage.

Both pools are **persistent**: created lazily on first use and reused
for every job after, because spawning a pool per job costs
thread/process creation on every engine round-trip — measurable when a
session issues thousands of small jobs, ruinous for processes.
``EngineContext.stop()`` shuts them down; a later job transparently
recreates them.

Nested jobs always run inline, whatever the backend: on the driver a
task-thread running a job (``self._local.in_task``) must not re-enter
the shared pool (deadlock once outer tasks occupy every worker), and in
a process worker (:func:`repro.engine.procpool.in_worker`) any engine
created inside the worker must not fan out into pools of its own.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional, Sequence, TypeVar

from repro.common.errors import TaskFailedError
from repro.common.timing import Timer
from repro.engine.events import JobEvent, JobListener
from repro.engine.fault import FaultInjector, InjectedFault
from repro.engine.metrics import MetricsRegistry
from repro.engine.procpool import (
    ProcessUnsupported,
    build_process_task,
    dumps_task,
    in_worker,
    run_payload,
    worker_initializer,
)
from repro.obs.crossproc import SpanContext, merge_telemetry
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Tracer, task_contexts

T = TypeVar("T")
U = TypeVar("U")


class TaskScheduler:
    """Executes jobs over the partitions of an RDD."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        max_task_retries: int,
        backend: str = "inline",
        max_workers: int = 4,
        process_start_method: Optional[str] = None,
        use_threads: bool = False,
    ):
        self._metrics = metrics
        self._max_retries = max_task_retries
        if backend == "inline" and use_threads:
            backend = "threads"  # legacy spelling
        self._backend = backend
        self._max_workers = max_workers
        self._start_method = process_start_method
        self.fault_injector: Optional[FaultInjector] = None
        self.job_listener: Optional[JobListener] = None
        #: span tracer (NULL_TRACER = disabled, the zero-cost default);
        #: installed via EngineContext.install_tracer.
        self.tracer: Tracer = NULL_TRACER
        #: driver-side sampling profiler, installed via
        #: EngineContext.install_profiler; when live, process workers
        #: mirror its rate and ship their stacks back for merging.
        self.profiler = None
        # Pre-seed the process-health counters so a processes-backend
        # session exports them (with _total suffixes) from the first
        # scrape, even before any job falls back or any worker dies.
        if self._backend == "processes":
            self._metrics.incr(MetricsRegistry.PROCESS_FALLBACKS, 0.0)
            self._metrics.incr(MetricsRegistry.WORKER_RESPAWNS, 0.0)
        self._stage_ids = iter(range(1, 1 << 62))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._proc_pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # True while the current thread is executing a task.  Nested
        # jobs (e.g. a shuffle materializing its parent from inside a
        # ShuffledRDD task) must run inline: handing them to the shared
        # pool could deadlock once outer tasks occupy every worker.
        self._local = threading.local()

    @property
    def backend(self) -> str:
        """The configured executor backend (after legacy resolution)."""
        return self._backend

    def _executor(self) -> ThreadPoolExecutor:
        """The persistent thread pool, created lazily on first use."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-task",
                )
            return self._pool

    def _process_executor(self) -> ProcessPoolExecutor:
        """The persistent process pool, created lazily on first use."""
        with self._pool_lock:
            if self._proc_pool is None:
                mp_context = multiprocessing.get_context(self._start_method)
                self._proc_pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=mp_context,
                    # mark workers (nested engines run inline there) and
                    # replay sys.path so spawn workers can import repro.
                    initializer=worker_initializer,
                    initargs=(list(sys.path),),
                )
            return self._proc_pool

    def _respawn_process_pool(self) -> None:
        """Discard a (typically broken) process pool; next use respawns."""
        with self._pool_lock:
            pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def shutdown(self) -> None:
        """Shut the persistent pools down (idempotent).

        Jobs submitted afterwards lazily recreate them, so a stopped
        scheduler degrades gracefully instead of erroring.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            proc_pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if proc_pool is not None:
            proc_pool.shutdown(wait=True)

    def run_job(
        self,
        rdd,
        func: Callable[[Iterator[T]], U],
        partitions: Optional[Sequence[int]] = None,
    ) -> List[U]:
        """Apply ``func`` to each partition iterator of ``rdd``.

        Returns one result per partition, in partition order.
        """
        if partitions is None:
            partitions = range(rdd.num_partitions)
        # Normalize once: callers may pass any iterable (including a
        # generator), and we iterate it twice (len + map) below.
        partitions = tuple(partitions)
        stage_id = next(self._stage_ids)
        self._metrics.incr(MetricsRegistry.JOBS)
        attempts_before = self._metrics.get(MetricsRegistry.TASKS) + \
            self._metrics.get(MetricsRegistry.TASK_RETRIES)

        in_task = getattr(self._local, "in_task", False)
        # The job span is created (id allocated) before task payloads
        # pickle, because process tasks carry its id in their
        # SpanContext so worker-side engine.task spans parent under it.
        # The `backend` attribute is attached only after the execution
        # mode is resolved, so it reflects what actually ran (a process
        # job that falls back to threads is labelled threads).
        tracer = self.tracer
        job_span = (
            tracer.span(
                "engine.job",
                stage_id=stage_id,
                rdd_id=rdd.rdd_id,
                rdd_type=type(rdd).__name__,
                partitions=len(partitions),
            )
            if tracer.enabled
            else NULL_SPAN
        )
        mode = self._backend
        if in_task or in_worker() or len(partitions) <= 1:
            mode = "inline"
        payloads: Optional[Dict[int, bytes]] = None
        if mode == "processes":
            span_context = None
            if tracer.enabled:
                profiler = self.profiler
                span_context = SpanContext(
                    parent_span_id=job_span.span_id,
                    profile_hz=(
                        profiler.hz
                        if profiler is not None and profiler.running
                        else 0.0
                    ),
                )
            try:
                payloads = {
                    split: dumps_task(
                        build_process_task(
                            rdd, func, stage_id, split, span_context
                        )
                    )
                    for split in partitions
                }
            except ProcessUnsupported:
                # Lineage or closure can't cross the process boundary;
                # run the job on the thread path instead.
                self._metrics.incr(MetricsRegistry.PROCESS_FALLBACKS)
                mode = "threads" if self._max_workers > 1 else "inline"
        job_span.set_attribute("backend", mode)

        def run_one(split: int) -> U:
            return self._run_task(rdd, func, stage_id, split)

        with job_span, Timer() as timer:
            if mode == "processes":
                assert payloads is not None
                by_split = self._run_process_job(stage_id, partitions, payloads)
                results = [by_split[split] for split in partitions]
            elif mode == "threads":
                if tracer.enabled:
                    # Pool threads do not inherit the submitter's
                    # contextvars; run each task in a copy of this
                    # context so spans created inside tasks (shuffles,
                    # nested jobs) parent under the job span.
                    contexts = task_contexts(len(partitions))
                    results = list(
                        self._executor().map(
                            lambda pair: pair[0].run(run_one, pair[1]),
                            zip(contexts, partitions),
                        )
                    )
                else:
                    results = list(self._executor().map(run_one, partitions))
            else:
                results = [run_one(split) for split in partitions]
        self._metrics.observe(MetricsRegistry.JOB_SECONDS, timer.elapsed)
        if self.job_listener is not None:
            attempts_after = self._metrics.get(MetricsRegistry.TASKS) + \
                self._metrics.get(MetricsRegistry.TASK_RETRIES)
            self.job_listener.record(
                JobEvent(
                    stage_id=stage_id,
                    rdd_id=rdd.rdd_id,
                    rdd_type=type(rdd).__name__,
                    num_partitions=len(partitions),
                    duration_seconds=timer.elapsed,
                    task_attempts=int(attempts_after - attempts_before),
                )
            )
        return results

    def _run_task(
        self, rdd, func: Callable[[Iterator[T]], U], stage_id: int, split: int
    ) -> U:
        previously_in_task = getattr(self._local, "in_task", False)
        self._local.in_task = True
        try:
            attempts = 0
            while True:
                attempts += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.maybe_fail(stage_id, split, attempts)
                    started = time.perf_counter()
                    result = func(rdd.iterator(split))
                    self._metrics.incr(MetricsRegistry.TASKS)
                    self._metrics.observe(
                        MetricsRegistry.TASK_SECONDS,
                        time.perf_counter() - started,
                    )
                    return result
                except InjectedFault as fault:
                    self._metrics.incr(MetricsRegistry.TASK_RETRIES)
                    if attempts > self._max_retries:
                        raise TaskFailedError(
                            stage_id, split, attempts, fault
                        ) from fault
        finally:
            self._local.in_task = previously_in_task

    def _run_process_job(
        self,
        stage_id: int,
        partitions: Sequence[int],
        payloads: Dict[int, bytes],
    ) -> Dict[int, U]:
        """Run pre-pickled tasks on the process pool, surviving worker death.

        Fault injection stays on the driver (the injector holds locks
        and counters that must not be duplicated per process): each
        attempt consults it *before* submission, so injected faults
        retry with the same accounting as the inline path.  A worker
        dying breaks the whole pool — every in-flight future fails with
        ``BrokenProcessPool`` — so the pool is respawned and every
        unfinished partition re-submitted from its (deterministic)
        lineage.  The partition whose future surfaced the break is the
        one charged a retry; the rest are innocent bystanders and keep
        their attempt budget.
        """
        results: Dict[int, U] = {}
        attempts = {split: 0 for split in partitions}
        pending = list(partitions)
        while pending:
            submitted: List[int] = []
            for split in pending:
                # Driver-side fault injection, mirroring _run_task.
                while True:
                    attempts[split] += 1
                    try:
                        if self.fault_injector is not None:
                            self.fault_injector.maybe_fail(
                                stage_id, split, attempts[split]
                            )
                        break
                    except InjectedFault as fault:
                        self._metrics.incr(MetricsRegistry.TASK_RETRIES)
                        if attempts[split] > self._max_retries:
                            raise TaskFailedError(
                                stage_id, split, attempts[split], fault
                            ) from fault
                submitted.append(split)
            pool = self._process_executor()
            try:
                futures = {
                    split: pool.submit(run_payload, payloads[split])
                    for split in submitted
                }
            except BrokenProcessPool:
                # The pool broke between jobs (submit fails fast); no
                # task ran, so nobody is charged a retry — respawn and
                # refund this round's attempts.
                self._metrics.incr(MetricsRegistry.WORKER_RESPAWNS)
                self._respawn_process_pool()
                for split in submitted:
                    attempts[split] -= 1
                continue
            broken: Optional[BaseException] = None
            blamed: Optional[int] = None
            for split in submitted:
                try:
                    elapsed, result, telemetry = futures[split].result()
                except BrokenProcessPool as exc:
                    broken, blamed = exc, split
                    break
                results[split] = result
                self._metrics.incr(MetricsRegistry.TASKS)
                self._metrics.observe(MetricsRegistry.TASK_SECONDS, elapsed)
                # Merge the piggybacked worker delta exactly once per
                # *recorded* result: an attempt lost to a dying worker
                # never returns, so respawned retries cannot
                # double-count its spans or histogram observations.
                merge_telemetry(
                    telemetry,
                    tracer=self.tracer,
                    metrics=self._metrics,
                    profiler=self.profiler,
                )
            pending = [s for s in partitions if s not in results]
            if broken is None:
                continue
            self._metrics.incr(MetricsRegistry.WORKER_RESPAWNS)
            self._metrics.incr(MetricsRegistry.TASK_RETRIES)
            self._respawn_process_pool()
            assert blamed is not None
            if attempts[blamed] > self._max_retries:
                raise TaskFailedError(
                    stage_id, blamed, attempts[blamed], broken
                ) from broken
            # Unfinished bystanders were submitted but not at fault:
            # refund the attempt so repeated worker deaths on one
            # partition cannot exhaust another partition's retries.
            for split in pending:
                if split != blamed and attempts[split] > 0:
                    attempts[split] -= 1
        return results
