"""Task scheduler: runs per-partition tasks with retries from lineage.

The scheduler is intentionally simple — a job is a function applied to
each partition's iterator — but it implements the two behaviours the
reproduction depends on:

* **retry from lineage**: a failed attempt (real exception from the
  fault injector) is retried by recomputing the partition from scratch,
  which is only correct because RDD computation is deterministic and
  side-effect free;
* **optional thread pool** so concurrency bugs (ordering assumptions,
  shared state) surface in tests.

The thread pool is **persistent**: one executor per scheduler, created
lazily on the first threaded job and reused for every job after it.
Spawning a pool per job costs thread creation/teardown on every engine
round-trip — measurable when a session issues thousands of small jobs.
``EngineContext.stop()`` shuts the pool down; a later job transparently
recreates it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.common.errors import TaskFailedError
from repro.common.timing import Timer
from repro.engine.events import JobEvent, JobListener
from repro.engine.fault import FaultInjector, InjectedFault
from repro.engine.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Tracer, task_contexts

T = TypeVar("T")
U = TypeVar("U")


class TaskScheduler:
    """Executes jobs over the partitions of an RDD."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        max_task_retries: int,
        use_threads: bool = False,
        max_workers: int = 4,
    ):
        self._metrics = metrics
        self._max_retries = max_task_retries
        self._use_threads = use_threads
        self._max_workers = max_workers
        self.fault_injector: Optional[FaultInjector] = None
        self.job_listener: Optional[JobListener] = None
        #: span tracer (NULL_TRACER = disabled, the zero-cost default);
        #: installed via EngineContext.install_tracer.
        self.tracer: Tracer = NULL_TRACER
        self._stage_ids = iter(range(1, 1 << 62))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # True while the current thread is executing a task.  Nested
        # jobs (e.g. a shuffle materializing its parent from inside a
        # ShuffledRDD task) must run inline: handing them to the shared
        # pool could deadlock once outer tasks occupy every worker.
        self._local = threading.local()

    def _executor(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily on first threaded job."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-task",
                )
            return self._pool

    def shutdown(self) -> None:
        """Shut the persistent pool down (idempotent).

        Jobs submitted afterwards lazily recreate the pool, so a
        stopped scheduler degrades gracefully instead of erroring.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def run_job(
        self,
        rdd,
        func: Callable[[Iterator[T]], U],
        partitions: Optional[Sequence[int]] = None,
    ) -> List[U]:
        """Apply ``func`` to each partition iterator of ``rdd``.

        Returns one result per partition, in partition order.
        """
        if partitions is None:
            partitions = range(rdd.num_partitions)
        # Normalize once: callers may pass any iterable (including a
        # generator), and we iterate it twice (len + map) below.
        partitions = tuple(partitions)
        stage_id = next(self._stage_ids)
        self._metrics.incr(MetricsRegistry.JOBS)
        attempts_before = self._metrics.get(MetricsRegistry.TASKS) + \
            self._metrics.get(MetricsRegistry.TASK_RETRIES)

        def run_one(split: int) -> U:
            return self._run_task(rdd, func, stage_id, split)

        in_task = getattr(self._local, "in_task", False)
        tracer = self.tracer
        job_span = (
            tracer.span(
                "engine.job",
                stage_id=stage_id,
                rdd_id=rdd.rdd_id,
                rdd_type=type(rdd).__name__,
                partitions=len(partitions),
            )
            if tracer.enabled
            else NULL_SPAN
        )
        with job_span, Timer() as timer:
            if self._use_threads and len(partitions) > 1 and not in_task:
                if tracer.enabled:
                    # Pool threads do not inherit the submitter's
                    # contextvars; run each task in a copy of this
                    # context so spans created inside tasks (shuffles,
                    # nested jobs) parent under the job span.
                    contexts = task_contexts(len(partitions))
                    results = list(
                        self._executor().map(
                            lambda pair: pair[0].run(run_one, pair[1]),
                            zip(contexts, partitions),
                        )
                    )
                else:
                    results = list(self._executor().map(run_one, partitions))
            else:
                results = [run_one(split) for split in partitions]
        self._metrics.observe(MetricsRegistry.JOB_SECONDS, timer.elapsed)
        if self.job_listener is not None:
            attempts_after = self._metrics.get(MetricsRegistry.TASKS) + \
                self._metrics.get(MetricsRegistry.TASK_RETRIES)
            self.job_listener.record(
                JobEvent(
                    stage_id=stage_id,
                    rdd_id=rdd.rdd_id,
                    rdd_type=type(rdd).__name__,
                    num_partitions=len(partitions),
                    duration_seconds=timer.elapsed,
                    task_attempts=int(attempts_after - attempts_before),
                )
            )
        return results

    def _run_task(
        self, rdd, func: Callable[[Iterator[T]], U], stage_id: int, split: int
    ) -> U:
        previously_in_task = getattr(self._local, "in_task", False)
        self._local.in_task = True
        try:
            attempts = 0
            while True:
                attempts += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.maybe_fail(stage_id, split, attempts)
                    started = time.perf_counter()
                    result = func(rdd.iterator(split))
                    self._metrics.incr(MetricsRegistry.TASKS)
                    self._metrics.observe(
                        MetricsRegistry.TASK_SECONDS,
                        time.perf_counter() - started,
                    )
                    return result
                except InjectedFault as fault:
                    self._metrics.incr(MetricsRegistry.TASK_RETRIES)
                    if attempts > self._max_retries:
                        raise TaskFailedError(
                            stage_id, split, attempts, fault
                        ) from fault
        finally:
            self._local.in_task = previously_in_task
