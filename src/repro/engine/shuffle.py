"""Shuffle machinery: wide dependencies between stages.

A shuffle runs a map-side job that buckets every ``(key, value)`` pair
by the target partitioner (optionally pre-aggregating with map-side
combine, as Spark does for ``reduce_by_key``), records the exchanged
record count in the metrics registry, and stores the buckets so reduce
tasks can fetch them.  ``ShuffledRDD`` and ``CoGroupedRDD`` are the two
wide RDDs everything else (joins, aggregations, repartitioning) builds
on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.metrics import MetricsRegistry
from repro.engine.partitioner import Partitioner
from repro.engine.rdd import RDD

K = TypeVar("K")
V = TypeVar("V")
C = TypeVar("C")


@dataclass(frozen=True)
class Aggregator:
    """Map-side + reduce-side combining functions (Spark's Aggregator)."""

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]


class ShuffleManager:
    """Executes shuffles and stores their outputs per reduce partition.

    Outputs are kept until :meth:`clear`; a shuffle is executed at most
    once per ``shuffle_id`` (concurrent requests are serialized by a
    lock, since reduce tasks may run on threads).
    """

    def __init__(self, context):
        self._context = context
        self._lock = threading.Lock()
        # shuffle_id -> list (by reduce partition) of list[(key, combiner)]
        self._outputs: Dict[int, List[List[Tuple[Any, Any]]]] = {}
        self._next_id = 0

    def new_shuffle_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def clear(self) -> None:
        with self._lock:
            self._outputs.clear()

    def fetch(
        self,
        shuffle_id: int,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        reduce_split: int,
    ) -> List[Tuple[Any, Any]]:
        """Run the shuffle if needed, then return one reduce bucket."""
        self._ensure(shuffle_id, parent, partitioner, aggregator)
        return self._outputs[shuffle_id][reduce_split]

    def _ensure(
        self,
        shuffle_id: int,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
    ) -> None:
        with self._lock:
            if shuffle_id in self._outputs:
                return
        tracer = self._context.tracer
        span = (
            tracer.span("engine.shuffle", shuffle_id=shuffle_id,
                        partitions=partitioner.num_partitions,
                        combined=aggregator is not None)
            if tracer.enabled
            else None
        )
        # Map-side job outside the lock (it may trigger nested shuffles).
        if span is not None:
            with span:
                buckets = self._run_map_side(parent, partitioner, aggregator)
                span.set_attribute(
                    "records", sum(len(bucket) for bucket in buckets)
                )
        else:
            buckets = self._run_map_side(parent, partitioner, aggregator)
        with self._lock:
            if shuffle_id not in self._outputs:
                self._outputs[shuffle_id] = buckets
                metrics = self._context.metrics
                records = sum(len(bucket) for bucket in buckets)
                metrics.incr(MetricsRegistry.SHUFFLES)
                metrics.incr(MetricsRegistry.RECORDS_SHUFFLED, records)
                metrics.incr(
                    MetricsRegistry.NETWORK_COST,
                    records * self._context.config.shuffle_record_cost,
                )
                metrics.observe(MetricsRegistry.SHUFFLE_RECORDS, records)

    def _run_map_side(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
    ) -> List[List[Tuple[Any, Any]]]:
        num_out = partitioner.num_partitions
        map_task = _ShuffleMapTask(partitioner, aggregator, num_out)
        per_map = self._context.scheduler.run_job(parent, map_task)
        merged: List[List[Tuple[Any, Any]]] = [[] for _ in range(num_out)]
        for task_buckets in per_map:
            for out_idx, bucket in enumerate(task_buckets):
                merged[out_idx].extend(bucket)
        return merged


class ShuffledRDD(RDD):
    """Wide RDD produced by ``partition_by`` / ``combine_by_key``.

    With an aggregator, partition contents are key-merged combiners;
    without one, they are raw ``(key, value)`` pairs routed to the
    partitioner's target split.
    """

    def __init__(
        self, parent: RDD, partitioner: Partitioner, aggregator: Optional[Aggregator]
    ):
        super().__init__(parent.context, partitioner.num_partitions, [parent])
        self._parent = parent
        self.partitioner = partitioner
        self._aggregator = aggregator
        self._shuffle_id = parent.context.shuffle_manager.new_shuffle_id()

    def compute(self, split: int) -> Iterator:
        bucket = self.context.shuffle_manager.fetch(
            self._shuffle_id, self._parent, self.partitioner, self._aggregator, split
        )
        if self._aggregator is None:
            return iter(bucket)
        merged: Dict[Any, Any] = {}
        merge = self._aggregator.merge_combiners
        for key, combiner in bucket:
            if key in merged:
                merged[key] = merge(merged[key], combiner)
            else:
                merged[key] = combiner
        return iter(merged.items())


class CoGroupedRDD(RDD):
    """Group N pair-RDDs by key: ``(key, (values_0, ..., values_{N-1}))``.

    Each parent is shuffled with a list-building aggregator; the reduce
    side aligns the per-parent groups by key.
    """

    def __init__(self, parents: Sequence[RDD], partitioner: Partitioner):
        if not parents:
            raise ValueError("CoGroupedRDD needs at least one parent")
        super().__init__(parents[0].context, partitioner.num_partitions, parents)
        self._parents = list(parents)
        self.partitioner = partitioner
        manager = self.context.shuffle_manager
        self._shuffle_ids = [manager.new_shuffle_id() for _ in self._parents]
        self._aggregator = Aggregator(
            create_combiner=lambda v: [v],
            merge_value=_append_value,
            merge_combiners=_extend_lists,
        )

    def compute(self, split: int) -> Iterator:
        grouped: Dict[Any, List[List[Any]]] = {}
        n = len(self._parents)
        for idx, (parent, shuffle_id) in enumerate(
            zip(self._parents, self._shuffle_ids)
        ):
            bucket = self.context.shuffle_manager.fetch(
                shuffle_id, parent, self.partitioner, self._aggregator, split
            )
            for key, values in bucket:
                slot = grouped.get(key)
                if slot is None:
                    slot = [[] for _ in range(n)]
                    grouped[key] = slot
                slot[idx].extend(values)
        return ((key, tuple(slots)) for key, slots in grouped.items())


class _ShuffleMapTask:
    """Map-side shuffle task: bucket (and optionally combine) pairs.

    A plain class rather than a closure so the task is picklable when
    the partitioner and aggregator functions are — the process backend
    can then run map-side bucketing in workers; lambda-built
    aggregators (most ``reduce_by_key`` call sites) still fall back to
    the thread/inline path via the scheduler's pickle check.
    """

    __slots__ = ("partitioner", "aggregator", "num_out")

    def __init__(
        self,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        num_out: int,
    ):
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.num_out = num_out

    def __call__(self, it: Iterator[Tuple[Any, Any]]):
        partitioner, aggregator = self.partitioner, self.aggregator
        if aggregator is None:
            local: List[List[Tuple[Any, Any]]] = [
                [] for _ in range(self.num_out)
            ]
            for key, value in it:
                local[partitioner.partition(key)].append((key, value))
            return local
        combined: List[Dict[Any, Any]] = [{} for _ in range(self.num_out)]
        for key, value in it:
            bucket = combined[partitioner.partition(key)]
            if key in bucket:
                bucket[key] = aggregator.merge_value(bucket[key], value)
            else:
                bucket[key] = aggregator.create_combiner(value)
        return [list(bucket.items()) for bucket in combined]


def _append_value(acc: List[Any], value: Any) -> List[Any]:
    acc.append(value)
    return acc


def _extend_lists(a: List[Any], b: List[Any]) -> List[Any]:
    a.extend(b)
    return a
