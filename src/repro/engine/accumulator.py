"""Accumulators: write-only shared counters updated from tasks."""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A commutative, associative accumulator.

    Tasks call :meth:`add`; only the driver should read :attr:`value`.
    The combine function must be commutative and associative for the
    result to be deterministic regardless of task order — the same
    property UPA relies on for MapReduce reducers.
    """

    def __init__(self, zero: T, combine: Callable[[T, T], T]):
        self._lock = threading.Lock()
        self._value = zero
        self._combine = combine

    def add(self, amount: T) -> None:
        with self._lock:
            self._value = self._combine(self._value, amount)

    @property
    def value(self) -> T:
        with self._lock:
            return self._value


def int_accumulator(start: int = 0) -> Accumulator[int]:
    """Convenience constructor for a summing integer accumulator."""
    return Accumulator(start, lambda a, b: a + b)
