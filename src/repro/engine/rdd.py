"""Resilient Distributed Dataset: lazy, partitioned, lineage-tracked.

The API mirrors (a useful subset of) Spark's RDD in snake_case.  All
transformations are lazy — they build a lineage graph — and actions
trigger jobs on the context's scheduler.  Key-value operations that need
a shuffle live here too but construct their shuffle RDDs from
:mod:`repro.engine.shuffle` (imported locally to keep the module graph
acyclic, the same layering Spark uses between ``RDD`` and
``ShuffledRDD``).
"""

from __future__ import annotations

import copy
import heapq
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.common.errors import EngineError
from repro.engine.metrics import MetricsRegistry
from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.procpool import ProcessUnsupported

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")
W = TypeVar("W")
C = TypeVar("C")


class RDD:
    """Base RDD: subclasses implement :meth:`compute`.

    Attributes:
        context: owning :class:`repro.engine.context.EngineContext`.
        rdd_id: unique id within the context (used as cache key).
        num_partitions: number of splits.
        dependencies: parent RDDs (lineage, for debugging/tests).
    """

    def __init__(self, context, num_partitions: int, dependencies: Sequence["RDD"] = ()):
        if num_partitions <= 0:
            raise EngineError(f"RDD must have >=1 partition, got {num_partitions}")
        self.context = context
        self.rdd_id = context._next_rdd_id()
        self.num_partitions = num_partitions
        self.dependencies: Tuple[RDD, ...] = tuple(dependencies)
        self._persisted = False

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------

    def compute(self, split: int) -> Iterator:
        """Produce the records of one partition (subclass responsibility)."""
        raise NotImplementedError

    def iterator(self, split: int) -> Iterator:
        """Compute a partition, consulting the block store if persisted."""
        if not self._persisted:
            return self.compute(split)
        store = self.context.block_store
        block_id = (self.rdd_id, split)
        cached = store.get(block_id)
        if cached is not None:
            return iter(cached)
        records = list(self.compute(split))
        store.put(block_id, records)
        return iter(records)

    def _process_plan(self, split: int):
        """``(base records, narrow op chain)`` for a process worker.

        The plan is everything a worker needs to recompute this
        partition without the driver's object graph: the source
        records plus the ``(split, f)`` pairs of narrow operators above
        them (see :mod:`repro.engine.procpool`).  A persisted partition
        ships its cached block when one exists; a cache *miss* is
        unsupported — the driver must compute it so the block store is
        populated (workers have no way to write back).

        Raises:
            ProcessUnsupported: when this lineage cannot be rebuilt
                in-worker (shuffle input, uncached persisted data,
                coalesced partitions).
        """
        if self._persisted:
            cached = self.context.block_store.get((self.rdd_id, split))
            if cached is not None:
                return cached, []
            raise ProcessUnsupported(
                f"persisted partition ({self.rdd_id}, {split}) not yet cached"
            )
        return self._process_plan_uncached(split)

    def _process_plan_uncached(self, split: int):
        raise ProcessUnsupported(
            f"{type(self).__name__} has no process plan"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def cache(self) -> "RDD":
        """Persist this RDD's partitions in the block store after first use."""
        self._persisted = True
        return self

    def unpersist(self) -> "RDD":
        """Stop caching and drop any stored blocks."""
        self._persisted = False
        self.context.block_store.evict_rdd(self.rdd_id)
        return self

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map(self, f: Callable[[T], U]) -> "RDD":
        """Apply ``f`` to every record."""
        return MapPartitionsRDD(self, _MapFunction(f))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD":
        """Apply ``f`` and flatten the resulting iterables."""
        return MapPartitionsRDD(self, _FlatMapFunction(f))

    def filter(self, predicate: Callable[[T], bool]) -> "RDD":
        """Keep records where ``predicate`` is true."""
        return MapPartitionsRDD(self, _FilterFunction(predicate))

    def map_partitions(self, f: Callable[[Iterator[T]], Iterable[U]]) -> "RDD":
        """Apply ``f`` to each whole partition iterator."""
        return MapPartitionsRDD(self, _MapPartitionsFunction(f))

    def map_partitions_with_index(
        self, f: Callable[[int, Iterator[T]], Iterable[U]]
    ) -> "RDD":
        """Like :meth:`map_partitions` but also receives the split index."""
        return MapPartitionsRDD(self, f)

    def glom(self) -> "RDD":
        """Turn each partition into a single list record."""
        return MapPartitionsRDD(self, _GlomFunction())

    def key_by(self, f: Callable[[T], K]) -> "RDD":
        """Produce ``(f(rec), rec)`` pairs."""
        return self.map(_KeyByFunction(f))

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (no shuffle; partitions are appended)."""
        return UnionRDD(self.context, [self, other])

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Remove duplicate records (requires hashable records; shuffles)."""
        return (
            self.map(lambda rec: (rec, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli-sample records with probability ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise EngineError(f"sample fraction must be in [0,1], got {fraction}")
        return MapPartitionsRDD(self, _SampleFunction(fraction, seed, self.rdd_id))

    def zip_with_index(self) -> "RDD":
        """Pair each record with a global 0-based index (triggers a job)."""
        sizes = self.context.scheduler.run_job(self, _count_iter)
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)
        return MapPartitionsRDD(self, _IndexerFunction(offsets))

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute records across ``num_partitions`` via a shuffle."""
        indexed = self.zip_with_index().map(lambda pair: (pair[1], pair[0]))
        return indexed.partition_by(HashPartitioner(num_partitions)).map(
            lambda kv: kv[1]
        )

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce the partition count without a shuffle."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Globally sort by ``key_func`` using range partitioning."""
        parts = num_partitions or self.num_partitions
        keys = self.map(key_func).collect()
        if not keys:
            return self
        sorted_keys = sorted(keys)
        if parts <= 1 or len(sorted_keys) <= 1:
            bounds: List[Any] = []
        else:
            step = len(sorted_keys) / parts
            bounds = [
                sorted_keys[min(len(sorted_keys) - 1, max(0, int(step * i) - 1))]
                for i in range(1, parts)
            ]
        partitioner = RangePartitioner(bounds, ascending=ascending)
        keyed = self.key_by(key_func).partition_by(partitioner)
        return keyed.map_partitions(
            lambda it: (
                kv[1]
                for kv in sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            )
        )

    # ------------------------------------------------------------------
    # Key-value transformations (records must be (key, value) tuples)
    # ------------------------------------------------------------------

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def map_values(self, f: Callable[[V], U]) -> "RDD":
        return self.map(lambda kv: (kv[0], f(kv[1])))

    def flat_map_values(self, f: Callable[[V], Iterable[U]]) -> "RDD":
        return self.flat_map(lambda kv: ((kv[0], out) for out in f(kv[1])))

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        """Shuffle pairs so each key lands on ``partitioner.partition(key)``."""
        from repro.engine.shuffle import ShuffledRDD

        return ShuffledRDD(self, partitioner, aggregator=None)

    def combine_by_key(
        self,
        create_combiner: Callable[[V], C],
        merge_value: Callable[[C, V], C],
        merge_combiners: Callable[[C, C], C],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """The generic shuffle aggregation every ``*_by_key`` builds on."""
        from repro.engine.shuffle import Aggregator, ShuffledRDD

        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        aggregator = Aggregator(create_combiner, merge_value, merge_combiners)
        return ShuffledRDD(self, partitioner, aggregator)

    def reduce_by_key(
        self, f: Callable[[V, V], V], num_partitions: Optional[int] = None
    ) -> "RDD":
        """Merge values per key with a commutative, associative function."""
        return self.combine_by_key(lambda v: v, f, f, num_partitions)

    def fold_by_key(
        self, zero: V, f: Callable[[V, V], V], num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.combine_by_key(lambda v: f(zero, v), f, f, num_partitions)

    def aggregate_by_key(
        self,
        zero: C,
        seq_op: Callable[[C, V], C],
        comb_op: Callable[[C, C], C],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        return self.combine_by_key(
            lambda v: seq_op(zero, v), seq_op, comb_op, num_partitions
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Collect all values per key into a list."""

        def merge_value(acc: List[V], v: V) -> List[V]:
            acc.append(v)
            return acc

        def merge_combiners(a: List[V], b: List[V]) -> List[V]:
            a.extend(b)
            return a

        return self.combine_by_key(lambda v: [v], merge_value, merge_combiners,
                                   num_partitions)

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Group both RDDs by key: ``(k, ([vs from self], [ws from other]))``."""
        from repro.engine.shuffle import CoGroupedRDD

        partitioner = HashPartitioner(
            num_partitions or max(self.num_partitions, other.num_partitions)
        )
        return CoGroupedRDD([self, other], partitioner)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join: ``(k, (v, w))`` for every matching pair."""
        return self.cogroup(other, num_partitions).flat_map(
            lambda kvw: (
                (kvw[0], (v, w)) for v in kvw[1][0] for w in kvw[1][1]
            )
        )

    def left_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Left outer join: unmatched left rows pair with ``None``."""

        def emit(kvw):
            key, (left_vals, right_vals) = kvw
            if not right_vals:
                return ((key, (v, None)) for v in left_vals)
            return ((key, (v, w)) for v in left_vals for w in right_vals)

        return self.cogroup(other, num_partitions).flat_map(emit)

    def right_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Right outer join: unmatched right rows pair with ``None``."""

        def emit(kvw):
            key, (left_vals, right_vals) = kvw
            if not left_vals:
                return ((key, (None, w)) for w in right_vals)
            return ((key, (v, w)) for v in left_vals for w in right_vals)

        return self.cogroup(other, num_partitions).flat_map(emit)

    def full_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Full outer join: unmatched rows on either side pair with ``None``."""

        def emit(kvw):
            key, (left_vals, right_vals) = kvw
            if not left_vals:
                return ((key, (None, w)) for w in right_vals)
            if not right_vals:
                return ((key, (v, None)) for v in left_vals)
            return ((key, (v, w)) for v in left_vals for w in right_vals)

        return self.cogroup(other, num_partitions).flat_map(emit)

    def semi_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Left semi join: left pairs whose key appears in ``other``."""
        return self.cogroup(other, num_partitions).flat_map(
            lambda kvw: (
                ((kvw[0], v) for v in kvw[1][0]) if kvw[1][1] else ()
            )
        )

    def anti_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Left anti join: left pairs whose key does NOT appear in ``other``."""
        return self.cogroup(other, num_partitions).flat_map(
            lambda kvw: (
                ((kvw[0], v) for v in kvw[1][0]) if not kvw[1][1] else ()
            )
        )

    def subtract_by_key(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.anti_join(other, num_partitions)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> List[T]:
        """Materialize every record on the driver, in partition order."""
        chunks = self.context.scheduler.run_job(self, list)
        return [rec for chunk in chunks for rec in chunk]

    def count(self) -> int:
        """Number of records."""
        return sum(self.context.scheduler.run_job(self, _count_iter))

    def is_empty(self) -> bool:
        return self.take(1) == []

    def first(self) -> T:
        taken = self.take(1)
        if not taken:
            raise EngineError("first() on an empty RDD")
        return taken[0]

    def take(self, n: int) -> List[T]:
        """Return up to ``n`` records, scanning partitions in order."""
        if n <= 0:
            return []
        out: List[T] = []
        for split in range(self.num_partitions):
            needed = n - len(out)
            if needed <= 0:
                break
            chunk = self.context.scheduler.run_job(
                self, _TakeJob(needed), partitions=[split]
            )[0]
            out.extend(chunk)
        return out[:n]

    def reduce(self, f: Callable[[T, T], T]) -> T:
        """Combine all records with a commutative, associative ``f``."""
        partials = self.context.scheduler.run_job(self, _ReduceJob(f))
        acc = None
        seen = False
        for has, part in partials:
            if not has:
                continue
            acc = part if not seen else f(acc, part)
            seen = True
        if not seen:
            raise EngineError("reduce() on an empty RDD")
        return acc

    def fold(self, zero: T, f: Callable[[T, T], T]) -> T:
        """Fold with a zero element.

        Like Spark, the zero value is cloned per task so mutable
        accumulators (lists, StatCounter, ...) are safe.
        """
        partials = self.context.scheduler.run_job(self, _FoldJob(zero, f))
        acc = copy.deepcopy(zero)
        for part in partials:
            acc = f(acc, part)
        return acc

    def aggregate(
        self, zero: C, seq_op: Callable[[C, T], C], comb_op: Callable[[C, C], C]
    ) -> C:
        """Aggregate with distinct within/between-partition operators.

        The zero value is cloned per task (see :meth:`fold`).
        """
        partials = self.context.scheduler.run_job(self, _FoldJob(zero, seq_op))
        acc = copy.deepcopy(zero)
        for part in partials:
            acc = comb_op(acc, part)
        return acc

    def sum(self) -> Any:
        return self.fold(0, _add)

    def min(self) -> T:
        return self.reduce(_min2)

    def max(self) -> T:
        return self.reduce(_max2)

    def mean(self) -> float:
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, rec: (acc[0] + rec, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise EngineError("mean() on an empty RDD")
        return total / count

    def count_by_value(self) -> Dict[T, int]:
        partials = self.context.scheduler.run_job(self, _count_by_value_iter)
        totals: Dict[T, int] = defaultdict(int)
        for partial in partials:
            for key, cnt in partial.items():
                totals[key] += cnt
        return dict(totals)

    def count_by_key(self) -> Dict[K, int]:
        return self.map(lambda kv: kv[0]).count_by_value()

    def collect_as_map(self) -> Dict[K, V]:
        return dict(self.collect())

    def lookup(self, key: K) -> List[V]:
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def top(self, n: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """The ``n`` largest records (by optional key), descending."""
        partials = self.context.scheduler.run_job(self, _TopJob(n, key))
        merged = [rec for chunk in partials for rec in chunk]
        return heapq.nlargest(n, merged, key=key)

    def foreach(self, f: Callable[[T], None]) -> None:
        """Run ``f`` on every record for its side effects (e.g. accumulators).

        Side effects mutate driver-side objects, so foreach always runs
        on the driver: the scheduler's process backend cannot ship it
        (the closure would mutate a worker's copy), and the pickling
        fallback guarantees it never silently does.
        """
        self.context.scheduler.run_job(self, _ForeachJob(f))

    def checkpoint(self) -> "RDD":
        """Materialize this RDD now and truncate its lineage.

        Long lineage chains make recomputation after failures expensive;
        checkpointing trades memory for a fresh, dependency-free RDD.
        Returns a new RDD over the materialized data (this one is
        unchanged).
        """
        chunks = self.context.scheduler.run_job(self, list)
        checkpointed = ParallelCollectionRDD(
            self.context,
            [rec for chunk in chunks for rec in chunk],
            self.num_partitions,
        )
        return checkpointed

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs (a, b); |self| x |other| records.

        The other side is materialized per partition (like Spark's
        block-nested-loop cartesian), so keep it small.
        """
        other_rows = other.collect()
        return MapPartitionsRDD(
            self,
            lambda _split, it: ((a, b) for a in it for b in other_rows),
        )

    def stats(self) -> "StatCounter":
        """Count/mean/variance/min/max in one pass (numeric records)."""
        return self.aggregate(StatCounter(), _stat_seq, _stat_comb)

    def to_debug_string(self) -> str:
        """Lineage tree, one node per line (Spark's toDebugString)."""
        lines: List[str] = []

        def visit(rdd: "RDD", depth: int) -> None:
            lines.append(
                "  " * depth
                + f"({rdd.num_partitions}) {type(rdd).__name__}[{rdd.rdd_id}]"
                + (" [cached]" if rdd._persisted else "")
            )
            for dep in rdd.dependencies:
                visit(dep, depth + 1)

        visit(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} id={self.rdd_id} "
            f"partitions={self.num_partitions}>"
        )


class StatCounter:
    """Welford-style running statistics, mergeable across partitions."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def merge_value(self, value) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge_stats(self, other: "StatCounter") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        return self.variance ** 0.5

    def __repr__(self) -> str:
        return (
            f"StatCounter(count={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def _take_iter(it: Iterator[T], n: int) -> Iterator[T]:
    for i, rec in enumerate(it):
        if i >= n:
            return
        yield rec


def _fold_iter(it: Iterator[T], zero: C, op: Callable[[C, T], C]) -> C:
    acc = zero
    for rec in it:
        acc = op(acc, rec)
    return acc


def _consume(it: Iterator[T], f: Callable[[T], None]) -> None:
    for rec in it:
        f(rec)


def _count_iter(it: Iterator) -> int:
    return sum(1 for _ in it)


def _count_by_value_iter(it: Iterator) -> Dict[Any, int]:
    counts: Dict[Any, int] = defaultdict(int)
    for rec in it:
        counts[rec] += 1
    return dict(counts)


def _add(a, b):
    return a + b


def _min2(a, b):
    return a if a <= b else b


def _max2(a, b):
    return a if a >= b else b


def _stat_seq(acc: "StatCounter", value) -> "StatCounter":
    acc.merge_value(value)
    return acc


def _stat_comb(a: "StatCounter", b: "StatCounter") -> "StatCounter":
    a.merge_stats(b)
    return a


# ----------------------------------------------------------------------
# Picklable operator adapters and job functions.
#
# Transformations and actions used to capture their user function in a
# lambda, which pins every lineage to the driver: lambdas (and the
# closures they capture) cannot cross a process boundary with stdlib
# pickle.  These small classes carry the same behaviour as instances —
# picklable exactly when the wrapped user function is — so a lineage
# built from picklable functions ships whole to a process worker, and
# one built from closures falls back to the thread/inline path at the
# single pickle call in the scheduler (no behaviour change either way).
# ----------------------------------------------------------------------


class _MapFunction:
    """``rdd.map(f)`` as a (split, iterator) partition function."""

    __slots__ = ("f",)

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        f = self.f
        return (f(rec) for rec in it)


class _FlatMapFunction:
    """``rdd.flat_map(f)`` as a partition function."""

    __slots__ = ("f",)

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        f = self.f
        return (out for rec in it for out in f(rec))


class _FilterFunction:
    """``rdd.filter(predicate)`` as a partition function."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable):
        self.predicate = predicate

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        predicate = self.predicate
        return (rec for rec in it if predicate(rec))


class _MapPartitionsFunction:
    """``rdd.map_partitions(f)`` — drops the split index."""

    __slots__ = ("f",)

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, _split: int, it: Iterator) -> Iterable:
        return self.f(it)


class _GlomFunction:
    """``rdd.glom()`` — one list record per partition."""

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        return iter([list(it)])


class _KeyByFunction:
    """``rdd.key_by(f)`` record mapper: ``rec -> (f(rec), rec)``."""

    __slots__ = ("f",)

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, rec):
        return (self.f(rec), rec)


class _SampleFunction:
    """``rdd.sample(fraction, seed)`` — per-split deterministic RNG."""

    __slots__ = ("fraction", "seed", "rdd_id")

    def __init__(self, fraction: float, seed: int, rdd_id: int):
        self.fraction = fraction
        self.seed = seed
        self.rdd_id = rdd_id

    def __call__(self, split: int, it: Iterator) -> Iterator:
        from repro.common.rng import make_rng

        rng = make_rng(self.seed, f"sample-{self.rdd_id}-{split}")
        fraction = self.fraction
        return (rec for rec in it if rng.random() < fraction)


class _IndexerFunction:
    """``rdd.zip_with_index()`` — global index from per-split offsets."""

    __slots__ = ("offsets",)

    def __init__(self, offsets: List[int]):
        self.offsets = offsets

    def __call__(self, split: int, it: Iterator) -> Iterator:
        offset = self.offsets[split]
        return ((rec, offset + i) for i, rec in enumerate(it))


class _TakeJob:
    """Job function for ``take``: first ``n`` records of a partition."""

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n

    def __call__(self, it: Iterator) -> List:
        return list(_take_iter(it, self.n))


class _ReduceJob:
    """Job function for ``reduce``: ``(seen, partial)`` per partition."""

    __slots__ = ("f",)

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, it: Iterator) -> Tuple[bool, Any]:
        f = self.f
        acc = None
        seen = False
        for rec in it:
            acc = rec if not seen else f(acc, rec)
            seen = True
        return (seen, acc)


class _FoldJob:
    """Job function for ``fold``/``aggregate``.

    The zero value is deep-copied per task so mutable accumulators
    (lists, StatCounter, ...) are safe — and, on the process backend,
    each worker naturally folds into its own copy.
    """

    __slots__ = ("zero", "op")

    def __init__(self, zero, op: Callable):
        self.zero = zero
        self.op = op

    def __call__(self, it: Iterator):
        return _fold_iter(it, copy.deepcopy(self.zero), self.op)


class _TopJob:
    """Job function for ``top``: per-partition n-largest."""

    __slots__ = ("n", "key")

    def __init__(self, n: int, key: Optional[Callable]):
        self.n = n
        self.key = key

    def __call__(self, it: Iterator) -> List:
        return heapq.nlargest(self.n, it, key=self.key)


class _ForeachJob:
    """Job function for ``foreach`` — deliberately driver-only.

    ``foreach`` exists for side effects on driver state (accumulators,
    collectors); shipping it to a process worker would mutate a copy
    and silently drop the effects.  Refusing to pickle routes the job
    down the scheduler's thread/inline fallback.
    """

    def __init__(self, f: Callable):
        self.f = f

    def __call__(self, it: Iterator) -> None:
        _consume(it, self.f)

    def __reduce__(self):
        raise TypeError("foreach jobs must run on the driver")


class ParallelCollectionRDD(RDD):
    """An RDD over an in-memory sequence, split into even slices."""

    def __init__(self, context, data: Sequence, num_partitions: int):
        super().__init__(context, max(1, num_partitions))
        self._data = list(data)

    def compute(self, split: int) -> Iterator:
        total = len(self._data)
        parts = self.num_partitions
        start = (split * total) // parts
        end = ((split + 1) * total) // parts
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, end - start)
        return iter(self._data[start:end])

    def _process_plan_uncached(self, split: int):
        total = len(self._data)
        parts = self.num_partitions
        start = (split * total) // parts
        end = ((split + 1) * total) // parts
        # Metric parity with compute(): read accounting stays on the
        # driver (workers have their own, unobserved registries).
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, end - start)
        return self._data[start:end], []


class ColumnarCollectionRDD(RDD):
    """An RDD over pre-transposed :class:`ColumnarPartition` blocks.

    Iteration yields dict rows (boxed lazily by the partition's row
    adapter), so every row-oriented operator works unchanged; columnar
    consumers call :meth:`block` — or use :meth:`blocks_rdd`, whose
    partitions each yield the raw block — and skip boxing entirely.
    Blocks pickle by column buffer, making this the cheapest source for
    the process backend.
    """

    def __init__(self, context, blocks: Sequence["ColumnarPartition"]):
        from repro.engine.columnar import ColumnarPartition

        blocks = list(blocks) or [ColumnarPartition({}, length=0)]
        super().__init__(context, len(blocks))
        self._blocks = blocks

    @classmethod
    def from_rows(cls, context, rows: Sequence, num_partitions: int
                  ) -> "ColumnarCollectionRDD":
        """Transpose once, then zero-copy slice into partition blocks."""
        from repro.engine.columnar import ColumnarPartition

        whole = ColumnarPartition.from_rows(rows)
        parts = max(1, num_partitions)
        total = len(whole)
        blocks = [
            whole.slice((i * total) // parts, ((i + 1) * total) // parts)
            for i in range(parts)
        ]
        return cls(context, blocks)

    def block(self, split: int) -> "ColumnarPartition":
        """The raw columnar block of one partition (no boxing)."""
        return self._blocks[split]

    def blocks_rdd(self) -> "ColumnarBlocksRDD":
        """An RDD whose partitions each yield the block itself."""
        return ColumnarBlocksRDD(self.context, self._blocks)

    def compute(self, split: int) -> Iterator:
        block = self._blocks[split]
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, len(block))
        return block.iter_rows()

    def _process_plan_uncached(self, split: int):
        block = self._blocks[split]
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, len(block))
        return block, []


class ColumnarBlocksRDD(RDD):
    """Each partition yields exactly one record: its ColumnarPartition.

    The shape vectorized operators want — a fused SQL stage maps
    block-to-block (mask, compress) and unboxes to rows only at its
    row-oriented boundary.
    """

    def __init__(self, context, blocks: Sequence["ColumnarPartition"]):
        from repro.engine.columnar import ColumnarPartition

        blocks = list(blocks) or [ColumnarPartition({}, length=0)]
        super().__init__(context, len(blocks))
        self._blocks = blocks

    def compute(self, split: int) -> Iterator:
        block = self._blocks[split]
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, len(block))
        return iter([block])

    def _process_plan_uncached(self, split: int):
        block = self._blocks[split]
        self.context.metrics.incr(MetricsRegistry.RECORDS_READ, len(block))
        return [block], []


class MapPartitionsRDD(RDD):
    """Narrow transformation: a function of (split, parent iterator)."""

    def __init__(self, parent: RDD, f: Callable[[int, Iterator], Iterable]):
        super().__init__(parent.context, parent.num_partitions, [parent])
        self._parent = parent
        self._f = f

    def compute(self, split: int) -> Iterator:
        return iter(self._f(split, self._parent.iterator(split)))

    def _process_plan_uncached(self, split: int):
        base, ops = self._parent._process_plan(split)
        return base, ops + [(split, self._f)]


class UnionRDD(RDD):
    """Concatenation: partitions of all parents, in order."""

    def __init__(self, context, parents: Sequence[RDD]):
        total = sum(p.num_partitions for p in parents)
        super().__init__(context, total, parents)
        self._parents = list(parents)

    def compute(self, split: int) -> Iterator:
        for parent in self._parents:
            if split < parent.num_partitions:
                return parent.iterator(split)
            split -= parent.num_partitions
        raise EngineError(f"split {split} out of range for UnionRDD")

    def _process_plan_uncached(self, split: int):
        for parent in self._parents:
            if split < parent.num_partitions:
                return parent._process_plan(split)
            split -= parent.num_partitions
        raise EngineError(f"split {split} out of range for UnionRDD")


class CoalescedRDD(RDD):
    """Merge parent partitions into fewer output partitions (no shuffle)."""

    def __init__(self, parent: RDD, num_partitions: int):
        super().__init__(parent.context, num_partitions, [parent])
        self._parent = parent

    def compute(self, split: int) -> Iterator:
        parent_parts = self._parent.num_partitions
        mine = [
            p for p in range(parent_parts)
            if p * self.num_partitions // parent_parts == split
        ]
        for p in mine:
            yield from self._parent.iterator(p)
