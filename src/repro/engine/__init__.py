"""A from-scratch, partitioned MapReduce engine (the "vanilla Spark" stand-in).

The engine provides lazy, lineage-tracked RDDs with narrow and wide
(shuffle) dependencies, a DAG scheduler that retries failed tasks by
recomputing from lineage, an LRU block store for ``cache()``, broadcast
variables, accumulators, and a metrics registry that counts tasks,
shuffled records and simulated network cost.

The UPA paper's claims rest on two semantic properties of MapReduce
operators — commutativity and associativity — plus the observable cost
structure of jobs (number of shuffles, records exchanged).  This engine
exposes both: operator semantics match Spark's RDD API closely, and
every shuffle/broadcast is counted by :class:`repro.engine.metrics.MetricsRegistry`.

Example:
    >>> from repro.engine import EngineContext
    >>> ctx = EngineContext()
    >>> ctx.parallelize(range(10)).map(lambda v: v * v).sum()
    285
"""

from repro.engine.context import EngineContext
from repro.engine.fault import FaultInjector
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot
from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.rdd import RDD

__all__ = [
    "EngineContext",
    "FaultInjector",
    "HashPartitioner",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Partitioner",
    "RDD",
    "RangePartitioner",
]
