"""Partitioners decide which reduce partition a key belongs to."""

from __future__ import annotations

import bisect
import datetime
from typing import Any, List, Sequence


def _portable_hash(key: Any) -> int:
    """Deterministic, type-stable hash for partitioning.

    Python's builtin ``hash`` is randomized for strings across processes;
    we need a stable mapping so that repeated runs shuffle identically.
    """
    if key is None:
        return 0
    if isinstance(key, datetime.date):
        return key.toordinal()
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, float):
        if key.is_integer():
            return int(key)
        return hash(key)
    if isinstance(key, str):
        # FNV-1a, stable across runs.
        acc = 0xCBF29CE484222325
        for ch in key.encode("utf-8"):
            acc ^= ch
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc
    if isinstance(key, tuple):
        acc = 0x345678
        for item in key:
            acc = (acc * 1000003) ^ _portable_hash(item)
            acc &= 0xFFFFFFFFFFFFFFFF
        return acc
    return hash(key)


class Partitioner:
    """Base partitioner interface."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Partition by stable hash of the key (Spark's default)."""

    def partition(self, key: Any) -> int:
        return _portable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition by key ranges, given sorted split bounds.

    ``bounds`` has ``num_partitions - 1`` entries; keys <= bounds[i] go to
    partition i, larger keys to later partitions.  Used by ``sortBy``.
    """

    def __init__(self, bounds: Sequence[Any], ascending: bool = True):
        super().__init__(len(bounds) + 1)
        self.bounds: List[Any] = list(bounds)
        self.ascending = ascending

    def partition(self, key: Any) -> int:
        idx = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            idx = self.num_partitions - 1 - idx
        return idx

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.bounds == other.bounds
            and self.ascending == other.ascending
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds), self.ascending))
