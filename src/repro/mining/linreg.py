"""Linear Regression as a UPA MapReduceQuery (paper's running example).

One gradient-descent step on squared loss:

* Mapper: per record, the gradient contribution
  ``(prediction - label) * [features, 1]`` at the current weights
  (held in aux), plus a count of 1.
* Reducer: elementwise sum (commutative + associative).
* finalize: ``weights - lr * grad_sum / count`` — the updated model,
  which is the query output the paper privatizes (its evaluation notes
  LR's output differs across neighbouring datasets, hence iDP matters).

The output is a vector of dimension ``dim + 1``; UPA infers a
per-coordinate output range and uses the L1 width as sensitivity.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import leave_one_out, sequential_sum
from repro.core.query import MapReduceQuery, Row, Tables
from repro.mining.datasets import LifeScienceConfig, domain_point


def extended_features(records: Sequence[Row]) -> np.ndarray:
    """Stack records' feature vectors with the bias column appended."""
    features = np.asarray([r["features"] for r in records], dtype=float)
    return np.concatenate([features, np.ones((len(records), 1))], axis=1)


class LinearRegressionQuery(MapReduceQuery):
    """One synchronous SGD step over the ``points`` table."""

    name = "linreg"
    protected_table = "points"
    query_type = "ml"
    flex_supported = False

    def __init__(
        self,
        dim: int = 4,
        learning_rate: float = 0.005,
        initial_weights: Optional[np.ndarray] = None,
        dataset_config: Optional[LifeScienceConfig] = None,
    ):
        self.dim = dim
        self.learning_rate = learning_rate
        if initial_weights is None:
            initial_weights = np.zeros(dim + 1)
        self.initial_weights = np.asarray(initial_weights, dtype=float)
        if self.initial_weights.shape != (dim + 1,):
            raise ValueError(
                f"initial_weights must have shape ({dim + 1},), got "
                f"{self.initial_weights.shape}"
            )
        self.output_dim = dim + 1
        self._dataset_config = dataset_config or LifeScienceConfig(dim=dim)

    # -- monoid ------------------------------------------------------------

    def build_aux(self, tables: Tables) -> np.ndarray:
        return self.initial_weights

    def map_record(self, record: Row, aux: np.ndarray) -> Tuple[np.ndarray, int]:
        x = np.asarray(record["features"], dtype=float)
        extended = np.append(x, 1.0)
        residual = float(extended @ aux) - record["label"]
        return (residual * extended, 1)

    def zero(self) -> Tuple[np.ndarray, int]:
        return (np.zeros(self.output_dim), 0)

    def combine(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, agg, aux: np.ndarray) -> np.ndarray:
        grad_sum, count = agg
        if count == 0:
            return aux.copy()
        return aux - self.learning_rate * grad_sum / count

    # -- batched kernels -----------------------------------------------------
    # Batch layout: (gradients (n, dim + 1), counts (n,)).

    def map_batch(self, records: Sequence[Row], aux: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
        if not records:
            return (np.zeros((0, self.output_dim)), np.zeros(0))
        extended = extended_features(records)
        labels = np.asarray([r["label"] for r in records], dtype=float)
        residuals = extended @ np.asarray(aux, dtype=float) - labels
        return (residuals[:, None] * extended, np.ones(len(records)))

    def prefix_suffix_batch(self, elements):
        gradients, counts = elements
        return (leave_one_out(gradients), leave_one_out(counts))

    def combine_batch(self, agg, elements):
        gradients, counts = elements
        return (
            np.asarray(agg[0], dtype=float) + gradients,
            float(agg[1]) + counts,
        )

    def finalize_batch(self, aggs, aux: np.ndarray) -> np.ndarray:
        gradients, counts = aggs
        gradients = np.asarray(gradients, dtype=float)
        counts = np.asarray(counts, dtype=float).reshape(-1)
        n = counts.shape[0]
        if n == 0:
            return np.empty((0, self.output_dim))
        aux = np.asarray(aux, dtype=float)
        outputs = np.tile(aux, (n, 1))
        populated = counts > 0
        outputs[populated] = (
            aux
            - self.learning_rate * gradients[populated]
            / counts[populated][:, None]
        )
        return outputs

    def fold_batch(self, elements):
        gradients, counts = elements
        if counts.shape[0] == 0:
            return self.zero()
        return (
            sequential_sum(gradients, None),
            float(sequential_sum(counts, None)),
        )

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return domain_point(rng, self._dataset_config)

    # -- convenience: full (non-private) training loop ---------------------

    def train(self, tables: Tables, steps: int = 20) -> np.ndarray:
        """Plain gradient descent for ``steps`` steps (reference/testing)."""
        weights = self.initial_weights
        for _ in range(steps):
            step = LinearRegressionQuery(
                self.dim, self.learning_rate, weights, self._dataset_config
            )
            weights = step.output(tables)
        return weights

    @staticmethod
    def mean_squared_error(tables: Tables, weights: np.ndarray) -> float:
        """MSE of a model over the points table (utility metric)."""
        total = 0.0
        rows = tables["points"]
        for record in rows:
            extended = np.append(np.asarray(record["features"]), 1.0)
            residual = float(extended @ weights) - record["label"]
            total += residual * residual
        return total / len(rows)
