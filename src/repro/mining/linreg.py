"""Linear Regression as a UPA MapReduceQuery (paper's running example).

One gradient-descent step on squared loss:

* Mapper: per record, the gradient contribution
  ``(prediction - label) * [features, 1]`` at the current weights
  (held in aux), plus a count of 1.
* Reducer: elementwise sum (commutative + associative).
* finalize: ``weights - lr * grad_sum / count`` — the updated model,
  which is the query output the paper privatizes (its evaluation notes
  LR's output differs across neighbouring datasets, hence iDP matters).

The output is a vector of dimension ``dim + 1``; UPA infers a
per-coordinate output range and uses the L1 width as sensitivity.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Tuple

import numpy as np

from repro.core.query import MapReduceQuery, Row, Tables
from repro.mining.datasets import LifeScienceConfig, domain_point


class LinearRegressionQuery(MapReduceQuery):
    """One synchronous SGD step over the ``points`` table."""

    name = "linreg"
    protected_table = "points"
    query_type = "ml"
    flex_supported = False

    def __init__(
        self,
        dim: int = 4,
        learning_rate: float = 0.005,
        initial_weights: Optional[np.ndarray] = None,
        dataset_config: Optional[LifeScienceConfig] = None,
    ):
        self.dim = dim
        self.learning_rate = learning_rate
        if initial_weights is None:
            initial_weights = np.zeros(dim + 1)
        self.initial_weights = np.asarray(initial_weights, dtype=float)
        if self.initial_weights.shape != (dim + 1,):
            raise ValueError(
                f"initial_weights must have shape ({dim + 1},), got "
                f"{self.initial_weights.shape}"
            )
        self.output_dim = dim + 1
        self._dataset_config = dataset_config or LifeScienceConfig(dim=dim)

    # -- monoid ------------------------------------------------------------

    def build_aux(self, tables: Tables) -> np.ndarray:
        return self.initial_weights

    def map_record(self, record: Row, aux: np.ndarray) -> Tuple[np.ndarray, int]:
        x = np.asarray(record["features"], dtype=float)
        extended = np.append(x, 1.0)
        residual = float(extended @ aux) - record["label"]
        return (residual * extended, 1)

    def zero(self) -> Tuple[np.ndarray, int]:
        return (np.zeros(self.output_dim), 0)

    def combine(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, agg, aux: np.ndarray) -> np.ndarray:
        grad_sum, count = agg
        if count == 0:
            return aux.copy()
        return aux - self.learning_rate * grad_sum / count

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return domain_point(rng, self._dataset_config)

    # -- convenience: full (non-private) training loop ---------------------

    def train(self, tables: Tables, steps: int = 20) -> np.ndarray:
        """Plain gradient descent for ``steps`` steps (reference/testing)."""
        weights = self.initial_weights
        for _ in range(steps):
            step = LinearRegressionQuery(
                self.dim, self.learning_rate, weights, self._dataset_config
            )
            weights = step.output(tables)
        return weights

    @staticmethod
    def mean_squared_error(tables: Tables, weights: np.ndarray) -> float:
        """MSE of a model over the points table (utility metric)."""
        total = 0.0
        rows = tables["points"]
        for record in rows:
            extended = np.append(np.asarray(record["features"]), 1.0)
            residual = float(extended @ weights) - record["label"]
            total += residual * residual
        return total / len(rows)
