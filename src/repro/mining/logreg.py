"""Logistic Regression as a UPA MapReduceQuery (beyond-paper workload).

Same decomposition as Linear Regression: one synchronous gradient step
on the logistic loss at fixed current weights.  The dataset's labels
are binarized (positive iff the regression label exceeds its median at
construction time — callers may pass their own threshold).
"""

from __future__ import annotations

import math
import random
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import leave_one_out, sequential_sum
from repro.core.query import MapReduceQuery, Row, Tables
from repro.mining.datasets import LifeScienceConfig, domain_point
from repro.mining.linreg import extended_features


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    ez = math.exp(z)
    return ez / (1.0 + ez)


def _sigmoid_batch(z: np.ndarray) -> np.ndarray:
    """Numerically stable vectorized sigmoid (same branches as scalar)."""
    out = np.empty_like(z)
    nonneg = z >= 0
    out[nonneg] = 1.0 / (1.0 + np.exp(-z[nonneg]))
    ez = np.exp(z[~nonneg])
    out[~nonneg] = ez / (1.0 + ez)
    return out


class LogisticRegressionQuery(MapReduceQuery):
    """One gradient step of L2-less logistic regression."""

    name = "logreg"
    protected_table = "points"
    query_type = "ml"
    flex_supported = False

    def __init__(
        self,
        dim: int = 4,
        learning_rate: float = 0.1,
        label_threshold: float = 0.0,
        initial_weights: Optional[np.ndarray] = None,
        dataset_config: Optional[LifeScienceConfig] = None,
    ):
        self.dim = dim
        self.learning_rate = learning_rate
        self.label_threshold = label_threshold
        if initial_weights is None:
            initial_weights = np.zeros(dim + 1)
        self.initial_weights = np.asarray(initial_weights, dtype=float)
        if self.initial_weights.shape != (dim + 1,):
            raise ValueError(
                f"initial_weights must have shape ({dim + 1},), got "
                f"{self.initial_weights.shape}"
            )
        self.output_dim = dim + 1
        self._dataset_config = dataset_config or LifeScienceConfig(dim=dim)

    # -- monoid ------------------------------------------------------------

    def build_aux(self, tables: Tables) -> np.ndarray:
        return self.initial_weights

    def _target(self, record: Row) -> float:
        return 1.0 if record["label"] > self.label_threshold else 0.0

    def map_record(self, record: Row, aux: np.ndarray) -> Tuple[np.ndarray, int]:
        x = np.append(np.asarray(record["features"], dtype=float), 1.0)
        prediction = _sigmoid(float(x @ aux))
        gradient = (prediction - self._target(record)) * x
        return (gradient, 1)

    def zero(self) -> Tuple[np.ndarray, int]:
        return (np.zeros(self.output_dim), 0)

    def combine(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, agg, aux: np.ndarray) -> np.ndarray:
        gradient_sum, count = agg
        if count == 0:
            return aux.copy()
        return aux - self.learning_rate * gradient_sum / count

    # -- batched kernels -----------------------------------------------------
    # Batch layout: (gradients (n, dim + 1), counts (n,)) — same as
    # LinearRegressionQuery, with the residual replaced by the logistic
    # prediction error.

    def map_batch(self, records: Sequence[Row], aux: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
        if not records:
            return (np.zeros((0, self.output_dim)), np.zeros(0))
        extended = extended_features(records)
        predictions = _sigmoid_batch(extended @ np.asarray(aux, dtype=float))
        targets = np.asarray(
            [self._target(r) for r in records], dtype=float
        )
        return ((predictions - targets)[:, None] * extended,
                np.ones(len(records)))

    def prefix_suffix_batch(self, elements):
        gradients, counts = elements
        return (leave_one_out(gradients), leave_one_out(counts))

    def combine_batch(self, agg, elements):
        gradients, counts = elements
        return (
            np.asarray(agg[0], dtype=float) + gradients,
            float(agg[1]) + counts,
        )

    def finalize_batch(self, aggs, aux: np.ndarray) -> np.ndarray:
        gradients, counts = aggs
        gradients = np.asarray(gradients, dtype=float)
        counts = np.asarray(counts, dtype=float).reshape(-1)
        n = counts.shape[0]
        if n == 0:
            return np.empty((0, self.output_dim))
        aux = np.asarray(aux, dtype=float)
        outputs = np.tile(aux, (n, 1))
        populated = counts > 0
        outputs[populated] = (
            aux
            - self.learning_rate * gradients[populated]
            / counts[populated][:, None]
        )
        return outputs

    def fold_batch(self, elements):
        gradients, counts = elements
        if counts.shape[0] == 0:
            return self.zero()
        return (
            sequential_sum(gradients, None),
            float(sequential_sum(counts, None)),
        )

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return domain_point(rng, self._dataset_config)

    # -- reference training / metrics ---------------------------------------

    def train(self, tables: Tables, steps: int = 30) -> np.ndarray:
        weights = self.initial_weights
        for _ in range(steps):
            step = LogisticRegressionQuery(
                self.dim, self.learning_rate, self.label_threshold, weights,
                self._dataset_config,
            )
            weights = step.output(tables)
        return weights

    def accuracy(self, tables: Tables, weights: np.ndarray) -> float:
        """Classification accuracy of a model over the points table."""
        correct = 0
        rows = tables["points"]
        for record in rows:
            x = np.append(np.asarray(record["features"]), 1.0)
            prediction = 1.0 if _sigmoid(float(x @ weights)) >= 0.5 else 0.0
            correct += prediction == self._target(record)
        return correct / len(rows)
