"""Synthetic life-science-like dataset for the ML workloads.

A Gaussian mixture over ``dim`` features with a configurable fraction
of heavy-tailed outliers, plus a linear-response column (for Linear
Regression) generated from a hidden ground-truth weight vector with
noise.  Rows are dicts like every other table in the reproduction:
``{"features": (f1, ..., fd), "label": y}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.common.rng import make_numpy_rng
from repro.core.query import Row, Tables


@dataclass(frozen=True)
class LifeScienceConfig:
    """Generator knobs.

    Attributes:
        num_records: dataset size.
        dim: feature dimension.
        num_clusters: mixture components (KMeans ground truth).
        outlier_rate: fraction of records drawn from a wide (heavy)
            component — these dominate local sensitivity.
        outlier_scale: standard-deviation multiplier for outliers.
        label_noise: sigma of the response noise for regression.
        seed: master seed.
    """

    num_records: int = 20_000
    dim: int = 4
    num_clusters: int = 3
    outlier_rate: float = 0.01
    outlier_scale: float = 6.0
    label_noise: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_records < 10:
            raise ValueError("num_records must be at least 10")
        if self.dim < 1 or self.num_clusters < 1:
            raise ValueError("dim and num_clusters must be positive")


def make_life_science_tables(config: LifeScienceConfig) -> Tables:
    """Generate the ``points`` table used by KMeans and LR.

    Returns a tables dict (like the TPC-H generator) with one table
    named ``points``.
    """
    rng = make_numpy_rng(config.seed, "life-science")
    centers = rng.uniform(-10.0, 10.0, size=(config.num_clusters, config.dim))
    true_weights = rng.uniform(-2.0, 2.0, size=config.dim + 1)  # bias last

    rows: List[Row] = []
    for _ in range(config.num_records):
        cluster = int(rng.integers(config.num_clusters))
        if rng.random() < config.outlier_rate:
            point = centers[cluster] + rng.normal(
                0.0, config.outlier_scale, size=config.dim
            )
        else:
            point = centers[cluster] + rng.normal(0.0, 1.0, size=config.dim)
        label = float(
            point @ true_weights[:-1]
            + true_weights[-1]
            + rng.normal(0.0, config.label_noise)
        )
        rows.append(
            {"features": tuple(float(v) for v in point), "label": label}
        )
    return {"points": rows}


def domain_point(rng, config: LifeScienceConfig) -> Row:
    """A fresh record from the same domain (for +1 neighbours).

    Uses plain :mod:`random` (the sampler interface passes a
    random.Random), drawing from the bounding box of the mixture.
    """
    point = [rng.uniform(-13.0, 13.0) for _ in range(config.dim)]
    label = rng.uniform(-40.0, 40.0)
    return {"features": tuple(point), "label": label}
