"""Machine-learning workloads: KMeans and Linear Regression (Table II).

The paper runs both on the "ds1.10 Life Science" dataset; we substitute
a seeded Gaussian-mixture generator with heavy-tailed outliers
(:mod:`repro.mining.datasets`) — the DP-relevant property is that
individual records influence the aggregated model update by varying,
occasionally extreme, amounts.

Both queries follow the paper's MapReduce decomposition (section III,
the LR walk-through): the Mapper computes a per-record statistic
(gradient term / cluster assignment) against the *current* model held
in aux, the Reducer sums, and ``finalize`` produces the updated model —
one synchronous update step, which is exactly the unit the paper
privatizes.  Multi-step training composes steps under the privacy
accountant (see ``examples/private_ml.py``).
"""

from repro.mining.datasets import LifeScienceConfig, make_life_science_tables
from repro.mining.kmeans import KMeansQuery
from repro.mining.linreg import LinearRegressionQuery

__all__ = [
    "KMeansQuery",
    "LifeScienceConfig",
    "LinearRegressionQuery",
    "make_life_science_tables",
]
