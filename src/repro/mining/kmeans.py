"""KMeans as a UPA MapReduceQuery.

One Lloyd iteration from fixed initial centers (held in aux):

* Mapper: per record, a one-hot (per-cluster count, per-cluster
  coordinate sums) pair for its nearest center.
* Reducer: elementwise sum.
* finalize: new centers = sums / counts (empty clusters keep their old
  center), flattened into a ``k * dim`` output vector.

The per-record influence on the output is bounded but uneven — records
far from their center move it most — giving the near-normal
neighbour-output distribution the paper reports for KMeans (its Fig. 3
notes the KMeans distribution is nearly identical to LR's).
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import leave_one_out, sequential_sum
from repro.core.query import MapReduceQuery, Row, Tables
from repro.mining.datasets import LifeScienceConfig, domain_point


class KMeansQuery(MapReduceQuery):
    """One Lloyd update step over the ``points`` table."""

    name = "kmeans"
    protected_table = "points"
    query_type = "ml"
    flex_supported = False
    # build_aux's deterministic center init scans the points table; the
    # output stays linear in records (each contributes to one cluster),
    # see the build_aux comment.  Acknowledged for upalint's UPA005.
    aux_reads_protected = True

    def __init__(
        self,
        num_clusters: int = 3,
        dim: int = 4,
        initial_centers: Optional[np.ndarray] = None,
        dataset_config: Optional[LifeScienceConfig] = None,
    ):
        self.num_clusters = num_clusters
        self.dim = dim
        if initial_centers is not None:
            initial_centers = np.asarray(initial_centers, dtype=float)
            if initial_centers.shape != (num_clusters, dim):
                raise ValueError(
                    f"initial_centers must have shape ({num_clusters}, {dim}), "
                    f"got {initial_centers.shape}"
                )
        self.initial_centers = initial_centers
        self.output_dim = num_clusters * dim
        self._dataset_config = dataset_config or LifeScienceConfig(
            dim=dim, num_clusters=num_clusters
        )

    # -- monoid ------------------------------------------------------------

    def build_aux(self, tables: Tables) -> np.ndarray:
        if self.initial_centers is not None:
            return self.initial_centers
        # Deterministic data-dependent init: the first k distinct points.
        # Every center then owns a dense neighbourhood, so per-record
        # influence is small and near-normal (the paper observes the
        # KMeans neighbour-output distribution matches LR's).
        centers: list = []
        for record in tables[self.protected_table]:
            point = np.asarray(record["features"], dtype=float)
            if not any(np.allclose(point, c) for c in centers):
                centers.append(point)
            if len(centers) == self.num_clusters:
                break
        if len(centers) < self.num_clusters:
            raise ValueError(
                f"dataset has fewer than {self.num_clusters} distinct points"
            )
        return np.vstack(centers)

    def map_record(self, record: Row, aux: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        point = np.asarray(record["features"], dtype=float)
        distances = np.linalg.norm(aux - point, axis=1)
        nearest = int(np.argmin(distances))
        counts = np.zeros(self.num_clusters)
        counts[nearest] = 1.0
        sums = np.zeros((self.num_clusters, self.dim))
        sums[nearest] = point
        return (counts, sums)

    def zero(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.zeros(self.num_clusters),
            np.zeros((self.num_clusters, self.dim)),
        )

    def combine(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, agg, aux: np.ndarray) -> np.ndarray:
        counts, sums = agg
        centers = aux.copy()
        for k in range(self.num_clusters):
            if counts[k] > 0:
                centers[k] = sums[k] / counts[k]
        return centers.reshape(-1)

    # -- batched kernels -----------------------------------------------------
    # Batch layout: (counts (n, k), sums (n, k, dim)).

    def map_batch(self, records: Sequence[Row], aux: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(records)
        counts = np.zeros((n, self.num_clusters))
        sums = np.zeros((n, self.num_clusters, self.dim))
        if n == 0:
            return (counts, sums)
        points = np.asarray([r["features"] for r in records], dtype=float)
        diffs = points[:, None, :] - np.asarray(aux, dtype=float)[None, :, :]
        distances = np.sqrt(np.sum(diffs * diffs, axis=-1))
        nearest = np.argmin(distances, axis=1)
        rows = np.arange(n)
        counts[rows, nearest] = 1.0
        sums[rows, nearest] = points
        return (counts, sums)

    def prefix_suffix_batch(self, elements):
        counts, sums = elements
        return (leave_one_out(counts), leave_one_out(sums))

    def combine_batch(self, agg, elements):
        counts, sums = elements
        return (
            np.asarray(agg[0], dtype=float) + counts,
            np.asarray(agg[1], dtype=float) + sums,
        )

    def finalize_batch(self, aggs, aux: np.ndarray) -> np.ndarray:
        counts, sums = aggs
        counts = np.asarray(counts, dtype=float)
        sums = np.asarray(sums, dtype=float)
        n = counts.shape[0]
        if n == 0:
            return np.empty((0, self.output_dim))
        centers = np.broadcast_to(
            np.asarray(aux, dtype=float), (n, self.num_clusters, self.dim)
        ).copy()
        occupied = counts > 0
        centers[occupied] = sums[occupied] / counts[occupied][:, None]
        return centers.reshape(n, -1)

    def fold_batch(self, elements):
        counts, sums = elements
        if counts.shape[0] == 0:
            return self.zero()
        return (sequential_sum(counts, None), sequential_sum(sums, None))

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return domain_point(rng, self._dataset_config)

    # -- convenience: full clustering loop ----------------------------------

    def fit(self, tables: Tables, iterations: int = 10) -> np.ndarray:
        """Plain Lloyd iterations (reference/testing); returns centers."""
        centers = self.build_aux(tables)
        for _ in range(iterations):
            step = KMeansQuery(
                self.num_clusters, self.dim, centers, self._dataset_config
            )
            centers = step.output(tables).reshape(self.num_clusters, self.dim)
        return centers

    @staticmethod
    def inertia(tables: Tables, centers: np.ndarray) -> float:
        """Sum of squared distances to nearest centers (utility metric)."""
        total = 0.0
        for record in tables["points"]:
            point = np.asarray(record["features"], dtype=float)
            total += float(np.min(np.sum((centers - point) ** 2, axis=1)))
        return total
