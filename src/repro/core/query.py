"""The query abstraction UPA operates on.

The paper (section II-C) observes that MapReduce queries are built from
*commutative and associative* operators: a Mapper applied per record and
a Reducer that merges partial results in any grouping/order.  Formally
the reducer is a commutative monoid; this module captures exactly that:

    f(x) = finalize( fold(combine, zero, [map_record(r) for r in x]) )

Every workload in the reproduction (seven TPC-H queries, KMeans,
Linear Regression) implements :class:`MapReduceQuery`.  The decomposition
is what lets UPA reuse ``R(M(S'))`` across all sampled neighbouring
datasets — the core efficiency claim — and what lets the brute-force
baseline compute exact local sensitivity in O(N) via prefix/suffix
folds instead of O(N^2).

A query names a **protected table**: the table whose records the
adversary may add/remove (neighbouring datasets differ by one record of
this table).  Auxiliary tables are fixed; ``build_aux`` precomputes
whatever lookup structures the mapper needs from them.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.errors import QueryShapeError

Row = Dict[str, Any]
Tables = Dict[str, List[Row]]

#: the batched-protocol methods a query may override with vectorized
#: kernels.  ``overrides_batch_kernels`` and the upalint purity pass
#: both key off this tuple.
BATCH_METHODS = (
    "map_batch",
    "prefix_suffix_batch",
    "combine_batch",
    "finalize_batch",
    "fold_batch",
)


def overrides_batch_kernels(query_or_cls: Any) -> bool:
    """True when the class overrides any batched-protocol method.

    Used by ``validate_monoid`` (to decide whether the batch kernels
    need a cross-check against the scalar monoid) and by the static
    analyzer.
    """
    cls = query_or_cls if isinstance(query_or_cls, type) else type(query_or_cls)
    return any(
        getattr(cls, name) is not getattr(MapReduceQuery, name)
        for name in BATCH_METHODS
    )


class QueryOutput:
    """Normalizes query outputs to float vectors.

    Scalar queries have ``dim == 1``; ML queries return model vectors.
    """

    @staticmethod
    def as_vector(value: Any) -> np.ndarray:
        if np.isscalar(value):
            return np.asarray([float(value)], dtype=float)
        return np.asarray(value, dtype=float).reshape(-1)

    @staticmethod
    def as_scalar(vector: np.ndarray) -> float:
        vector = np.asarray(vector).reshape(-1)
        if vector.shape[0] != 1:
            raise QueryShapeError(
                f"expected scalar output, got vector of dim {vector.shape[0]}"
            )
        return float(vector[0])


class MapReduceQuery:
    """A query decomposed into Mapper + commutative/associative Reducer.

    Subclasses must set :attr:`name`, :attr:`protected_table` and
    :attr:`output_dim`, and implement the monoid methods.  The monoid
    element type is subclass-defined (numbers, tuples, numpy arrays...)
    but must never be mutated in place by :meth:`combine` unless the
    left argument is owned by the caller chain (UPA reuses elements).
    """

    #: human-readable query id, e.g. "tpch1".
    name: str = ""
    #: table whose records are protected (neighbours differ here).
    protected_table: str = ""
    #: dimension of the finalized output vector.
    output_dim: int = 1
    #: declare True when build_aux legitimately reads the protected
    #: table (the query's semantics must stay linear in it — document
    #: why).  The static analyzer (repro.staticcheck) downgrades its
    #: UPA005 finding to info for declared queries.
    aux_reads_protected: bool = False

    @property
    def incremental_safe(self) -> bool:
        """Whether mapped elements may be cached across appends.

        The incremental session path (``UPASession.append``) reuses
        ``map_record`` outputs from earlier releases.  That is sound
        only when aux — the other mapper input — is unchanged by a data
        change, i.e. when ``build_aux`` never reads the protected
        table.  Queries declaring ``aux_reads_protected`` still work
        with ``append`` but are re-mapped in full every release.  The
        monoid-purity preconditions (no captured mutable state in
        ``map``/``combine``) are checked statically by upalint's UPA015.
        """
        return not self.aux_reads_protected

    # ------------------------------------------------------------------
    # Monoid interface
    # ------------------------------------------------------------------

    def build_aux(self, tables: Tables) -> Any:
        """Precompute lookup structures from the non-protected tables.

        Must not read the protected table unless the query's semantics
        are still linear in it (document any such use).
        """
        return None

    def map_record(self, record: Row, aux: Any) -> Any:
        """Mapper: one protected record -> monoid element."""
        raise NotImplementedError

    def zero(self) -> Any:
        """Monoid identity."""
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Any:
        """Monoid operation; must be commutative and associative."""
        raise NotImplementedError

    def finalize(self, agg: Any, aux: Any) -> np.ndarray:
        """Turn the folded aggregate into the query's output vector."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batched monoid protocol
    # ------------------------------------------------------------------
    #
    # The session's union-preserving reduce evaluates ~2n sampled
    # neighbouring datasets per run; one Python-level combine+finalize
    # per neighbour makes interpreter dispatch the dominant cost.  The
    # batched protocol lets a query process *all* neighbours with a
    # handful of array operations instead.
    #
    # A **batch** is an opaque, ordered collection of monoid elements
    # (or aggregates — same representation).  The canonical layouts are:
    #
    # * a plain list of scalar elements (the generic default);
    # * a stacked ndarray with the batch on axis 0 (scalar-sum queries:
    #   shape ``(n,)``);
    # * a tuple of stacked ndarrays, one per slot of a tuple element
    #   (KMeans: ``(counts (n, k), sums (n, k, dim))``).
    #
    # The structural helpers (batch_length/batch_select/iter_batch/
    # batch_stack) understand all three layouts, so a subclass normally
    # overrides only the kernels in ``BATCH_METHODS``.  Every default
    # below loops over the scalar methods, so existing queries keep
    # working unchanged; overridden kernels must return values
    # ``allclose`` to the scalar path (guarded by ``validate_monoid``
    # and upalint's UPA010).

    def map_batch(self, records: Sequence[Row], aux: Any) -> Any:
        """Mapper over a record sequence -> batch of monoid elements."""
        return [self.map_record(record, aux) for record in records]

    def prefix_suffix_batch(self, elements: Any) -> Any:
        """Leave-one-out aggregates via prefix/suffix folds.

        Returns a batch of n aggregates where the i-th aggregate folds
        every element except the i-th — the reduce-side core of both
        removal-neighbour evaluation and brute-force sensitivity.
        """
        items = list(self.iter_batch(elements))
        prefix = [self.zero()]
        for element in items:
            prefix.append(self.combine(prefix[-1], element))
        suffix = [self.zero()]
        for element in reversed(items):
            suffix.append(self.combine(element, suffix[-1]))
        suffix.reverse()
        return self.batch_stack(
            [
                self.combine(prefix[i], suffix[i + 1])
                for i in range(len(items))
            ]
        )

    def combine_batch(self, agg: Any, elements: Any) -> Any:
        """Broadcasted combine: ``agg (+) e`` for every batch element."""
        return self.batch_stack(
            [self.combine(agg, element) for element in self.iter_batch(elements)]
        )

    def finalize_batch(self, aggs: Any, aux: Any) -> np.ndarray:
        """Finalize a batch of aggregates into a (k, output_dim) array."""
        rows = [self.finalize(agg, aux) for agg in self.iter_batch(aggs)]
        if not rows:
            return np.empty((0, self.output_dim))
        return np.vstack(rows)

    def fold_batch(self, elements: Any) -> Any:
        """Fold a whole batch into one aggregate."""
        return self.fold(self.iter_batch(elements))

    # -- structural batch helpers (layout-aware, rarely overridden) ----

    def batch_length(self, elements: Any) -> int:
        """Number of elements in a batch."""
        if isinstance(elements, tuple):
            return len(elements[0]) if elements else 0
        return len(elements)

    def batch_select(self, elements: Any, indices: Sequence[int]) -> Any:
        """Sub-batch at ``indices`` (order preserved, same layout)."""
        if isinstance(elements, tuple):
            return tuple(self._select_part(part, indices) for part in elements)
        return self._select_part(elements, indices)

    @staticmethod
    def _select_part(part: Any, indices: Sequence[int]) -> Any:
        if isinstance(part, np.ndarray):
            return part[np.asarray(indices, dtype=int)]
        return [part[i] for i in indices]

    def iter_batch(self, elements: Any) -> Iterable[Any]:
        """Yield the scalar monoid elements of a batch, in order."""
        if isinstance(elements, tuple):
            n = self.batch_length(elements)
            return (tuple(part[i] for part in elements) for i in range(n))
        return iter(elements)

    def batch_stack(self, aggs: List[Any]) -> Any:
        """Stack driver-side elements/aggregates into a batch.

        Inverse of :meth:`iter_batch` for the canonical layouts; exotic
        element types fall back to a plain list (a query overriding the
        vectorized kernels for such a type should override this too).
        """
        if not aggs:
            return aggs
        first = aggs[0]
        if isinstance(first, tuple):
            return tuple(
                np.stack([np.asarray(agg[j], dtype=float) for agg in aggs])
                for j in range(len(first))
            )
        if isinstance(first, np.ndarray) or np.isscalar(first):
            return np.stack([np.asarray(agg, dtype=float) for agg in aggs])
        return list(aggs)

    # ------------------------------------------------------------------
    # Neighbour-record sampling ("records in D but not in x")
    # ------------------------------------------------------------------

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        """A plausible new record of the protected table (for +1 neighbours)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Driver-side helpers (used by baselines and tests)
    # ------------------------------------------------------------------

    def fold(self, elements: Iterable[Any]) -> Any:
        acc = self.zero()
        for element in elements:
            acc = self.combine(acc, element)
        return acc

    def output(self, tables: Tables) -> np.ndarray:
        """Evaluate f(x) entirely on the driver (reference semantics)."""
        aux = self.build_aux(tables)
        agg = self.fold(
            self.map_record(r, aux) for r in tables[self.protected_table]
        )
        return self.finalize(agg, aux)

    def output_without(self, tables: Tables, index: int) -> np.ndarray:
        """f(x - record_i): reference implementation for tests."""
        aux = self.build_aux(tables)
        records = tables[self.protected_table]
        agg = self.fold(
            self.map_record(r, aux)
            for i, r in enumerate(records)
            if i != index
        )
        return self.finalize(agg, aux)

    def validate_monoid(self, tables: Tables, sample: int = 16,
                        seed: int = 0) -> None:
        """Assert commutativity/associativity on sampled elements.

        Cheap sanity check used by tests and by UPASession in strict
        mode: folds a sample of mapped records in shuffled orders and
        groupings and compares results.
        """
        aux = self.build_aux(tables)
        records = tables[self.protected_table]
        rng = random.Random(seed)
        chosen = records if len(records) <= sample else rng.sample(records, sample)
        elements = [self.map_record(r, aux) for r in chosen]
        baseline = self.finalize(self.fold(elements), aux)
        shuffled = list(elements)
        rng.shuffle(shuffled)
        commuted = self.finalize(self.fold(shuffled), aux)
        if not np.allclose(baseline, commuted):
            raise QueryShapeError(
                f"query {self.name!r}: reducer is not commutative"
            )
        if len(elements) >= 2:
            split = rng.randrange(1, len(elements))
            left = self.fold(elements[:split])
            right = self.fold(elements[split:])
            associated = self.finalize(self.combine(left, right), aux)
            if not np.allclose(baseline, associated):
                raise QueryShapeError(
                    f"query {self.name!r}: reducer is not associative"
                )
        if overrides_batch_kernels(self):
            self._validate_batch_kernels(chosen, aux)

    def _validate_batch_kernels(self, records: List[Row], aux: Any) -> None:
        """Cross-check overridden batch kernels against the scalar path.

        The scalar reference is the base-class default implementation
        (which loops over map_record/combine/finalize), so a subclass
        kernel that diverges from its own scalar monoid is caught here
        even when both are internally consistent.
        """
        base = MapReduceQuery
        batch = self.map_batch(records, aux)
        ref_batch = base.map_batch(self, records, aux)
        n = self.batch_length(batch)
        if n != len(ref_batch):
            raise QueryShapeError(
                f"query {self.name!r}: map_batch returned {n} elements "
                f"for {len(ref_batch)} records"
            )
        total = self.finalize(self.fold_batch(batch), aux)
        ref_total = self.finalize(base.fold_batch(self, ref_batch), aux)
        if not np.allclose(total, ref_total):
            raise QueryShapeError(
                f"query {self.name!r}: map_batch/fold_batch disagree "
                "with the scalar map_record/fold path"
            )
        loo = self.finalize_batch(
            self.combine_batch(self.zero(), self.prefix_suffix_batch(batch)),
            aux,
        )
        ref_loo = base.finalize_batch(
            self,
            base.combine_batch(
                self, self.zero(), base.prefix_suffix_batch(self, ref_batch)
            ),
            aux,
        )
        if loo.shape != ref_loo.shape or not np.allclose(loo, ref_loo):
            raise QueryShapeError(
                f"query {self.name!r}: batched neighbour kernels "
                "(prefix_suffix_batch/combine_batch/finalize_batch) "
                "disagree with the scalar prefix/suffix fold path"
            )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"protected={self.protected_table!r} dim={self.output_dim}>"
        )
