"""The query abstraction UPA operates on.

The paper (section II-C) observes that MapReduce queries are built from
*commutative and associative* operators: a Mapper applied per record and
a Reducer that merges partial results in any grouping/order.  Formally
the reducer is a commutative monoid; this module captures exactly that:

    f(x) = finalize( fold(combine, zero, [map_record(r) for r in x]) )

Every workload in the reproduction (seven TPC-H queries, KMeans,
Linear Regression) implements :class:`MapReduceQuery`.  The decomposition
is what lets UPA reuse ``R(M(S'))`` across all sampled neighbouring
datasets — the core efficiency claim — and what lets the brute-force
baseline compute exact local sensitivity in O(N) via prefix/suffix
folds instead of O(N^2).

A query names a **protected table**: the table whose records the
adversary may add/remove (neighbouring datasets differ by one record of
this table).  Auxiliary tables are fixed; ``build_aux`` precomputes
whatever lookup structures the mapper needs from them.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.errors import QueryShapeError

Row = Dict[str, Any]
Tables = Dict[str, List[Row]]


class QueryOutput:
    """Normalizes query outputs to float vectors.

    Scalar queries have ``dim == 1``; ML queries return model vectors.
    """

    @staticmethod
    def as_vector(value: Any) -> np.ndarray:
        if np.isscalar(value):
            return np.asarray([float(value)], dtype=float)
        return np.asarray(value, dtype=float).reshape(-1)

    @staticmethod
    def as_scalar(vector: np.ndarray) -> float:
        vector = np.asarray(vector).reshape(-1)
        if vector.shape[0] != 1:
            raise QueryShapeError(
                f"expected scalar output, got vector of dim {vector.shape[0]}"
            )
        return float(vector[0])


class MapReduceQuery:
    """A query decomposed into Mapper + commutative/associative Reducer.

    Subclasses must set :attr:`name`, :attr:`protected_table` and
    :attr:`output_dim`, and implement the monoid methods.  The monoid
    element type is subclass-defined (numbers, tuples, numpy arrays...)
    but must never be mutated in place by :meth:`combine` unless the
    left argument is owned by the caller chain (UPA reuses elements).
    """

    #: human-readable query id, e.g. "tpch1".
    name: str = ""
    #: table whose records are protected (neighbours differ here).
    protected_table: str = ""
    #: dimension of the finalized output vector.
    output_dim: int = 1
    #: declare True when build_aux legitimately reads the protected
    #: table (the query's semantics must stay linear in it — document
    #: why).  The static analyzer (repro.staticcheck) downgrades its
    #: UPA005 finding to info for declared queries.
    aux_reads_protected: bool = False

    # ------------------------------------------------------------------
    # Monoid interface
    # ------------------------------------------------------------------

    def build_aux(self, tables: Tables) -> Any:
        """Precompute lookup structures from the non-protected tables.

        Must not read the protected table unless the query's semantics
        are still linear in it (document any such use).
        """
        return None

    def map_record(self, record: Row, aux: Any) -> Any:
        """Mapper: one protected record -> monoid element."""
        raise NotImplementedError

    def zero(self) -> Any:
        """Monoid identity."""
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Any:
        """Monoid operation; must be commutative and associative."""
        raise NotImplementedError

    def finalize(self, agg: Any, aux: Any) -> np.ndarray:
        """Turn the folded aggregate into the query's output vector."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Neighbour-record sampling ("records in D but not in x")
    # ------------------------------------------------------------------

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        """A plausible new record of the protected table (for +1 neighbours)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Driver-side helpers (used by baselines and tests)
    # ------------------------------------------------------------------

    def fold(self, elements: Iterable[Any]) -> Any:
        acc = self.zero()
        for element in elements:
            acc = self.combine(acc, element)
        return acc

    def output(self, tables: Tables) -> np.ndarray:
        """Evaluate f(x) entirely on the driver (reference semantics)."""
        aux = self.build_aux(tables)
        agg = self.fold(
            self.map_record(r, aux) for r in tables[self.protected_table]
        )
        return self.finalize(agg, aux)

    def output_without(self, tables: Tables, index: int) -> np.ndarray:
        """f(x - record_i): reference implementation for tests."""
        aux = self.build_aux(tables)
        records = tables[self.protected_table]
        agg = self.fold(
            self.map_record(r, aux)
            for i, r in enumerate(records)
            if i != index
        )
        return self.finalize(agg, aux)

    def validate_monoid(self, tables: Tables, sample: int = 16,
                        seed: int = 0) -> None:
        """Assert commutativity/associativity on sampled elements.

        Cheap sanity check used by tests and by UPASession in strict
        mode: folds a sample of mapped records in shuffled orders and
        groupings and compares results.
        """
        aux = self.build_aux(tables)
        records = tables[self.protected_table]
        rng = random.Random(seed)
        chosen = records if len(records) <= sample else rng.sample(records, sample)
        elements = [self.map_record(r, aux) for r in chosen]
        baseline = self.finalize(self.fold(elements), aux)
        shuffled = list(elements)
        rng.shuffle(shuffled)
        commuted = self.finalize(self.fold(shuffled), aux)
        if not np.allclose(baseline, commuted):
            raise QueryShapeError(
                f"query {self.name!r}: reducer is not commutative"
            )
        if len(elements) >= 2:
            split = rng.randrange(1, len(elements))
            left = self.fold(elements[:split])
            right = self.fold(elements[split:])
            associated = self.finalize(self.combine(left, right), aux)
            if not np.allclose(baseline, associated):
                raise QueryShapeError(
                    f"query {self.name!r}: reducer is not associative"
                )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"protected={self.protected_table!r} dim={self.output_dim}>"
        )
