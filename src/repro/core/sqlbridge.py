"""SQL-to-UPA bridge: compile a SQL plan into a MapReduceQuery.

The paper's pitch is that analysts submit *unmodified* queries.  The
hand-written TPC-H workloads show the Mapper/Reducer decomposition; this
module derives it **automatically** for any counting/sum SQL plan that
is *linear* in the chosen protected table — i.e. every result row's
existence and value depend on at most one protected record (provenance
is single-rooted).

The compiler splits the logical plan at the protected table:

* subtrees that never read the protected table are **static** — they
  are evaluated once (through the ordinary SQL executor) and, where a
  join needs them, turned into hash indexes on the join key;
* the path from the protected table's scan to the aggregate is
  **dynamic** — it is compiled into a small interpreter that, given one
  protected record, produces that record's joined/filtered rows in
  O(matches) and folds them with the aggregate.

``contribution(record) = aggregate(dynamic_rows([record]))`` is then a
valid Mapper for UPA, and the reducer is scalar addition — exactly the
monoid UPA's reuse requires.  Non-linear shapes (self-joins on the
protected table, EXISTS over it, GROUP BY, DISTINCT, AVG/MIN/MAX) are
rejected with :class:`repro.common.errors.QueryShapeError`.

Example:
    >>> from repro.core.sqlbridge import compile_sql
    >>> import random
    >>> tables = {"t": [{"v": 1}, {"v": 2}, {"v": 3}]}
    >>> query = compile_sql(
    ...     "SELECT COUNT(*) AS n FROM t WHERE v > 1", tables, "t",
    ...     domain_sampler=lambda rng, tbls: {"v": rng.randrange(5)},
    ... )
    >>> float(query.output(tables)[0])
    2.0
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict, defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryShapeError
from repro.core.batch import ScalarSumBatch
from repro.core.query import MapReduceQuery, Row, Tables
from repro.engine.metrics import MetricsRegistry
from repro.sql.compiler import (
    compile_expression,
    compile_key,
    compile_predicate,
    compile_projection,
    plan_fingerprint,
)
from repro.sql.expr import Expression
from repro.sql.functions import AggregateSpec
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)

DomainSampler = Callable[[random.Random, Tables], Row]


# ---------------------------------------------------------------------------
# Dynamic-path interpreter nodes
# ---------------------------------------------------------------------------


class _DynamicNode:
    """A plan fragment evaluated per protected record."""

    def rows(self, inputs: List[Row]) -> List[Row]:
        raise NotImplementedError


class _DynScan(_DynamicNode):
    """The protected table's scan: passes the probe record(s) through."""

    def rows(self, inputs: List[Row]) -> List[Row]:
        return inputs


class _DynFilter(_DynamicNode):
    def __init__(self, child: _DynamicNode, condition: Expression):
        self._child = child
        self._condition = compile_predicate(condition)

    def rows(self, inputs: List[Row]) -> List[Row]:
        return list(filter(self._condition, self._child.rows(inputs)))


class _DynProject(_DynamicNode):
    def __init__(self, child: _DynamicNode, exprs: Sequence[Expression]):
        self._child = child
        self._project = compile_projection(exprs)

    def rows(self, inputs: List[Row]) -> List[Row]:
        return list(map(self._project, self._child.rows(inputs)))


class _StaticIndex:
    """Hash index of a pre-materialized static relation on its join key."""

    def __init__(self, rows: List[Row], key_exprs: Sequence[Expression]):
        key_of = compile_key(key_exprs)
        self.buckets: Dict[Tuple, List[Row]] = defaultdict(list)
        for row in rows:
            self.buckets[key_of(row)].append(row)

    def probe(self, key: Tuple) -> List[Row]:
        return self.buckets.get(key, [])


class _DynJoinStatic(_DynamicNode):
    """Inner equi-join of the dynamic side against an indexed static side."""

    def __init__(
        self,
        child: _DynamicNode,
        child_keys: Sequence[Expression],
        index: _StaticIndex,
        residual: Optional[Expression],
        residual_prefix: str,
        dynamic_is_left: bool,
    ):
        self._child = child
        self._key_of = compile_key(child_keys)
        self._index = index
        self._residual = (
            compile_predicate(residual) if residual is not None else None
        )
        self._prefix = residual_prefix
        self._dynamic_is_left = dynamic_is_left

    def rows(self, inputs: List[Row]) -> List[Row]:
        out: List[Row] = []
        residual = self._residual
        for row in self._child.rows(inputs):
            for match in self._index.probe(self._key_of(row)):
                if self._dynamic_is_left:
                    merged = dict(row)
                    merged.update(match)
                else:
                    merged = dict(match)
                    merged.update(row)
                if residual is not None and not residual(merged):
                    continue
                out.append(merged)
        return out


class _DynSemiAnti(_DynamicNode):
    """Semi/anti join of the dynamic side against an indexed static side."""

    def __init__(
        self,
        child: _DynamicNode,
        child_keys: Sequence[Expression],
        index: _StaticIndex,
        want_match: bool,
        residual: Optional[Expression],
        prefix: str,
    ):
        self._child = child
        self._key_of = compile_key(child_keys)
        self._index = index
        self._want_match = want_match
        self._residual = (
            compile_predicate(residual) if residual is not None else None
        )
        self._prefix = prefix

    def _matches(self, row: Row) -> bool:
        candidates = self._index.probe(self._key_of(row))
        if self._residual is None:
            return bool(candidates)
        for candidate in candidates:
            merged = dict(row)
            for name, value in candidate.items():
                merged[self._prefix + name] = value
            if self._residual(merged):
                return True
        return False

    def rows(self, inputs: List[Row]) -> List[Row]:
        return [
            row for row in self._child.rows(inputs)
            if self._matches(row) == self._want_match
        ]


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


def _reads_protected(plan: LogicalPlan, protected: str) -> bool:
    return any(
        isinstance(node, Scan) and node.table_name == protected
        for node in plan.walk()
    )


class _Compiler:
    def __init__(self, tables: Tables, protected: str):
        self.tables = tables
        self.protected = protected
        # A throwaway SQL session evaluates the static subtrees with the
        # ordinary (tested) executor.  Broadcast joins are disabled:
        # the shuffle join's deterministic grouping fixes static row
        # order, and :class:`_StaticIndex` bucket order decides float
        # summation order — bitwise golden outputs depend on it.
        from repro.sql.session import SQLSession

        self._session = SQLSession(broadcast_join_threshold=0)
        for name, rows in tables.items():
            self._session.create_table(name, rows)

    def static_rows(self, plan: LogicalPlan) -> List[Row]:
        return self._session.execute_plan(plan).collect()

    def compile(self, plan: LogicalPlan) -> _DynamicNode:
        """Compile the dynamic path rooted at ``plan``."""
        if isinstance(plan, Scan):
            if plan.table_name != self.protected:
                raise QueryShapeError(
                    f"internal: static scan {plan.table_name!r} reached the "
                    "dynamic compiler"
                )
            return _DynScan()
        if isinstance(plan, Filter):
            return _DynFilter(self.compile(plan.child), plan.condition)
        if isinstance(plan, Project):
            return _DynProject(self.compile(plan.child), plan.exprs)
        if isinstance(plan, Join):
            return self._compile_join(plan)
        if isinstance(plan, (Distinct, Sort, Limit)):
            raise QueryShapeError(
                f"{type(plan).__name__} over the protected table is not "
                "linear in individual records"
            )
        raise QueryShapeError(
            f"cannot compile operator {type(plan).__name__} on the "
            "protected path"
        )

    def _compile_join(self, plan: Join) -> _DynamicNode:
        left_dyn = _reads_protected(plan.left, self.protected)
        right_dyn = _reads_protected(plan.right, self.protected)
        if left_dyn and right_dyn:
            raise QueryShapeError(
                "the protected table appears on both sides of a join "
                "(self-join): the query is not linear in its records"
            )
        if not left_dyn and not right_dyn:
            raise QueryShapeError(
                "internal: fully static join reached the dynamic compiler"
            )

        if plan.how in ("semi", "anti"):
            if right_dyn:
                raise QueryShapeError(
                    "EXISTS/IN over the protected table is not linear: one "
                    "record can change the membership of many result rows"
                )
            child = self.compile(plan.left)
            child_keys = [lk for lk, _rk in plan.keys]
            static_keys = [rk for _lk, rk in plan.keys]
            index = _StaticIndex(self.static_rows(plan.right), static_keys)
            return _DynSemiAnti(
                child, child_keys, index,
                want_match=(plan.how == "semi"),
                residual=plan.residual,
                prefix=Join.RESIDUAL_RIGHT_PREFIX,
            )

        if plan.how == "left" and right_dyn:
            raise QueryShapeError(
                "LEFT JOIN with the protected table on the right is not "
                "linear: adding a record flips NULL-extended rows"
            )
        if plan.how == "left" and left_dyn:
            raise QueryShapeError(
                "LEFT JOIN on the protected path is not supported by the "
                "bridge (NULL-extension mixes static and dynamic rows)"
            )

        if left_dyn:
            child = self.compile(plan.left)
            child_keys = [lk for lk, _rk in plan.keys]
            static_side, static_keys = plan.right, [rk for _lk, rk in plan.keys]
        else:
            child = self.compile(plan.right)
            child_keys = [rk for _lk, rk in plan.keys]
            static_side, static_keys = plan.left, [lk for lk, _rk in plan.keys]
        index = _StaticIndex(self.static_rows(static_side), static_keys)
        return _DynJoinStatic(
            child, child_keys, index,
            residual=plan.residual,
            residual_prefix=Join.RESIDUAL_RIGHT_PREFIX,
            dynamic_is_left=left_dyn,
        )


def _find_aggregate(plan: LogicalPlan) -> Tuple[Aggregate, LogicalPlan]:
    node = plan
    while isinstance(node, (Project, Sort, Limit)):
        node = node.children()[0]
    if not isinstance(node, Aggregate):
        raise QueryShapeError(
            "the bridge compiles aggregate queries; no global aggregate found"
        )
    if node.group_exprs:
        raise QueryShapeError("GROUP BY output is not a scalar query")
    if len(node.aggregates) != 1:
        raise QueryShapeError("exactly one aggregate is required")
    spec = node.aggregates[0]
    if spec.func not in ("count", "sum"):
        raise QueryShapeError(
            f"{spec.func.upper()} is not linear in individual records; "
            "only COUNT and SUM are supported"
        )
    return node, node.child


class CompiledSQLQuery(ScalarSumBatch, MapReduceQuery):
    """A MapReduceQuery derived from a SQL plan by provenance analysis.

    The compiled static structures are built from the tables given at
    compile time; neighbouring datasets may vary the *protected* table
    freely (that is the whole point), but the other tables are fixed —
    the same assumption every hand-written workload makes.  COUNT/SUM
    reducers are scalar addition, so the vectorized batch kernels come
    from :class:`~repro.core.batch.ScalarSumBatch`.
    """

    output_dim = 1

    def __init__(
        self,
        name: str,
        protected_table: str,
        dynamic: _DynamicNode,
        spec: AggregateSpec,
        domain_sampler: Optional[DomainSampler],
    ):
        self.name = name
        self.protected_table = protected_table
        self._dynamic = dynamic
        self._spec = spec
        self._value_fn = (
            compile_expression(spec.expr) if spec.expr is not None else None
        )
        self._domain_sampler = domain_sampler

    # -- monoid -------------------------------------------------------------

    def build_aux(self, tables: Tables) -> Any:
        return None

    def contribution(self, record: Row) -> float:
        rows = self._dynamic.rows([record])
        value_fn = self._value_fn
        if self._spec.func == "count":
            if value_fn is None:
                return float(len(rows))
            return float(
                sum(1 for row in rows if value_fn(row) is not None)
            )
        total = 0.0
        for row in rows:
            value = value_fn(row)  # type: ignore[misc]
            if value is not None:
                total += value
        return total

    def map_record(self, record: Row, aux: Any) -> float:
        return self.contribution(record)

    def zero(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        return np.asarray([float(agg)], dtype=float)

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        if self._domain_sampler is None:
            raise QueryShapeError(
                f"query {self.name!r} has no domain sampler; pass "
                "domain_sampler= to compile_plan/compile_sql to enable "
                "'+1 record' neighbours"
            )
        return self._domain_sampler(rng, tables)


# ---------------------------------------------------------------------------
# Bridge compile cache
# ---------------------------------------------------------------------------
#
# A UPA run replays one compiled query over ~2n neighbours, but callers
# (sessions, baselines, comparisons) routinely re-invoke compile_sql /
# compile_plan for the same plan against the same tables.  The expensive
# parts — static subtree execution and index construction — depend only
# on the plan shape and the *non-protected* tables, so those are cached
# here keyed by the canonical plan fingerprint.  Entries hold strong
# references to the static row lists and hits require object identity,
# so a recycled id() can never alias a stale entry; mutating a static
# table in place is outside the bridge's contract (non-protected tables
# are fixed, the same assumption every hand-written workload makes).

_BRIDGE_CACHE_SIZE = 64
_bridge_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_bridge_lock = threading.Lock()


def clear_bridge_cache() -> None:
    with _bridge_lock:
        _bridge_cache.clear()


def _compile_dynamic(
    plan_child: LogicalPlan,
    tables: Tables,
    protected_table: str,
    engine=None,
) -> _DynamicNode:
    fingerprint = plan_fingerprint(plan_child)
    static_names = tuple(
        sorted(name for name in tables if name != protected_table)
    )
    cacheable = "(opaque" not in fingerprint
    metrics = engine.metrics if engine is not None else None
    if cacheable:
        key = (fingerprint, protected_table, static_names)
        with _bridge_lock:
            entry = _bridge_cache.get(key)
        if entry is not None:
            dynamic, static_rows = entry
            if all(tables[n] is static_rows[n] for n in static_names):
                if metrics is not None:
                    metrics.incr(MetricsRegistry.SQL_PLAN_CACHE_HITS)
                return dynamic
        if metrics is not None:
            metrics.incr(MetricsRegistry.SQL_PLAN_CACHE_MISSES)
    compiler = _Compiler(tables, protected_table)
    dynamic = compiler.compile(plan_child)
    if cacheable:
        with _bridge_lock:
            _bridge_cache[key] = (
                dynamic,
                {n: tables[n] for n in static_names},
            )
            while len(_bridge_cache) > _BRIDGE_CACHE_SIZE:
                _bridge_cache.popitem(last=False)
                if metrics is not None:
                    metrics.incr(MetricsRegistry.SQL_PLAN_CACHE_EVICTIONS)
    return dynamic


def compile_plan(
    plan: LogicalPlan,
    tables: Tables,
    protected_table: str,
    domain_sampler: Optional[DomainSampler] = None,
    name: str = "sql-query",
    engine=None,
) -> CompiledSQLQuery:
    """Compile a logical plan into a UPA-ready MapReduceQuery.

    ``engine`` (an :class:`~repro.engine.context.EngineContext`), when
    given, receives ``sql.plan_cache.*`` hit/miss counters for the
    bridge's compile cache.

    Raises:
        QueryShapeError: if the plan is not a single COUNT/SUM linear in
            ``protected_table``.
    """
    if protected_table not in tables:
        raise QueryShapeError(
            f"unknown protected table {protected_table!r}; "
            f"have {sorted(tables)}"
        )
    aggregate, child = _find_aggregate(plan)
    if not _reads_protected(child, protected_table):
        raise QueryShapeError(
            f"the query never reads the protected table "
            f"{protected_table!r}; its sensitivity would be zero"
        )
    dynamic = _compile_dynamic(child, tables, protected_table, engine)
    return CompiledSQLQuery(
        name, protected_table, dynamic, aggregate.aggregates[0], domain_sampler
    )


def compile_sql(
    sql_text: str,
    tables: Tables,
    protected_table: str,
    domain_sampler: Optional[DomainSampler] = None,
    name: Optional[str] = None,
    engine=None,
) -> CompiledSQLQuery:
    """Parse SQL text and compile it for UPA (see :func:`compile_plan`)."""
    from repro.obs.tracing import trace
    from repro.sql.parser import parse_sql
    from repro.sql.session import SQLSession

    with trace("sqlbridge.compile", sql=sql_text[:120],
               protected_table=protected_table):
        session = SQLSession()
        for table_name, rows in tables.items():
            session.create_table(table_name, rows)
        plan = parse_sql(sql_text, session)
        return compile_plan(
            plan, tables, protected_table, domain_sampler,
            name=name or f"sql:{sql_text[:40]}",
            engine=engine,
        )
