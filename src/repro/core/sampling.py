"""Phase 1 of UPA: Partition & Sample (paper section III, Algorithm 1 l.1-3).

The input dataset is split into **two stable partitions** by a content
hash, so a record lands in the same partition in every submission — the
property RANGE ENFORCER's per-partition comparison relies on: two
datasets that differ by one record produce identical output on the
untouched partition.

From the partitioned records UPA uniformly samples ``n`` *differing
records* S (the records whose removal is simulated); the rest is S'.
It also samples ``n`` records from the domain D that are *not* in x
(via the query's ``sample_domain_record``) for the "+1 record"
neighbours.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import DPError
from repro.core.query import MapReduceQuery, Row, Tables


def record_fingerprint(record: Row) -> int:
    """Stable content hash of a record (dict rows, order-insensitive).

    Uses crc32 over a canonical repr: deterministic across processes
    (unlike builtin ``hash``) and cheap enough to run once per record
    per query — partitioning is on UPA's per-record hot path.
    """
    return zlib.crc32(repr(sorted(record.items())).encode("utf-8"))


def partition_of(record: Row, num_partitions: int = 2) -> int:
    """The stable partition a record belongs to."""
    return record_fingerprint(record) % num_partitions


@dataclass
class PartitionedSample:
    """Output of Partition & Sample.

    Attributes:
        partitions: records of x1 and x2, original order preserved.
        sampled: the n differing records S (in sample order).
        sampled_partitions: partition id of each sampled record.
        remaining: S' = x \\ S, per partition, original order preserved.
        domain_samples: n records from D but not in x.
        partition_ids: partition id of *every* record, in table order.
            Partitioning is content-hashed and records are immutable
            within the session contract, so the incremental path caches
            this list across runs and only hashes appended records.
        sampled_indices: table-order indices of the sampled records.
    """

    partitions: Tuple[List[Row], List[Row]]
    sampled: List[Row]
    sampled_partitions: List[int]
    remaining: Tuple[List[Row], List[Row]]
    domain_samples: List[Row]
    partition_ids: List[int] = field(default_factory=list)
    sampled_indices: List[int] = field(default_factory=list)

    @property
    def sample_size(self) -> int:
        return len(self.sampled)


def partition_and_sample(
    query: MapReduceQuery,
    tables: Tables,
    sample_size: int,
    rng: random.Random,
    partition_ids: Optional[List[int]] = None,
) -> PartitionedSample:
    """Run Partition & Sample for ``query`` over its protected table.

    If the dataset has fewer than ``sample_size`` records, every record
    is sampled (the paper: n is lowered to |x|, giving the *exact*
    neighbour set).

    ``partition_ids`` optionally supplies the precomputed content-hash
    partition of every record (one id per record, table order) so
    incremental runs skip re-fingerprinting the whole table; content
    hashing is deterministic, so the output is bitwise identical either
    way.
    """
    records = tables[query.protected_table]
    if not records:
        raise DPError(
            f"protected table {query.protected_table!r} is empty; "
            "nothing to protect"
        )
    n = min(sample_size, len(records))

    if partition_ids is None:
        partition_ids = [partition_of(r) for r in records]
    elif len(partition_ids) != len(records):
        raise DPError(
            f"partition_ids has {len(partition_ids)} entries for "
            f"{len(records)} records"
        )
    partitions: Tuple[List[Row], List[Row]] = ([], [])
    for record, pid in zip(records, partition_ids):
        partitions[pid].append(record)

    sampled_indices = sorted(rng.sample(range(len(records)), n))
    sampled_set = set(sampled_indices)
    sampled = [records[i] for i in sampled_indices]
    sampled_parts = [partition_ids[i] for i in sampled_indices]

    remaining: Tuple[List[Row], List[Row]] = ([], [])
    for i, (record, pid) in enumerate(zip(records, partition_ids)):
        if i not in sampled_set:
            remaining[pid].append(record)

    domain_samples = [
        query.sample_domain_record(rng, tables) for _ in range(n)
    ]
    return PartitionedSample(
        partitions=partitions,
        sampled=sampled,
        sampled_partitions=sampled_parts,
        remaining=remaining,
        domain_samples=domain_samples,
        partition_ids=list(partition_ids),
        sampled_indices=list(sampled_indices),
    )
