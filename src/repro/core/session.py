"""UPASession: the end-to-end UPA pipeline (paper Figure 1).

One ``run()`` executes the four phases:

1. **Partition & Sample** — :mod:`repro.core.sampling`.
2. **Parallel Map** — the query's mapper applied to S, S-bar and S'
   on the MapReduce engine.
3. **Union Preserving Reduce** — ``R(M(S'))`` is computed once per
   partition and *reused* for every sampled neighbouring dataset:
   removal neighbours come from prefix/suffix folds over the n mapped
   samples (O(n) combines total instead of O(n * |x|)); addition
   neighbours combine one extra mapped record with f(x)'s aggregate.
4. **iDP Enforcement** — :mod:`repro.core.inference` fits the output
   range and local sensitivity; :mod:`repro.core.range_enforcer` runs
   Algorithm 2; Laplace (or, optionally, Gaussian) noise calibrated to
   the sensitivity is added.

``reuse_intermediate=False`` switches phase 3 to a naive re-reduce per
neighbour (the ablation quantifying the paper's core efficiency claim).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.common.config import EngineConfig
from repro.common.errors import DPError
from repro.common.rng import derive_seed, make_rng
from repro.common.timing import Timer
from repro.core.inference import (
    InferenceConfig,
    InferredRange,
    infer_local_sensitivity,
    infer_output_range,
)
from repro.core.query import MapReduceQuery, Tables
from repro.core.range_enforcer import EnforcementResult, RangeEnforcer
from repro.core.sampling import (
    PartitionedSample,
    partition_and_sample,
    partition_of,
)
from repro.dp.budget import PrivacyAccountant
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.engine.context import EngineContext
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.ledger import PrivacyLedger, make_entry
from repro.obs.report import run_header
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Tracer, get_tracer


class _RecordMapper:
    """The phase-2 mapper: ``query.map_record`` with broadcast aux.

    A module-level class rather than a local closure so process-backend
    tasks can pickle it and run the parallel-map jobs in worker
    processes (a local function can never cross the boundary, which
    used to force every session job onto the fallback path).
    """

    __slots__ = ("query", "aux")

    def __init__(self, query: "MapReduceQuery", aux):
        self.query = query
        self.aux = aux

    def __call__(self, record):
        return self.query.map_record(record, self.aux.value)


@dataclass(frozen=True)
class UPAConfig:
    """Session configuration.

    Attributes:
        epsilon: default privacy budget per query (paper evaluation: 0.1).
        sample_size: n, the number of sampled differing records (1000).
        seed: master seed (sampling, noise, enforcement randomness).
        inference: sensitivity-inference knobs.
        reuse_intermediate: UPA's union-preserving reuse of R(M(S'));
            False = naive re-reduce per neighbour (ablation).
        validate_queries: check the query's reducer is commutative and
            associative before running (cheap sampled check).
        strict: the full pre-registration gate — runs validate_monoid
            AND the upalint purity pass (repro.staticcheck) the first
            time each query class is submitted; error-severity
            diagnostics raise StaticAnalysisError before any budget is
            spent.
        engine_partitions: parallelism for map/reduce jobs per dataset
            partition.
    """

    epsilon: float = 0.1
    sample_size: int = 1000
    seed: int = 0
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    reuse_intermediate: bool = True
    validate_queries: bool = False
    strict: bool = False
    engine_partitions: int = 2
    #: 'laplace' (paper) or 'gaussian' ((eps, delta)-DP extension; the
    #: L1 range width is used as a conservative L2 bound).
    mechanism: str = "laplace"
    #: delta for the Gaussian mechanism.
    delta: float = 1e-6
    #: return the cached released answer when the *same* query is
    #: resubmitted over the *same* dataset (costs no extra budget and
    #: leaks nothing new — the paper's section VI-E reuse idea).
    answer_cache: bool = False

    def __post_init__(self) -> None:
        if self.mechanism not in ("laplace", "gaussian"):
            raise DPError(f"unknown mechanism {self.mechanism!r}")


@dataclass
class UPAResult:
    """Everything one UPA run produced.

    ``noisy_output`` is what a data analyst receives; all other fields
    exist for evaluation and must not be released under DP.
    """

    noisy_output: np.ndarray
    raw_output: np.ndarray
    plain_output: np.ndarray
    #: range width used to calibrate the mechanism's noise (guaranteed
    #: upper bound after RANGE ENFORCER's clamping).
    local_sensitivity: float
    #: Definition II.1 estimate reported in the Fig. 2(a) comparison.
    estimated_local_sensitivity: float
    inferred_range: InferredRange
    removal_outputs: np.ndarray
    addition_outputs: np.ndarray
    partition_outputs: Tuple[np.ndarray, np.ndarray]
    enforcement: EnforcementResult
    epsilon: float
    sample_size: int
    elapsed_seconds: float
    metrics: MetricsSnapshot

    @property
    def neighbour_outputs(self) -> np.ndarray:
        return np.vstack([self.removal_outputs, self.addition_outputs])

    def noisy_scalar(self) -> float:
        return float(np.asarray(self.noisy_output).reshape(-1)[0])


@dataclass
class _ReducedRun:
    """Everything the shared run/infer_sensitivity preamble produces."""

    state: "_PipelineState"
    removal: np.ndarray
    addition: np.ndarray
    plain: np.ndarray
    population: int
    sample: PartitionedSample

    @property
    def neighbours(self) -> np.ndarray:
        return np.vstack([self.removal, self.addition])


class _PipelineState:
    """Mutable reduce-side state shared with RANGE ENFORCER's callbacks.

    ``mapped_samples`` is a *batch* in the query's batched-monoid
    layout (see :class:`~repro.core.query.MapReduceQuery`); all folds
    go through the batched protocol so vectorized kernels apply to the
    enforcement callbacks too.
    """

    def __init__(self, query: MapReduceQuery, aux: Any,
                 r_sprime_parts: List[Any], mapped_samples: Any,
                 sample_partitions: List[int], rng: random.Random):
        self._query = query
        self._aux = aux
        self._r_sprime_parts = r_sprime_parts
        self._mapped = mapped_samples
        self._parts = list(sample_partitions)
        self._rng = rng

    def _fold_samples_in(self, partition: int) -> Any:
        query = self._query
        indices = [i for i, p in enumerate(self._parts) if p == partition]
        return query.fold_batch(query.batch_select(self._mapped, indices))

    def partition_outputs(self) -> Tuple[np.ndarray, np.ndarray]:
        query = self._query
        aggs = [
            query.combine(self._r_sprime_parts[p], self._fold_samples_in(p))
            for p in range(2)
        ]
        outs = query.finalize_batch(query.batch_stack(aggs), self._aux)
        return (np.asarray(outs[0]), np.asarray(outs[1]))

    def final_aggregate(self) -> Any:
        query = self._query
        agg = query.combine(self._r_sprime_parts[0], self._r_sprime_parts[1])
        return query.combine(agg, query.fold_batch(self._mapped))

    def final_output(self) -> np.ndarray:
        return self._query.finalize(self.final_aggregate(), self._aux)

    def remove_two_records(self) -> bool:
        query = self._query
        if query.batch_length(self._mapped) < 2:
            return False
        keep = list(range(query.batch_length(self._mapped)))
        for _ in range(2):
            idx = self._rng.randrange(len(keep))
            del keep[idx]
            del self._parts[idx]
        self._mapped = query.batch_select(self._mapped, keep)
        return True


#: records per cached element block.  Blocks use *absolute* record
#: indexing (index since the session first saw the table), so retire()
#: — a prefix deletion — leaves every untouched block addressable and
#: only boundary blocks are remapped.
_INCR_BLOCK_RECORDS = 4096


class _IncrementalState:
    """Bookkeeping the append()/retire() fast path carries between runs.

    One instance describes the *last* submission: which query ran over
    which table object, the content-hash partition id of every record
    (so only appended records are fingerprinted), and the block-store
    namespace holding the cached ``map_record`` element blocks.  The
    per-run sample S is redrawn every release, so per-partition
    *aggregates* are never reusable — the cache instead holds the
    mapped elements and replays the identical fold, which is what makes
    an incremental release bitwise-equal to a cold one.
    """

    __slots__ = (
        "query", "tables", "records", "expected_len", "partition_ids",
        "base_offset", "cache_rdd_id", "epoch", "block_records", "primed",
    )

    def __init__(
        self,
        query: MapReduceQuery,
        tables: Tables,
        records: List[Any],
        partition_ids: List[int],
        cache_rdd_id: int,
    ):
        self.query = query
        self.tables = tables
        #: the live protected-table list, identity-checked each run so
        #: any mutation outside append()/retire() forces a cold run.
        self.records = records
        self.expected_len = len(records)
        self.partition_ids = partition_ids
        #: absolute index of records[0] (grows with every retire()).
        self.base_offset = 0
        self.cache_rdd_id = cache_rdd_id
        #: engine cache epoch the blocks were written under; a mismatch
        #: (stop(), backend switch, worker respawn) invalidates them.
        self.epoch: Any = None
        self.block_records = _INCR_BLOCK_RECORDS
        #: set by the first append()/retire(); plain repeated run()
        #: calls stay on the cold path so their cost profile is
        #: unchanged.
        self.primed = False

    def matches(self, query: MapReduceQuery, tables: Tables) -> bool:
        """True iff this state still describes the submission."""
        records = tables.get(query.protected_table)
        return (
            query is self.query
            and tables is self.tables
            and records is self.records
            and len(records) == self.expected_len
        )


class UPASession:
    """Runs queries under epsilon-iDP with automatically inferred sensitivity.

    Example:
        >>> from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name
        >>> tables = TPCHGenerator(TPCHConfig(scale_rows=2000)).generate()
        >>> session = UPASession()
        >>> result = session.run(query_by_name("tpch1"), tables, epsilon=0.5)
        >>> result.local_sensitivity >= 0
        True
    """

    def __init__(
        self,
        config: Optional[UPAConfig] = None,
        engine: Optional[EngineContext] = None,
        enforcer: Optional[RangeEnforcer] = None,
        accountant: Optional[PrivacyAccountant] = None,
        tracer: Optional[Tracer] = None,
        ledger: Optional[PrivacyLedger] = None,
    ):
        self.config = config or UPAConfig()
        self.engine = engine or EngineContext(
            EngineConfig(default_parallelism=self.config.engine_partitions)
        )
        # Explicit None check: an empty RangeEnforcer is falsy (__len__),
        # and a caller-supplied registry must never be silently replaced.
        if enforcer is None:
            enforcer = RangeEnforcer(
                rng=make_rng(self.config.seed, "range-enforcer")
            )
        self.enforcer = enforcer
        self.accountant = accountant
        #: None = follow the ambient tracer (repro.obs.tracing.get_tracer),
        #: so `with use_tracer(t):` observes existing sessions too.
        self._tracer = tracer
        #: privacy audit ledger; None = no auditing.
        self.ledger = ledger
        self._run_counter = 0
        self._answer_cache: dict = {}
        #: last-run bookkeeping backing append()/retire(); None until
        #: the first run() completes.
        self._incr: Optional[_IncrementalState] = None
        #: stats of the last release's incremental phase (None when the
        #: release ran cold); surfaced through the ledger header.
        self._last_incremental: Optional[dict] = None
        #: query classes already cleared by the strict-mode static gate.
        self._lint_cleared: set = set()
        #: alert engine wired by serve() (or attach_alerts()); None
        #: until then.
        self.alert_engine = None
        #: live introspection server, if serve() started one.
        self.obs_server = None
        #: metric time-series store wired by serve() (or
        #: attach_timeseries()); None until then.
        self.timeseries = None

    @property
    def tracer(self) -> Tracer:
        """The effective tracer: explicit if given, else the ambient one."""
        return self._tracer if self._tracer is not None else get_tracer()

    def attach_alerts(self, engine=None):
        """Wire an alert engine to this session's ledger and accountant.

        With no argument, builds one over the default rules (budget
        burn rate, sensitivity drift, clamp rate).  Firings then land
        in the ledger header, the live ``/healthz`` endpoint, and the
        CLI's exit summary.  Idempotent: a second call returns the
        already-attached engine.
        """
        from repro.obs.alerts import AlertEngine

        if self.alert_engine is not None:
            return self.alert_engine
        if engine is None:
            engine = AlertEngine(accountant=self.accountant)
        elif engine.accountant is None:
            engine.accountant = self.accountant
        if self.ledger is not None:
            engine.attach(self.ledger)
        self.alert_engine = engine
        return engine

    def attach_timeseries(self, store=None, *, interval: float = 1.0,
                          start: bool = False, alerts: bool = True):
        """Wire a metric time-series store to this session.

        With no argument, builds a
        :class:`~repro.obs.timeseries.TimeSeriesStore` over the engine
        registry.  Every release then ticks the store (so an
        ``append``/``retire`` loop grows real time series) and — with
        ``alerts`` (the default) — evaluates the windowed alert rules
        on each tick.  ``start=True`` also starts the daemon sampler
        thread, which keeps sampling between releases; the engine's
        :meth:`~repro.engine.context.EngineContext.stop` stops it.
        Idempotent: a second call returns the already-attached store
        (starting its sampler if newly asked to).
        """
        from repro.obs.timeseries import TimeSeriesStore

        if self.timeseries is not None:
            if start:
                self.timeseries.start()
            return self.timeseries
        if store is None:
            store = TimeSeriesStore(self.engine.metrics, interval=interval)
        if alerts:
            self.attach_alerts().attach_timeseries(store)
        self.engine.install_timeseries(store)
        self.timeseries = store
        if start:
            store.start()
        return store

    def serve(self, port: int = 0, host: str = "127.0.0.1",
              alerts: bool = True, profiler=None,
              timeseries: bool = True, timeseries_interval: float = 1.0):
        """Start live monitoring endpoints over this session.

        Wires everything the session owns — engine metrics, the
        effective tracer, the privacy ledger, the accountant, an alert
        engine (built via :meth:`attach_alerts` unless ``alerts`` is
        False), a time-series store with a running sampler (built via
        :meth:`attach_timeseries` unless ``timeseries`` is False; it
        backs ``/timeseries`` and ``/dashboard``) and an optional
        :class:`~repro.obs.profiler.SamplingProfiler` — into one
        :class:`~repro.obs.server.ObservabilityServer`.  ``port=0``
        binds an ephemeral port; read ``.url`` off the returned server.
        Stop it with ``session.obs_server.stop()`` (or let the daemon
        thread die with the process).
        """
        from repro.obs.tracing import NULL_TRACER

        if self.obs_server is not None:
            return self.obs_server
        engine = self.attach_alerts() if alerts else None
        store = None
        if timeseries:
            store = self.attach_timeseries(
                interval=timeseries_interval, alerts=alerts, start=True,
            )
        tracer = self.tracer
        self.obs_server = self.engine.serve(
            port=port, host=host,
            tracer=tracer if tracer is not NULL_TRACER else None,
            ledger=self.ledger,
            accountants=(
                {"session": self.accountant}
                if self.accountant is not None else None
            ),
            alerts=engine,
            profiler=profiler,
            timeseries=store,
        )
        return self.obs_server

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        query: MapReduceQuery,
        tables: Tables,
        epsilon: Optional[float] = None,
    ) -> UPAResult:
        """Answer ``query`` on ``tables`` under epsilon-iDP."""
        epsilon = epsilon if epsilon is not None else self.config.epsilon
        if epsilon <= 0 or not math.isfinite(epsilon):
            raise DPError(
                f"epsilon must be positive and finite, got {epsilon}"
            )
        if self.config.strict:
            self._static_gate(query)
        if self.config.validate_queries or self.config.strict:
            query.validate_monoid(tables)
        tracer = self.tracer
        if tracer.enabled and self.engine.tracer is NULL_TRACER:
            # Auto-wire the engine (scheduler spans + job listener) so
            # one tracer sees the pipeline end to end.
            self.engine.install_tracer(tracer)
        self._last_incremental = None
        cache_key = None
        if self.config.answer_cache:
            cache_key = self._cache_key(query, tables, epsilon)
            cached = self._answer_cache.get(cache_key)
            if cached is not None:
                self.engine.metrics.incr("answer_cache_hits")
                self._record_ledger(
                    query, cached, epsilon_charged=0.0, delta=0.0,
                    cache_hit=True,
                )
                self._observe_release(cached, 0.0, cache_hit=True)
                return cached
        delta = self.config.delta if self.config.mechanism == "gaussian" else 0.0
        if self.accountant is not None:
            self.accountant.charge(epsilon, delta=delta, label=query.name)

        metrics_before = self.engine.metrics.snapshot()

        run_span = (
            tracer.span(
                "upa.run", query=query.name, epsilon=epsilon,
                sample_size=self.config.sample_size,
                mechanism=self.config.mechanism,
            )
            if tracer.enabled
            else NULL_SPAN
        )
        with run_span, Timer() as timer:
            reduced = self._sample_and_reduce(query, tables)
            neighbours = reduced.neighbours
            with tracer.span("phase:inference") if tracer.enabled \
                    else NULL_SPAN as inference_span:
                inferred = infer_output_range(
                    neighbours, reduced.population, self.config.inference
                )
                estimated_ls = infer_local_sensitivity(
                    neighbours, reduced.plain, reduced.population,
                    self.config.inference,
                )
                inference_span.set_attribute(
                    "local_sensitivity", inferred.local_sensitivity
                )
                inference_span.set_attribute(
                    "neighbour_outputs", int(neighbours.shape[0])
                )
            with tracer.span("phase:noise") if tracer.enabled \
                    else NULL_SPAN as noise_span:
                partition_outputs = reduced.state.partition_outputs()
                enforcement = self.enforcer.enforce(reduced.state, inferred)
                noisy = self._randomize(
                    enforcement.output, inferred.local_sensitivity, epsilon
                )
                noise_span.set_attribute("clamped", enforcement.clamped)
                noise_span.set_attribute(
                    "records_removed", enforcement.records_removed
                )

        metrics = self.engine.metrics.snapshot().diff(metrics_before)
        result = UPAResult(
            noisy_output=np.asarray(noisy, dtype=float).reshape(-1),
            raw_output=enforcement.output,
            plain_output=reduced.plain,
            local_sensitivity=inferred.local_sensitivity,
            estimated_local_sensitivity=estimated_ls,
            inferred_range=inferred,
            removal_outputs=reduced.removal,
            addition_outputs=reduced.addition,
            partition_outputs=partition_outputs,
            enforcement=enforcement,
            epsilon=epsilon,
            sample_size=reduced.sample.sample_size,
            elapsed_seconds=timer.elapsed,
            metrics=metrics,
        )
        if cache_key is not None:
            self._answer_cache[cache_key] = result
        self._record_ledger(
            query, result, epsilon_charged=epsilon, delta=delta,
            cache_hit=False,
        )
        self._observe_release(result, epsilon, cache_hit=False)
        return result

    def append(
        self,
        records: List[Any],
        epsilon: Optional[float] = None,
    ) -> UPAResult:
        """Grow the last run's protected table and release a new answer.

        The appended records are added to the table submitted to the
        previous :meth:`run` and the same query is answered again over
        the grown dataset.  This is a *new release*: it charges a fresh
        ``epsilon`` through the accountant and ledger exactly like a
        cold run, and under fixed seeds the output is bitwise identical
        to re-running the query cold over the grown table.  What the
        incremental path saves is recomputation — cached content-hash
        partition ids and ``map_record`` element blocks mean only the
        appended records are fingerprinted and mapped (for queries with
        ``incremental_safe``; others recompute elements but still skip
        nothing else of the pipeline).
        """
        incr = self._require_incremental("append")
        new_records = list(records)
        if not new_records:
            raise DPError("append() needs at least one record")
        incr.records.extend(new_records)
        incr.partition_ids.extend(partition_of(r) for r in new_records)
        incr.expected_len = len(incr.records)
        incr.primed = True
        self.engine.metrics.incr(MetricsRegistry.INCR_APPENDS)
        return self.run(incr.query, incr.tables, epsilon)

    def retire(
        self,
        count: int,
        epsilon: Optional[float] = None,
    ) -> UPAResult:
        """Drop the ``count`` oldest records (sliding window) and release.

        The complement of :meth:`append`: the oldest ``count`` records
        leave the protected table and the query is answered again over
        the shrunk dataset, charging a fresh ``epsilon`` per release.
        Element blocks use absolute indexing, so only the block
        straddling the new window start is remapped.
        """
        incr = self._require_incremental("retire")
        if count <= 0:
            raise DPError(
                f"retire() count must be a positive int, got {count!r}"
            )
        if count >= len(incr.records):
            raise DPError(
                f"retire({count}) would empty the protected table "
                f"({len(incr.records)} records)"
            )
        del incr.records[:count]
        del incr.partition_ids[:count]
        incr.base_offset += count
        incr.expected_len = len(incr.records)
        incr.primed = True
        self.engine.metrics.incr(MetricsRegistry.INCR_RETIRES)
        return self.run(incr.query, incr.tables, epsilon)

    def _observe_release(
        self,
        result: UPAResult,
        epsilon_charged: float,
        *,
        cache_hit: bool,
    ) -> None:
        """Fold one release into the metric registry and time series.

        Runs after the result (and its per-run metrics diff) is fully
        built, so these counters never appear inside a run's own
        ``result.metrics`` window.  The final tick pushes the fresh
        values into the attached time-series store, which evaluates the
        windowed alert rules through its listeners — this is what makes
        every ``append``/``retire`` release an alert-evaluation point.
        Pure observation: nothing here touches the RNG or the pipeline,
        so DP outputs are bitwise identical with or without it.
        """
        metrics = self.engine.metrics
        metrics.incr(MetricsRegistry.RELEASES)
        if epsilon_charged > 0:
            metrics.incr(MetricsRegistry.RELEASE_EPSILON, epsilon_charged)
        if not cache_hit:
            enforcement = result.enforcement
            if enforcement.clamped:
                metrics.incr(MetricsRegistry.RELEASE_CLAMPS)
            if enforcement.records_removed:
                metrics.incr(
                    MetricsRegistry.RELEASE_RECORDS_REMOVED,
                    float(enforcement.records_removed),
                )
            metrics.set_gauge(
                MetricsRegistry.RELEASE_SENSITIVITY,
                result.local_sensitivity,
            )
        if self.accountant is not None:
            metrics.set_gauge(
                MetricsRegistry.BUDGET_REMAINING,
                float(self.accountant.remaining_epsilon()),
            )
            metrics.set_gauge(
                MetricsRegistry.BUDGET_SPENT,
                float(self.accountant.spent()[0]),
            )
        if self.timeseries is not None:
            self.timeseries.tick()

    def _require_incremental(self, op: str) -> "_IncrementalState":
        incr = self._incr
        if incr is None:
            raise DPError(
                f"{op}() requires a completed run() on this session first"
            )
        table = incr.tables.get(incr.query.protected_table)
        if table is not incr.records or len(table) != incr.expected_len:
            raise DPError(
                f"{op}(): the protected table changed outside "
                "append()/retire(); submit it through run() again"
            )
        return incr

    def _record_ledger(
        self,
        query: MapReduceQuery,
        result: UPAResult,
        *,
        epsilon_charged: float,
        delta: float,
        cache_hit: bool,
    ) -> None:
        """Append one audit entry for a release (or cached re-release)."""
        ledger = self.ledger
        if ledger is None:
            return
        metrics = self.engine.metrics
        ledger.ensure_header(run_header(
            epsilon=self.config.epsilon,
            sample_size=self.config.sample_size,
            seed=self.config.seed,
            mechanism=self.config.mechanism,
        ))
        # The CLI pre-fills the header at construction, so these
        # counters must be refreshed on every release, not ensure'd.
        # The execution backend travels in the header too: an audit of
        # a processes-backend run must be distinguishable from a
        # threads run (the DP outputs are bitwise identical, the
        # operational story is not).
        incremental = self._last_incremental
        ledger.update_header(
            sql_plan_cache_hits=int(
                metrics.get(MetricsRegistry.SQL_PLAN_CACHE_HITS)
            ),
            sql_plan_cache_misses=int(
                metrics.get(MetricsRegistry.SQL_PLAN_CACHE_MISSES)
            ),
            sql_plan_cache_evictions=int(
                metrics.get(MetricsRegistry.SQL_PLAN_CACHE_EVICTIONS)
            ),
            backend=self.engine.scheduler.backend,
            max_workers=self.engine.config.max_workers,
            incremental=incremental is not None,
            incremental_blocks_reused=(
                int(incremental["blocks_reused"]) if incremental else 0
            ),
            incremental_partitions_recomputed=(
                int(incremental["blocks_recomputed"]) if incremental else 0
            ),
            incremental_delta_fraction=(
                float(incremental["delta_fraction"]) if incremental else 0.0
            ),
        )
        spent = remaining = None
        if self.accountant is not None:
            spent = float(self.accountant.spent()[0])
            remaining = float(self.accountant.remaining_epsilon())
        inferred = result.inferred_range
        enforcement = result.enforcement
        ledger.append(make_entry(
            sequence=ledger.next_sequence(),
            query=query.name,
            epsilon_charged=epsilon_charged,
            delta=delta,
            mechanism=self.config.mechanism,
            sample_size=result.sample_size,
            mean=inferred.mean,
            std=inferred.std,
            lower=inferred.lower,
            upper=inferred.upper,
            local_sensitivity=result.local_sensitivity,
            estimated_local_sensitivity=result.estimated_local_sensitivity,
            clamped=enforcement.clamped,
            matched_prior=enforcement.matched_prior,
            records_removed=enforcement.records_removed,
            accountant_spent_epsilon=spent,
            accountant_remaining_epsilon=remaining,
            cache_hit=cache_hit,
            elapsed_seconds=result.elapsed_seconds,
        ))

    def _static_gate(self, query: MapReduceQuery) -> None:
        """Strict mode: upalint's purity + taint passes at registration.

        Runs once per (query class, name); error-severity diagnostics
        abort the submission before any budget is charged.  Imported
        lazily — the analyzer depends on nothing in this module, but
        sessions should not pay its import cost unless strict.
        """
        key = (type(query).__module__, type(query).__qualname__,
               query.name)
        if key in self._lint_cleared:
            return
        from repro.common.errors import StaticAnalysisError
        from repro.staticcheck import (
            Severity,
            check_query,
            check_query_taint,
            render_text,
        )

        diagnostics = check_query(query)
        diagnostics.extend(check_query_taint(query))
        errors = [
            d for d in diagnostics if d.severity == Severity.ERROR
        ]
        if errors:
            raise StaticAnalysisError(
                f"query {query.name!r} failed static analysis "
                f"({len(errors)} error(s)):\n{render_text(errors)}",
                errors,
            )
        self._lint_cleared.add(key)

    @staticmethod
    def _cache_key(query: MapReduceQuery, tables: Tables,
                   epsilon: float) -> tuple:
        """Identity of a submission: query name + dataset fingerprint.

        Releasing the *same* noisy answer for the same submission is
        standard DP practice (no new information leaves the curator).
        Two queries with the same name but different logic would collide
        — names are unique in the workload registry, and ad-hoc queries
        get their SQL text as the name.
        """
        from repro.core.sampling import record_fingerprint

        dataset_print = (
            len(tables[query.protected_table]),
            sum(
                record_fingerprint(r) for r in tables[query.protected_table]
            ),
        )
        return (query.name, epsilon, dataset_print)

    def run_sql(
        self,
        sql_text: str,
        tables: Tables,
        protected_table: str,
        epsilon: Optional[float] = None,
        domain_sampler=None,
    ) -> UPAResult:
        """Answer a SQL counting/sum query under epsilon-iDP.

        The query text is parsed, checked for linearity in
        ``protected_table``, compiled into a Mapper/Reducer form by
        :mod:`repro.core.sqlbridge`, and run through the ordinary
        pipeline — the paper's "no query modification" workflow.
        """
        from repro.core.sqlbridge import compile_sql

        query = compile_sql(
            sql_text, tables, protected_table, domain_sampler=domain_sampler,
            engine=self.engine,
        )
        return self.run(query, tables, epsilon)

    def run_vanilla(self, query: MapReduceQuery, tables: Tables
                    ) -> Tuple[np.ndarray, float]:
        """Evaluate the query on the engine with no privacy machinery.

        The Fig. 2(b)/4 baselines normalize UPA's time against this.
        """
        with Timer() as timer:
            aux = query.build_aux(tables)
            aux_b = self.engine.broadcast(aux)
            rdd = self.engine.parallelize(
                tables[query.protected_table],
                max(2, self.config.engine_partitions),
            )
            agg = rdd.map(
                lambda r, _q=query, _a=aux_b: _q.map_record(r, _a.value)
            ).aggregate(query.zero(), query.combine, query.combine)
            output = query.finalize(agg, aux)
        return output, timer.elapsed

    def infer_sensitivity(
        self, query: MapReduceQuery, tables: Tables
    ) -> InferredRange:
        """Sensitivity inference only (no enforcement, no noise).

        Used by the accuracy benchmarks; does not register the query
        with RANGE ENFORCER and spends no budget.
        """
        reduced = self._sample_and_reduce(query, tables)
        return infer_output_range(
            reduced.neighbours, reduced.population, self.config.inference
        )

    def _sample_and_reduce(self, query: MapReduceQuery,
                           tables: Tables) -> _ReducedRun:
        """Shared preamble of :meth:`run` and :meth:`infer_sensitivity`.

        Draws the per-run RNG, partitions & samples, builds aux, and
        runs the union-preserving reduce phase.
        """
        self._run_counter += 1
        tracer = self.tracer
        rng = make_rng(self.config.seed, f"upa-run-{self._run_counter}")
        incr = self._incr
        use_incr = (
            incr is not None
            and incr.primed
            and self.config.reuse_intermediate
            and incr.matches(query, tables)
        )
        if incr is not None and incr.primed and not use_incr:
            # The cached state no longer describes this submission
            # (different query, externally mutated table, or the
            # no-reuse ablation): run cold and rebuild below.
            self.engine.metrics.incr(MetricsRegistry.INCR_INVALIDATIONS)
        with tracer.span(
            "phase:partition_sample", query=query.name,
            sample_size=self.config.sample_size,
        ) if tracer.enabled else NULL_SPAN as sample_span:
            sample = partition_and_sample(
                query, tables, self.config.sample_size, rng,
                partition_ids=incr.partition_ids if use_incr else None,
            )
            sample_span.set_attribute("sampled", sample.sample_size)
            sample_span.set_attribute("incremental", bool(use_incr))
        aux = query.build_aux(tables)
        remaining_elements = None
        self._last_incremental = None
        if use_incr:
            with tracer.span(
                "phase:incremental_delta", query=query.name,
            ) if tracer.enabled else NULL_SPAN as delta_span:
                remaining_elements, stats = self._incremental_elements(
                    incr, query, aux, sample
                )
                self._last_incremental = stats
                for key, value in stats.items():
                    delta_span.set_attribute(key, value)
        state, removal, addition, plain = self._reduce_phase(
            query, aux, sample, rng, remaining_elements
        )
        population = len(tables[query.protected_table]) + sample.sample_size
        self._remember_run(query, tables, sample)
        return _ReducedRun(
            state=state,
            removal=removal,
            addition=addition,
            plain=plain,
            population=population,
            sample=sample,
        )

    def _remember_run(
        self, query: MapReduceQuery, tables: Tables,
        sample: PartitionedSample,
    ) -> None:
        """Refresh append()/retire() bookkeeping after a run.

        A matching state continues (append() already maintained its
        partition ids); anything else — first run, new query, new
        tables — replaces the state and evicts the old element blocks.
        The partition ids were computed by this run regardless, so the
        cold path's cost profile is unchanged.
        """
        incr = self._incr
        if incr is not None and incr.matches(query, tables):
            return
        if incr is not None:
            self.engine.block_store.evict_rdd(incr.cache_rdd_id)
        self._incr = _IncrementalState(
            query, tables, tables[query.protected_table],
            sample.partition_ids, self.engine.reserve_cache_id(),
        )

    def _incremental_elements(
        self,
        incr: "_IncrementalState",
        query: MapReduceQuery,
        aux: Any,
        sample: PartitionedSample,
    ) -> Tuple[Tuple[List[Any], List[Any]], dict]:
        """Assemble the mapped elements of S' from cached blocks.

        Element blocks live in the engine's block store, keyed by
        ``(cache namespace, absolute block index)`` and tagged with the
        engine's :meth:`~repro.engine.context.EngineContext.cache_epoch`
        — a block written before a backend switch, worker respawn or
        ``stop()`` reads as a miss and is remapped, never merged stale.
        Only ``incremental_safe`` queries reuse blocks; others (aux
        reads the protected table, so old elements may be wrong under
        the new aux) remap everything each release, which still yields
        the bitwise-identical answer, just without the speedup.
        """
        engine = self.engine
        metrics = engine.metrics
        store = engine.block_store
        records = incr.records
        cacheable = query.incremental_safe
        epoch = engine.cache_epoch()
        if incr.epoch is not None and epoch != incr.epoch:
            metrics.incr(MetricsRegistry.INCR_INVALIDATIONS)
        incr.epoch = epoch
        base = incr.base_offset
        total = len(records)
        size = incr.block_records
        elements: List[Any] = []
        hits = misses = reused = mapped = 0
        for b in range(base // size, (base + total - 1) // size + 1):
            lo = max(b * size, base)
            hi = min((b + 1) * size, base + total)
            key = (incr.cache_rdd_id, b)
            stored = store.get_tagged(key, epoch) if cacheable else None
            if stored is not None:
                abs_start, cached = stored
                covered = abs_start + len(cached)
                if abs_start <= lo and covered >= hi:
                    elements.extend(cached[lo - abs_start:hi - abs_start])
                    hits += 1
                    reused += hi - lo
                    continue
                if abs_start <= lo < covered:
                    # Tail block grown by append(): reuse the cached
                    # prefix, map only the new records.
                    elements.extend(cached[lo - abs_start:])
                    fresh = [
                        query.map_record(records[i - base], aux)
                        for i in range(covered, hi)
                    ]
                    elements.extend(fresh)
                    reused += covered - lo
                    mapped += hi - covered
                    misses += 1
                    store.put_tagged(key, epoch, (abs_start, cached + fresh))
                    continue
            misses += 1
            fresh = [
                query.map_record(records[i - base], aux)
                for i in range(lo, hi)
            ]
            mapped += hi - lo
            elements.extend(fresh)
            if cacheable:
                store.put_tagged(key, epoch, (lo, fresh))
        metrics.incr(MetricsRegistry.INCR_BLOCK_HITS, hits)
        metrics.incr(MetricsRegistry.INCR_BLOCK_MISSES, misses)
        metrics.incr(MetricsRegistry.INCR_RECORDS_REUSED, reused)
        metrics.incr(MetricsRegistry.INCR_RECORDS_MAPPED, mapped)
        delta_fraction = mapped / total if total else 0.0
        metrics.set_gauge(MetricsRegistry.INCR_DELTA_FRACTION, delta_fraction)

        # Split into the S' element lists, mirroring how
        # partition_and_sample splits the records themselves — same
        # order, same partitions, minus the sampled indices.
        sampled_set = set(sample.sampled_indices)
        remaining: Tuple[List[Any], List[Any]] = ([], [])
        for i, pid in enumerate(sample.partition_ids):
            if i not in sampled_set:
                remaining[pid].append(elements[i])
        stats = {
            "blocks_reused": hits,
            "blocks_recomputed": misses,
            "records_reused": reused,
            "records_mapped": mapped,
            "delta_fraction": delta_fraction,
        }
        return remaining, stats

    def _randomize(self, value, sensitivity: float, epsilon: float):
        """Noise the output with the configured mechanism.

        A fresh mechanism per run keeps noise reproducible from
        (seed, run counter) regardless of earlier calls.
        """
        seed = derive_seed(self.config.seed, f"noise-{self._run_counter}")
        if self.config.mechanism == "gaussian":
            mechanism = GaussianMechanism(
                epsilon=epsilon, delta=self.config.delta, seed=seed
            )
            return mechanism.randomize(value, sensitivity)
        mechanism = LaplaceMechanism(epsilon=epsilon, seed=seed)
        return mechanism.randomize(value, sensitivity)

    # ------------------------------------------------------------------
    # Phases 2 + 3
    # ------------------------------------------------------------------

    def _reduce_phase(
        self,
        query: MapReduceQuery,
        aux: Any,
        sample: PartitionedSample,
        rng: random.Random,
        remaining_elements: Optional[Tuple[List[Any], List[Any]]] = None,
    ) -> Tuple[_PipelineState, np.ndarray, np.ndarray, np.ndarray]:
        tracer = self.tracer
        metrics = self.engine.metrics
        with tracer.span("phase:map", query=query.name) if tracer.enabled \
                else NULL_SPAN:
            mapper = None

            # Parallel Map + per-partition reduce of S' (ReduceByPar,
            # Alg.1 l.7).
            r_sprime_parts: List[Any] = []
            if remaining_elements is not None:
                # Incremental fast path: S' is already mapped (cached
                # element blocks).  Feeding the elements through the
                # same parallelize + aggregate pipeline reproduces the
                # cold run's partition slicing and fold order exactly,
                # so the per-partition aggregates are bitwise equal.
                for p in range(2):
                    rdd = self.engine.parallelize(
                        remaining_elements[p],
                        max(1, self.config.engine_partitions),
                    )
                    r_sprime_parts.append(
                        rdd.aggregate(query.zero(), query.combine,
                                      query.combine)
                    )
            else:
                aux_b = self.engine.broadcast(aux)
                mapper = _RecordMapper(query, aux_b)
                for p in range(2):
                    rdd = self.engine.parallelize(
                        sample.remaining[p],
                        max(1, self.config.engine_partitions),
                    )
                    r_sprime_parts.append(
                        rdd.map(mapper).aggregate(query.zero(), query.combine,
                                                  query.combine)
                    )
            r_sprime = query.combine(r_sprime_parts[0], r_sprime_parts[1])

            # S and S-bar are small (n records each) and already live on
            # the driver, so they go through the batched mapper directly —
            # one vectorized call instead of an engine round-trip per
            # batch.
            mapped_s = query.map_batch(sample.sampled, aux)
            mapped_sbar = query.map_batch(sample.domain_samples, aux)
        metrics.observe(
            MetricsRegistry.NEIGHBOUR_BATCH, query.batch_length(mapped_s)
        )
        metrics.observe(
            MetricsRegistry.NEIGHBOUR_BATCH, query.batch_length(mapped_sbar)
        )

        with tracer.span(
            "phase:reduce", reuse_intermediate=self.config.reuse_intermediate,
        ) if tracer.enabled else NULL_SPAN:
            fold_s = query.fold_batch(mapped_s)
            f_x_agg = query.combine(r_sprime, fold_s)
            plain = query.finalize(f_x_agg, aux)

            if self.config.reuse_intermediate:
                removal = self._removal_outputs_reused(
                    query, aux, r_sprime, mapped_s
                )
            else:
                removal = self._removal_outputs_naive(
                    query, aux, sample, mapped_s, mapper
                )
            if query.batch_length(mapped_sbar) > 0:
                addition = np.asarray(
                    query.finalize_batch(
                        query.combine_batch(f_x_agg, mapped_sbar), aux
                    ),
                    dtype=float,
                )
            else:
                addition = np.empty((0, query.output_dim))

        state = _PipelineState(
            query, aux, r_sprime_parts, mapped_s,
            sample.sampled_partitions, rng,
        )
        return state, removal, addition, plain

    def _removal_outputs_reused(
        self, query: MapReduceQuery, aux: Any, r_sprime: Any,
        mapped_s: Any,
    ) -> np.ndarray:
        """o_i = finalize(R(S') + fold(S - s_i)) via prefix/suffix folds.

        ``mapped_s`` is a batch; the all-but-one folds, the combine with
        R(S') and the n finalizations all run through the query's
        batched kernels (vectorized for the built-in workloads).
        """
        n = query.batch_length(mapped_s)
        if n == 0:
            return np.empty((0, query.output_dim))
        all_but_one = query.prefix_suffix_batch(mapped_s)
        outputs = query.finalize_batch(
            query.combine_batch(r_sprime, all_but_one), aux
        )
        return np.asarray(outputs, dtype=float)

    def _removal_outputs_naive(
        self, query: MapReduceQuery, aux: Any, sample: PartitionedSample,
        mapped_s: Any, mapper,
    ) -> np.ndarray:
        """Ablation: re-reduce the whole dataset for every neighbour.

        Mapping is still done once (the reuse claim is about the
        *reduce* side); each neighbour re-folds all |x| - 1 elements —
        deliberately through the scalar monoid, element by element, to
        measure what the union-preserving reuse (and its batched
        kernels) buys.
        """
        all_mapped = []
        for p in range(2):
            rdd = self.engine.parallelize(
                sample.remaining[p], max(1, self.config.engine_partitions)
            )
            all_mapped.extend(rdd.map(mapper).collect())
        base_count = len(all_mapped)
        all_mapped.extend(query.iter_batch(mapped_s))
        rows = []
        for i in range(len(all_mapped) - base_count):
            skip = base_count + i
            agg = query.fold(
                m for j, m in enumerate(all_mapped) if j != skip
            )
            rows.append(query.finalize(agg, aux))
        if not rows:
            return np.empty((0, query.output_dim))
        return np.vstack(rows)
