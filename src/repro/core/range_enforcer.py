"""RANGE ENFORCER (paper Algorithm 2).

Detects repeated-query attacks and guarantees the inferred local
sensitivity upper-bounds the true one:

1. **Attack detection** — the output of the current query on each of
   the dataset's two stable partitions is compared with every prior
   submission's partition outputs.  If fewer than two partitions differ
   from some prior submission, the current and prior inputs may be
   neighbouring (differ by one record) and the queries may be the same
   — exactly the attack in the threat model.  UPA then removes two of
   the sampled records from the input and recomputes, forcing the
   datasets at least two records apart.
2. **Output-range constraint** — the final output is forced into the
   inferred range [lower, upper]; an out-of-range output is replaced by
   a uniform random value inside the range (Algorithm 2 l.17-18).
   After clamping, *every* output of this query on x or a neighbour
   lies in the range, so |f(x) - f(y)| <= width — the inequality the
   iDP proof (section IV-C) needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.common.errors import DPError
from repro.core.inference import InferredRange


@dataclass
class _RegisteredQuery:
    """Partition outputs and range of a previously answered query."""

    partition_outputs: Tuple[np.ndarray, np.ndarray]
    range: InferredRange


class EnforcerRuntime(Protocol):
    """Callbacks the enforcer needs from the running UPA pipeline."""

    def partition_outputs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current f(x1), f(x2)."""

    def final_output(self) -> np.ndarray:
        """Current f(x) (reduced over both partitions)."""

    def remove_two_records(self) -> bool:
        """Drop two sampled records from the input; False if exhausted."""


@dataclass
class EnforcementResult:
    """What RANGE ENFORCER did to one submission.

    Attributes:
        output: the final (clamped, possibly after removals) raw output.
        matched_prior: a prior submission looked neighbouring.
        records_removed: how many records were removed to break the match.
        clamped: the output fell outside the inferred range and was
            replaced by an in-range random value.
    """

    output: np.ndarray
    matched_prior: bool
    records_removed: int
    clamped: bool


class RangeEnforcer:
    """Cross-query registry implementing Algorithm 2.

    One enforcer instance guards one dataset; UPA sessions share it
    across submissions.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 equality_rtol: float = 1e-9):
        self._registry: List[_RegisteredQuery] = []
        self._rng = rng or random.Random(0)
        self._rtol = equality_rtol

    def __len__(self) -> int:
        return len(self._registry)

    def _same(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Partition-output equality (floats: tolerance-based).

        The paper compares outputs exactly; identical computations give
        bitwise-identical floats, but we allow a tiny relative
        tolerance so re-orderings inside the engine cannot mask a
        genuine match.
        """
        if a.shape != b.shape:
            return False
        return bool(np.allclose(a, b, rtol=self._rtol, atol=0.0))

    def enforce(self, runtime: EnforcerRuntime,
                inferred: InferredRange) -> EnforcementResult:
        """Run Algorithm 2 for one submission and register it."""
        matched = False
        removed = 0
        current = runtime.partition_outputs()

        for prior in self._registry:
            diff_num = sum(
                0 if self._same(prior.partition_outputs[j], current[j]) else 1
                for j in range(2)
            )
            while diff_num < 2:
                matched = True
                if not runtime.remove_two_records():
                    raise DPError(
                        "RANGE ENFORCER exhausted sampled records while "
                        "separating neighbouring submissions"
                    )
                removed += 2
                current = runtime.partition_outputs()
                diff_num = sum(
                    0 if self._same(prior.partition_outputs[j], current[j]) else 1
                    for j in range(2)
                )

        output = runtime.final_output()
        clamped = not inferred.contains(output)
        if clamped:
            span = inferred.upper - inferred.lower
            output = inferred.lower + np.array(
                [self._rng.random() for _ in range(span.shape[0])]
            ) * span

        self._registry.append(
            _RegisteredQuery(
                partition_outputs=(current[0].copy(), current[1].copy()),
                range=inferred,
            )
        )
        return EnforcementResult(
            output=output,
            matched_prior=matched,
            records_removed=removed,
            clamped=clamped,
        )

    def reset(self) -> None:
        """Forget all registered queries (new dataset / new epoch)."""
        self._registry.clear()
