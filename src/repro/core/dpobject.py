"""The Spark-compatible operator API of the paper's Table I.

``dpread`` partitions + samples an RDD; :class:`DPObject` carries the
map/reduce state of the sampled records S and the remaining records S';
``reduce_dp`` returns both the query result and the outputs on the
sampled neighbouring datasets.  :class:`DPObjectKV` adds the key-value
operators ``reduce_by_key_dp`` and ``join_dp`` (section V-B/V-C),
including joinDP's two-round shuffle and differing-tuple index
tracking.

This is the low-level surface a Spark program would port to; the
high-level :class:`repro.core.session.UPASession` wraps the same logic
behind a single call and adds inference/enforcement/noise.

Example:
    >>> from repro.engine import EngineContext
    >>> ctx = EngineContext()
    >>> dpo = dpread(ctx.parallelize(range(100)), sample_size=10, seed=1)
    >>> neighbours, total = dpo.map_dp(lambda v: 1).reduce_dp(lambda a, b: a + b)
    >>> total
    100
    >>> sorted(set(neighbours))
    [99]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.common.errors import DPError
from repro.common.rng import make_rng
from repro.engine.rdd import RDD

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")
W = TypeVar("W")


def dpread(rdd: RDD, sample_size: int = 1000, seed: int = 0) -> "DPObject":
    """Partition an RDD's records into sampled S and remaining S'.

    Table I: ``dpread[T](RDD[T])``.
    """
    if sample_size <= 0:
        raise DPError(f"sample_size must be positive, got {sample_size}")
    indexed = rdd.zip_with_index()
    total = rdd.count()
    n = min(sample_size, total)
    rng = make_rng(seed, "dpread")
    chosen = frozenset(rng.sample(range(total), n))
    sampled = (
        indexed.filter(lambda pair: pair[1] in chosen).map(lambda pair: pair[0])
    )
    remaining = (
        indexed.filter(lambda pair: pair[1] not in chosen).map(lambda pair: pair[0])
    )
    return DPObject(sampled.collect(), remaining)


class DPObject(Generic[T]):
    """Carries S (driver-side list, |S| = n) and S' (an RDD).

    Table I: ``dpobject[T](RDD[T], RDD[T])``.
    """

    def __init__(self, sampled: List[T], remaining: RDD):
        self.sampled = sampled
        self.remaining = remaining

    def map_dp(self, f: Callable[[T], U]) -> "DPObject":
        """Map S and S' (Table I ``mapDP``)."""
        return DPObject([f(s) for s in self.sampled], self.remaining.map(f))

    def as_kv(self) -> "DPObjectKV":
        """Reinterpret records as (key, value) pairs."""
        return DPObjectKV(self.sampled, self.remaining)

    def reduce_dp(self, f: Callable[[T, T], T]) -> Tuple[List[T], T]:
        """Reduce S and S' (Table I ``reduceDP``).

        Returns ``(neighbour_outputs, result)``: the reduced value of
        the whole dataset with each sampled record excluded (computed by
        reusing R(S'), section V-A), and the full result.
        """
        if not self.sampled:
            return ([], self.remaining.reduce(f))
        r_sprime: Optional[T] = None
        if not self.remaining.is_empty():
            r_sprime = self.remaining.reduce(f)

        def fold_with_base(values: List[T]) -> T:
            acc = r_sprime
            for value in values:
                acc = value if acc is None else f(acc, value)
            return acc  # type: ignore[return-value]

        # Prefix/suffix folds over S so each "S minus one record" costs O(1).
        n = len(self.sampled)
        neighbour_outputs: List[T] = []
        for i in range(n):
            rest = self.sampled[:i] + self.sampled[i + 1:]
            if not rest and r_sprime is None:
                raise DPError("cannot reduce an empty neighbouring dataset")
            neighbour_outputs.append(fold_with_base(rest))
        result = fold_with_base(self.sampled)
        return (neighbour_outputs, result)


class DPObjectKV(DPObject[Tuple[K, V]]):
    """Key-value flavour (Table I ``dpobjectKV``)."""

    def map_dp_kv(
        self, f: Callable[[Tuple[K, V]], Tuple[K, W]]
    ) -> "DPObjectKV":
        """Table I ``mapDPKV``."""
        return DPObjectKV([f(s) for s in self.sampled], self.remaining.map(f))

    def reduce_by_key_dp(
        self, f: Callable[[V, V], V]
    ) -> Tuple[List[Dict[K, Optional[V]]], Dict[K, V]]:
        """Table I ``reduceByKeyDP`` (section V-B).

        Reduces S' by key on the engine, broadcasts the reduced map
        B(R_S') and the sampled map B(S), then derives, for each sampled
        record s, the affected key's reduced value without s.  Returns
        ``(per-sample {key: value-without-s}, full reduced map)``;
        a value of None means the key vanishes without s.
        """
        ctx = self.remaining.context
        reduced_remaining = dict(self.remaining.reduce_by_key(f).collect())
        b_remaining = ctx.broadcast(reduced_remaining)

        sampled_by_key: Dict[K, List[V]] = {}
        for key, value in self.sampled:
            sampled_by_key.setdefault(key, []).append(value)
        b_sampled = ctx.broadcast(sampled_by_key)

        def key_value_without(key: K, skip_index: int) -> Optional[V]:
            acc: Optional[V] = b_remaining.value.get(key)
            for i, value in enumerate(b_sampled.value.get(key, [])):
                if i == skip_index:
                    continue
                acc = value if acc is None else f(acc, value)
            return acc

        neighbour_maps: List[Dict[K, Optional[V]]] = []
        position_in_key: Dict[K, int] = {}
        for key, _value in self.sampled:
            idx = position_in_key.get(key, 0)
            position_in_key[key] = idx + 1
            neighbour_maps.append({key: key_value_without(key, idx)})

        full: Dict[K, V] = dict(reduced_remaining)
        for key, values in sampled_by_key.items():
            acc: Optional[V] = full.get(key)
            for value in values:
                acc = value if acc is None else f(acc, value)
            full[key] = acc  # type: ignore[assignment]
        return (neighbour_maps, full)

    def join_dp(self, other: "DPObjectKV") -> "JoinDPResult":
        """Table I ``joinDP`` (section V-C).

        Performs two rounds of join/shuffle: S'1 x S'2 on the engine
        (round one), then the differing combinations S1 x S'2, S'1 x S2
        and S1 x S2 (round two).  Differing tuples are indexed so the
        influence of each sampled record on the joined output is
        tracked exactly.
        """
        ctx = self.remaining.context
        # Round one: join of the remaining (overlapped) records.
        remaining_join = self.remaining.join(other.remaining)

        # Round two: joins involving sampled (differing) records.
        left_sampled = ctx.parallelize(
            [(k, (i, v)) for i, (k, v) in enumerate(self.sampled)], 1
        )
        right_sampled = ctx.parallelize(
            [(k, (j, w)) for j, (k, w) in enumerate(other.sampled)], 1
        )
        ls_rr = left_sampled.join(other.remaining).map(
            lambda kv: (kv[0], (kv[1][0][0], None, kv[1][0][1], kv[1][1]))
        )
        rr_rs = self.remaining.join(right_sampled).map(
            lambda kv: (kv[0], (None, kv[1][1][0], kv[1][0], kv[1][1][1]))
        )
        ls_rs = left_sampled.join(right_sampled).map(
            lambda kv: (
                kv[0],
                (kv[1][0][0], kv[1][1][0], kv[1][0][1], kv[1][1][1]),
            )
        )
        differing = ctx.union([ls_rr, rr_rs, ls_rs]).collect()
        return JoinDPResult(remaining_join, differing)


class JoinDPResult:
    """Output of joinDP: overlapped join RDD + indexed differing tuples.

    ``differing`` entries are ``(key, (left_index, right_index, v, w))``
    where an index is None when that side's tuple is an overlapped
    (non-sampled) record.
    """

    def __init__(self, remaining_join: RDD, differing: List):
        self.remaining_join = remaining_join
        self.differing = differing

    def influence_of_left(self, index: int) -> List:
        """Joined tuples that vanish if left sampled record ``index`` is removed."""
        return [d for d in self.differing if d[1][0] == index]

    def influence_of_right(self, index: int) -> List:
        """Joined tuples that vanish if right sampled record ``index`` is removed."""
        return [d for d in self.differing if d[1][1] == index]

    def count(self) -> int:
        """Total joined tuples (overlapped + differing)."""
        return self.remaining_join.count() + len(self.differing)
