"""Phase 4 of UPA: local-sensitivity inference (Algorithm 1, l.17-21).

Given the outputs of the query on the sampled neighbouring datasets
({o_i} for removals, {o-bar_i} for additions), UPA fits a normal
distribution per output coordinate by MLE and takes low/high percentiles
as the inferred output range; the local sensitivity is the (L1) width
of that range.

Two refinements over the paper's bare description, both selectable:

* **population extrapolation** (default on): the paper's fixed 1st/99th
  percentiles estimate where ~98 % of *sampled* neighbours fall, but the
  ground-truth local sensitivity (Definition II.1) is a max over *all*
  |x| neighbours.  With ``extrapolate=True`` the percentile level is
  set to the expected extreme of ``population`` draws from the fitted
  normal (level 1/(2(N+1))), which is what makes UPA's estimate land
  within a few percent of the brute-force value, as Figure 2(a) reports.
* **discrete fallback** (default on): when a coordinate's sampled
  outputs take only a few distinct values (counting queries: TPCH1's
  neighbours are exactly {C-1, C+1}), a normal fit is meaningless and
  grossly over-covers; the empirical min/max is exact there.  This is
  why the paper's TPCH1 error is ~1e-9 rather than ~2x.

Both off reproduces Algorithm 1 verbatim (the Fig. 3 bench compares the
estimators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.common.errors import DPError


@dataclass(frozen=True)
class InferenceConfig:
    """Knobs for the sensitivity inference step.

    Attributes:
        percentile_low/high: percentile pair from the paper (1, 99),
            used when ``extrapolate`` is off.
        extrapolate: extend percentiles to the population size (see
            module docstring).
        discrete_fallback: use empirical min/max for near-discrete
            coordinates.
        discrete_distinct_threshold: max distinct values for a
            coordinate to count as discrete.
        envelope: widen the range to cover every *sampled* neighbour
            output.  The sampled outputs are genuine neighbour outputs,
            so a range excluding them would make RANGE ENFORCER clamp
            legitimate answers; the envelope also rescues heavy-tailed
            coordinates the normal fit under-covers.
    """

    percentile_low: float = 1.0
    percentile_high: float = 99.0
    extrapolate: bool = True
    discrete_fallback: bool = True
    discrete_distinct_threshold: int = 10
    envelope: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile_low < self.percentile_high < 100.0:
            raise DPError(
                f"invalid percentile pair "
                f"({self.percentile_low}, {self.percentile_high})"
            )


@dataclass(frozen=True)
class InferredRange:
    """The inferred output range and local sensitivity.

    Attributes:
        lower/upper: per-coordinate range bounds (RANGE ENFORCER clamps
            outputs into [lower, upper]).
        local_sensitivity: L1 width sum(upper - lower); for scalar
            outputs this is simply the range width.
        mean/std: the MLE normal fit per coordinate.
        used_fallback: mask of coordinates where the discrete fallback
            applied.
    """

    lower: np.ndarray
    upper: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    used_fallback: np.ndarray

    @property
    def local_sensitivity(self) -> float:
        return float(np.sum(self.upper - self.lower))

    def clamp(self, value: np.ndarray) -> np.ndarray:
        """Clamp a value into the range (used for reporting; RANGE
        ENFORCER replaces out-of-range outputs with a random in-range
        value, see Algorithm 2 l.17-18)."""
        return np.clip(np.asarray(value, dtype=float), self.lower, self.upper)

    def contains(self, value: np.ndarray) -> bool:
        value = np.asarray(value, dtype=float)
        return bool(np.all(value >= self.lower) and np.all(value <= self.upper))

    def coverage(self, outputs: np.ndarray) -> float:
        """Fraction of output rows fully inside the range (Fig. 3 metric)."""
        outputs = np.atleast_2d(np.asarray(outputs, dtype=float))
        inside = np.all(
            (outputs >= self.lower) & (outputs <= self.upper), axis=1
        )
        return float(np.mean(inside))

    def max_deviation(self, center: np.ndarray) -> float:
        """Largest L1 move from ``center`` to a range corner.

        For ``center = f(x)`` this is the inferred bound on
        ``max_y |f(x) - f(y)|`` — the quantity Definition II.1 defines
        and the Fig. 2(a) comparison uses (the range *width* double
        counts when the neighbour outputs straddle f(x) symmetrically).
        """
        center = np.asarray(center, dtype=float).reshape(-1)
        per_coord = np.maximum(self.upper - center, center - self.lower)
        return float(np.sum(np.maximum(per_coord, 0.0)))


def infer_local_sensitivity(
    neighbour_outputs: np.ndarray,
    center: np.ndarray,
    population: int,
    config: Optional[InferenceConfig] = None,
) -> float:
    """Estimate Definition II.1's local sensitivity from sampled neighbours.

    The paper treats local sensitivity "as a random variable that
    follows a normal distribution" (section IV-A): here that variable is
    the per-neighbour L1 deviation ``delta_i = |f(x) - f(y_i)|_1``.  A
    normal is fitted to the sampled deltas by MLE and the estimate is
    its extreme upper quantile (extrapolated to the population size,
    like :func:`infer_output_range`), with the same discrete fallback
    and never below the largest sampled delta.

    This scalar estimate is what the Fig. 2(a) accuracy comparison uses;
    the *mechanism* keeps using the (conservative) output-range width,
    which RANGE ENFORCER makes a guaranteed upper bound.
    """
    config = config or InferenceConfig()
    outputs = np.atleast_2d(np.asarray(neighbour_outputs, dtype=float))
    if outputs.size == 0:
        raise DPError("cannot infer sensitivity from zero neighbour outputs")
    center = np.asarray(center, dtype=float).reshape(-1)
    deltas = np.abs(outputs - center).sum(axis=1)

    distinct = np.unique(deltas)
    if (
        config.discrete_fallback
        and distinct.shape[0] <= config.discrete_distinct_threshold
    ):
        return float(deltas.max())

    mean = float(deltas.mean())
    std = float(deltas.std())
    if config.extrapolate:
        level = 1.0 / (2.0 * max(population, deltas.shape[0], 2))
        level = min(level, config.percentile_low / 100.0)
    else:
        level = config.percentile_low / 100.0
    z = float(stats.norm.ppf(1.0 - level))
    estimate = mean + z * std
    if config.envelope:
        estimate = max(estimate, float(deltas.max()))
    return float(estimate)


def infer_output_range(
    neighbour_outputs: np.ndarray,
    population: int,
    config: Optional[InferenceConfig] = None,
) -> InferredRange:
    """Fit per-coordinate normals and derive the output range.

    Args:
        neighbour_outputs: array of shape (m, d) — one row per sampled
            neighbouring dataset's output.
        population: number of neighbouring datasets in the full
            population (|x| removals + additions), used when
            extrapolating.
    """
    config = config or InferenceConfig()
    outputs = np.atleast_2d(np.asarray(neighbour_outputs, dtype=float))
    if outputs.size == 0:
        raise DPError("cannot infer a range from zero neighbour outputs")
    m, d = outputs.shape

    mean = outputs.mean(axis=0)
    std = outputs.std(axis=0)  # MLE (ddof=0)

    if config.extrapolate:
        level = 1.0 / (2.0 * max(population, m, 2))
        level = min(level, config.percentile_low / 100.0)
    else:
        level = config.percentile_low / 100.0
    z = float(stats.norm.ppf(1.0 - level))

    lower = mean - z * std
    upper = mean + z * std

    used_fallback = np.zeros(d, dtype=bool)
    if config.discrete_fallback:
        for j in range(d):
            distinct = np.unique(outputs[:, j])
            if distinct.shape[0] <= config.discrete_distinct_threshold:
                lower[j] = distinct.min()
                upper[j] = distinct.max()
                used_fallback[j] = True

    if config.envelope:
        lower = np.minimum(lower, outputs.min(axis=0))
        upper = np.maximum(upper, outputs.max(axis=0))

    return InferredRange(
        lower=lower, upper=upper, mean=mean, std=std, used_fallback=used_fallback
    )
