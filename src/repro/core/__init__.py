"""UPA core: the paper's primary contribution.

* :mod:`repro.core.query` — the Mapper/Reducer (monoid) decomposition
  of a big-data query that UPA's reuse trick requires.
* :mod:`repro.core.sampling` — Partition & Sample (phase 1).
* :mod:`repro.core.inference` — Algorithm 1: sampled neighbour outputs,
  MLE normal fit, percentile output range, local sensitivity.
* :mod:`repro.core.range_enforcer` — Algorithm 2: cross-query registry,
  attack detection via per-partition outputs, output clamping.
* :mod:`repro.core.session` — UPASession: the end-to-end pipeline
  returning noisy outputs under epsilon-iDP.
* :mod:`repro.core.dpobject` — the Spark-compatible operator API of
  Table I (dpread / DPObject / DPObjectKV).
"""

from repro.core.query import MapReduceQuery, QueryOutput
from repro.core.session import UPAConfig, UPAResult, UPASession

__all__ = [
    "MapReduceQuery",
    "QueryOutput",
    "UPAConfig",
    "UPAResult",
    "UPASession",
]
