"""Vectorized batch kernels shared by the built-in workloads.

The batched monoid protocol (:class:`repro.core.query.MapReduceQuery`)
defaults to looping over the scalar methods; this module supplies the
numpy kernels the hot paths actually run:

* :func:`leave_one_out` — the prefix/suffix fold trick as two cumulative
  sums, so all n "fold everything except element i" aggregates cost a
  few array passes instead of 2n Python-level combines;
* :class:`ScalarSumBatch` — a drop-in mixin implementing the whole
  batched protocol for any query whose monoid is scalar addition (the
  seven TPC-H queries, every sqlbridge-compiled COUNT/SUM, grouped
  per-group queries).

Kernel equivalence is a correctness surface, not a nicety: UPA's
released outputs flow through these folds, so the kernels reproduce the
*same association order* as the scalar path (``np.cumsum`` accumulates
sequentially, exactly like the Python prefix/suffix loops).  The
batched results are therefore bitwise-identical for sum monoids — the
golden-regression seeds do not move — and ``validate_monoid`` plus the
UPA010 lint guard the contract for third-party kernels.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.query import Row


def column_values(
    records: Sequence[Row], name: str, dtype: Any = float
) -> np.ndarray:
    """One column of a record batch as a numpy array.

    Handles both layouts a ``map_batch`` may receive: a
    :class:`~repro.engine.columnar.ColumnarPartition` hands back its
    column buffer directly (zero-copy for numeric columns — no per-row
    dict is ever built), while a plain row sequence gathers the field
    from each dict.  ``dtype=None`` keeps native values as an object
    array (dates, strings, ``None``-bearing columns).
    """
    column = getattr(records, "numpy_column", None)
    if column is not None:
        values = column(name)
        if dtype is not None and values.dtype != np.dtype(dtype):
            values = values.astype(dtype)
        return values
    if dtype is None:
        out = np.empty(len(records), dtype=object)
        for i, record in enumerate(records):
            out[i] = record[name]
        return out
    return np.asarray([record[name] for record in records], dtype=dtype)


def leave_one_out(stacked: np.ndarray) -> np.ndarray:
    """All-but-one sequential sums of ``stacked`` along axis 0.

    ``out[i] = fold(stacked minus row i)`` where the fold is the same
    left-to-right (prefix) and right-to-left (suffix) accumulation the
    scalar prefix/suffix loops perform, so results match them bitwise.
    """
    stacked = np.asarray(stacked)
    n = stacked.shape[0]
    if n == 0:
        return stacked.copy()
    zeros = np.zeros((1,) + stacked.shape[1:], dtype=stacked.dtype)
    forward = np.cumsum(stacked, axis=0)
    prefix = np.concatenate([zeros, forward[:-1]], axis=0)
    backward = np.cumsum(stacked[::-1], axis=0)[::-1]
    suffix = np.concatenate([backward[1:], zeros], axis=0)
    return prefix + suffix


def sequential_sum(stacked: np.ndarray, zero: Any) -> Any:
    """Fold a stacked batch along axis 0 in sequential (cumsum) order.

    ``np.sum`` uses pairwise accumulation, which is *not* bitwise equal
    to the scalar fold; ``np.cumsum`` is, and the last entry is the
    full fold.
    """
    stacked = np.asarray(stacked)
    if stacked.shape[0] == 0:
        return zero
    return np.cumsum(stacked, axis=0)[-1]


class ScalarSumBatch:
    """Batched protocol for queries whose monoid is scalar ``+``.

    Mix into any :class:`~repro.core.query.MapReduceQuery` subclass with
    ``zero() == 0.0`` and ``combine(a, b) == a + b``; the batch layout
    is a float64 ndarray of shape ``(n,)``.  ``map_batch`` still calls
    ``map_record`` per row (mappers are usually aux-lookup bound);
    subclasses with columnar inputs override it (see TPC-H Q1/Q6).
    """

    def map_batch(self, records: Sequence[Row], aux: Any) -> np.ndarray:
        return np.asarray(
            [self.map_record(record, aux) for record in records], dtype=float
        )

    def prefix_suffix_batch(self, elements: Any) -> np.ndarray:
        return leave_one_out(np.asarray(elements, dtype=float))

    def combine_batch(self, agg: Any, elements: Any) -> np.ndarray:
        return float(agg) + np.asarray(elements, dtype=float)

    def finalize_batch(self, aggs: Any, aux: Any) -> np.ndarray:
        return np.asarray(aggs, dtype=float).reshape(-1, 1)

    def fold_batch(self, elements: Any) -> float:
        total = sequential_sum(np.asarray(elements, dtype=float), 0.0)
        return float(total)
