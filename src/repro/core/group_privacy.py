"""Group privacy: the paper's section VI-E future-work extension.

UPA enforces iDP — privacy for one record.  The paper notes it "can be
extended to enforce DP for a group of individuals by reusing the
results computed from the sampled neighbouring datasets".  This module
does exactly that: instead of removing one sampled record at a time, it
removes *groups of k* sampled records, reusing the same R(M(S'))
aggregate, and infers a group-level sensitivity / output range with the
same estimator.  Noise calibrated to that range yields epsilon-DP
against adversaries who control up to k records.

For comparison it also exposes the classic theoretical route: an
epsilon-iDP mechanism is (k * epsilon)-DP for groups of k, i.e. one can
divide epsilon by k instead of re-inferring (usually more noise than
the group-sampled range, since influences rarely stack adversarially
among *sampled* groups — the envelope still guards the release).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.errors import DPError
from repro.common.rng import derive_seed, make_rng
from repro.core.inference import (
    InferenceConfig,
    InferredRange,
    infer_local_sensitivity,
    infer_output_range,
)
from repro.core.query import MapReduceQuery, Tables
from repro.core.sampling import partition_and_sample
from repro.dp.mechanisms import LaplaceMechanism


@dataclass
class GroupPrivacyResult:
    """Output of a group-private query.

    Attributes:
        noisy_output: the released value (noise covers groups of size k).
        plain_output: f(x) (not releasable).
        group_size: k.
        group_sensitivity: inferred width of the group-neighbour range.
        estimated_group_sensitivity: Definition II.1-style estimate at
            distance k.
        inferred_range: the group-neighbour output range.
        naive_sensitivity: k * (individual range width) — the classic
            composition bound, for comparison.
    """

    noisy_output: np.ndarray
    plain_output: np.ndarray
    group_size: int
    group_sensitivity: float
    estimated_group_sensitivity: float
    inferred_range: InferredRange
    naive_sensitivity: float


def sample_group_neighbour_outputs(
    query: MapReduceQuery,
    tables: Tables,
    group_size: int,
    num_groups: int = 1000,
    sample_size: int = 1000,
    seed: int = 0,
) -> np.ndarray:
    """Outputs of f on datasets with ``group_size`` records removed.

    Groups are drawn from the sampled differing records; each group's
    output reuses R(M(S')) plus a fold over S minus the group — the same
    union-preserving trick as the k = 1 case.
    """
    if group_size < 1:
        raise DPError(f"group_size must be >= 1, got {group_size}")
    records = tables[query.protected_table]
    if group_size >= len(records):
        raise DPError(
            f"group_size {group_size} >= dataset size {len(records)}"
        )
    rng = make_rng(seed, "group-privacy")
    sample = partition_and_sample(query, tables, sample_size, rng)
    if group_size > sample.sample_size:
        raise DPError(
            f"group_size {group_size} exceeds the sampled record count "
            f"{sample.sample_size}; raise sample_size"
        )
    aux = query.build_aux(tables)
    mapped_s = [query.map_record(r, aux) for r in sample.sampled]
    r_sprime = query.combine(
        query.fold(query.map_record(r, aux) for r in sample.remaining[0]),
        query.fold(query.map_record(r, aux) for r in sample.remaining[1]),
    )

    n = len(mapped_s)
    rows: List[np.ndarray] = []
    for _ in range(num_groups):
        group = set(rng.sample(range(n), group_size))
        rest = query.fold(
            m for i, m in enumerate(mapped_s) if i not in group
        )
        rows.append(query.finalize(query.combine(r_sprime, rest), aux))
    return np.vstack(rows)


def run_group_private_query(
    query: MapReduceQuery,
    tables: Tables,
    epsilon: float,
    group_size: int,
    num_groups: int = 1000,
    sample_size: int = 1000,
    seed: int = 0,
    inference: Optional[InferenceConfig] = None,
) -> GroupPrivacyResult:
    """Answer ``query`` with DP protection for groups of ``group_size``."""
    if epsilon <= 0:
        raise DPError(f"epsilon must be positive, got {epsilon}")
    inference = inference or InferenceConfig()

    outputs = sample_group_neighbour_outputs(
        query, tables, group_size, num_groups, sample_size, seed
    )
    plain = query.output(tables)
    population = len(tables[query.protected_table])
    inferred = infer_output_range(outputs, population, inference)
    # include f(x) itself in the enforced range
    lower = np.minimum(inferred.lower, plain)
    upper = np.maximum(inferred.upper, plain)
    inferred = InferredRange(
        lower=lower, upper=upper, mean=inferred.mean, std=inferred.std,
        used_fallback=inferred.used_fallback,
    )
    estimated = infer_local_sensitivity(outputs, plain, population, inference)

    individual = infer_output_range(
        sample_group_neighbour_outputs(
            query, tables, 1, num_groups, sample_size, seed
        ),
        population,
        inference,
    )
    naive = group_size * individual.local_sensitivity

    mechanism = LaplaceMechanism(
        epsilon, seed=derive_seed(seed, "group-laplace")
    )
    noisy = mechanism.randomize(
        inferred.clamp(plain), inferred.local_sensitivity
    )
    return GroupPrivacyResult(
        noisy_output=np.asarray(noisy, dtype=float).reshape(-1),
        plain_output=plain,
        group_size=group_size,
        group_sensitivity=inferred.local_sensitivity,
        estimated_group_sensitivity=estimated,
        inferred_range=inferred,
        naive_sensitivity=naive,
    )


def group_epsilon_from_individual(epsilon: float, group_size: int) -> float:
    """Classic group-privacy composition: eps-iDP => (k*eps)-DP for k."""
    if epsilon <= 0 or group_size < 1:
        raise DPError("epsilon must be positive and group_size >= 1")
    return epsilon * group_size
