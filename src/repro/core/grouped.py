"""Grouped releases: DP histograms via per-group UPA queries.

SQL ``GROUP BY`` cannot be released as-is (the group *keys* themselves
can leak, and a single record moves one group's aggregate).  The
standard practice, implemented here: the analyst supplies a **public
domain** of groups (e.g. the five TPC-H order priorities — schema
knowledge, not data), each group becomes one scalar counting/sum query,
and UPA answers each under an equal share of the submission's epsilon.

Because neighbouring datasets differ in one protected record and each
record belongs to exactly one group, the per-group queries *partition*
the record's influence: by parallel composition the whole histogram
costs ``epsilon`` (not ``epsilon * num_groups``) when groups are
disjoint, which :func:`release_histogram` asserts by construction
(each record is mapped to exactly one group by ``group_of``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.common.errors import DPError
from repro.core.batch import ScalarSumBatch
from repro.core.query import MapReduceQuery, Row, Tables
from repro.core.session import UPAConfig, UPASession

GroupOf = Callable[[Row], Hashable]
ValueOf = Callable[[Row], float]


class GroupSliceQuery(ScalarSumBatch, MapReduceQuery):
    """A scalar query restricted to one group of the protected table."""

    output_dim = 1

    def __init__(
        self,
        base_name: str,
        protected_table: str,
        group: Hashable,
        group_of: GroupOf,
        value_of: Optional[ValueOf],
        domain_sampler,
    ):
        self.name = f"{base_name}[{group!r}]"
        self.protected_table = protected_table
        self.group = group
        self._group_of = group_of
        self._value_of = value_of
        self._domain_sampler = domain_sampler

    def map_record(self, record: Row, aux: Any) -> float:
        if self._group_of(record) != self.group:
            return 0.0
        if self._value_of is None:
            return 1.0
        return float(self._value_of(record))

    def zero(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        return np.asarray([agg], dtype=float)

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return self._domain_sampler(rng, tables)


@dataclass
class HistogramResult:
    """A released DP histogram.

    Attributes:
        released: group -> noisy aggregate.
        true_values: group -> true aggregate (evaluation only!).
        epsilon: total budget spent (parallel composition over disjoint
            groups).
        per_group_sensitivity: group -> inferred sensitivity.
    """

    released: Dict[Hashable, float]
    true_values: Dict[Hashable, float]
    epsilon: float
    per_group_sensitivity: Dict[Hashable, float]


def release_histogram(
    tables: Tables,
    protected_table: str,
    groups: Sequence[Hashable],
    group_of: GroupOf,
    epsilon: float,
    value_of: Optional[ValueOf] = None,
    domain_sampler=None,
    name: str = "histogram",
    sample_size: int = 500,
    seed: int = 0,
) -> HistogramResult:
    """Release a per-group count (or sum) histogram under epsilon-DP.

    Args:
        groups: the public group domain; groups absent from the data
            are still released (as noise around zero) — suppressing
            empty groups would leak.
        group_of: maps a protected record to its group (a record in no
            listed group contributes nowhere).
        value_of: None for counts, or a per-record value for sums.
        epsilon: total budget; by parallel composition each group's
            query runs at the full epsilon.
    """
    if epsilon <= 0:
        raise DPError(f"epsilon must be positive, got {epsilon}")
    if len(set(groups)) != len(groups):
        raise DPError("group domain contains duplicates")

    released: Dict[Hashable, float] = {}
    truths: Dict[Hashable, float] = {}
    sensitivities: Dict[Hashable, float] = {}
    for i, group in enumerate(groups):
        query = GroupSliceQuery(
            name, protected_table, group, group_of, value_of, domain_sampler
        )
        session = UPASession(
            UPAConfig(sample_size=sample_size, seed=seed * 1009 + i)
        )
        result = session.run(query, tables, epsilon=epsilon)
        released[group] = result.noisy_scalar()
        truths[group] = float(result.plain_output[0])
        sensitivities[group] = result.local_sensitivity
    return HistogramResult(
        released=released,
        true_values=truths,
        epsilon=epsilon,
        per_group_sensitivity=sensitivities,
    )
