"""Noise mechanisms.

UPA uses the Laplace mechanism (paper, Algorithm 1 output line); the
Gaussian mechanism is included as an extension for (epsilon, delta)
accounting.  All mechanisms accept scalar or vector outputs; vectors
are noised per-coordinate with the sensitivity interpreted as an
L1 bound (Laplace) or L2 bound (Gaussian).
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.common.errors import DPError
from repro.common.rng import make_numpy_rng

ArrayLike = Union[float, np.ndarray]


def laplace_noise(
    scale: float, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> ArrayLike:
    """Draw Laplace(0, scale) noise; scalar when ``size`` is None."""
    if scale < 0:
        raise DPError(f"Laplace scale must be non-negative, got {scale}")
    generator = rng if rng is not None else make_numpy_rng(None)
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    return generator.laplace(0.0, scale, size=size)


class LaplaceMechanism:
    """epsilon-DP Laplace mechanism.

    Example:
        >>> mech = LaplaceMechanism(epsilon=1.0, seed=0)
        >>> noisy = mech.randomize(42.0, sensitivity=1.0)
    """

    def __init__(self, epsilon: float, seed: Optional[int] = None):
        if epsilon <= 0:
            raise DPError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon
        self._rng = make_numpy_rng(seed, "laplace-mechanism")

    def scale(self, sensitivity: float) -> float:
        """Noise scale b = sensitivity / epsilon."""
        if sensitivity < 0:
            raise DPError(f"sensitivity must be non-negative, got {sensitivity}")
        return sensitivity / self.epsilon

    def randomize(self, value: ArrayLike, sensitivity: float) -> ArrayLike:
        """Add Laplace noise calibrated to an L1 ``sensitivity``."""
        b = self.scale(sensitivity)
        if np.isscalar(value):
            return float(value) + float(laplace_noise(b, rng=self._rng))
        array = np.asarray(value, dtype=float)
        return array + laplace_noise(b, size=array.shape[0], rng=self._rng)


class GaussianMechanism:
    """(epsilon, delta)-DP Gaussian mechanism (analytic classic form).

    sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon, valid for
    epsilon in (0, 1).
    """

    def __init__(self, epsilon: float, delta: float, seed: Optional[int] = None):
        if not 0 < epsilon < 1:
            raise DPError(f"Gaussian mechanism requires 0 < epsilon < 1, got {epsilon}")
        if not 0 < delta < 1:
            raise DPError(f"delta must be in (0, 1), got {delta}")
        self.epsilon = epsilon
        self.delta = delta
        self._rng = make_numpy_rng(seed, "gaussian-mechanism")

    def sigma(self, sensitivity: float) -> float:
        if sensitivity < 0:
            raise DPError(f"sensitivity must be non-negative, got {sensitivity}")
        return sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.epsilon

    def randomize(self, value: ArrayLike, sensitivity: float) -> ArrayLike:
        """Add Gaussian noise calibrated to an L2 ``sensitivity``."""
        sigma = self.sigma(sensitivity)
        if np.isscalar(value):
            return float(value) + float(self._rng.normal(0.0, sigma))
        array = np.asarray(value, dtype=float)
        return array + self._rng.normal(0.0, sigma, size=array.shape[0])
