"""Differential-privacy foundations: mechanisms, sensitivity, budget.

These are the textbook building blocks UPA composes: Laplace/Gaussian
noise calibrated to a sensitivity value, and an epsilon accountant with
sequential composition.
"""

from repro.dp.budget import PrivacyAccountant
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism, laplace_noise
from repro.dp.sensitivity import SensitivityEstimate

__all__ = [
    "GaussianMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "SensitivityEstimate",
    "laplace_noise",
]
