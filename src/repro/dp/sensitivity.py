"""Sensitivity definitions and result containers.

Definitions follow the paper's section II-A:

* **global sensitivity** — max |f(x) - f(y)| over *all* neighbouring
  pairs in the query's domain;
* **local sensitivity** — max |f(x) - f(y)| over neighbours y of the
  *actual* input x (Definition II.1); UPA infers this;
* **smooth sensitivity** — a beta-smoothed upper envelope of local
  sensitivity at all distances (Nissim et al.), used by FLEX.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SensitivityEstimate:
    """A sensitivity value plus provenance for reporting.

    Attributes:
        value: the (scalar, L1) sensitivity.
        kind: 'local', 'global', or 'smooth'.
        method: which system produced it ('upa', 'flex', 'bruteforce', 'manual').
        detail: free-form notes (e.g. FLEX's per-join stability factors).
    """

    value: float
    kind: str = "local"
    method: str = "manual"
    detail: str = ""

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"sensitivity must be non-negative, got {self.value}")
        if self.kind not in ("local", "global", "smooth"):
            raise ValueError(f"unknown sensitivity kind {self.kind!r}")


def smooth_sensitivity(
    local_at_distance: Sequence[float], beta: float
) -> float:
    """Beta-smooth sensitivity: max_k exp(-beta * k) * LS_k.

    ``local_at_distance[k]`` is the local sensitivity at Hamming
    distance k from the input dataset.
    """
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    best = 0.0
    for k, ls_k in enumerate(local_at_distance):
        best = max(best, math.exp(-beta * k) * ls_k)
    return best


def l1_range_width(lower: np.ndarray, upper: np.ndarray) -> float:
    """L1 width of a per-coordinate output range (UPA's vector sensitivity)."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape:
        raise ValueError(f"range bounds shape mismatch: {lower.shape} vs {upper.shape}")
    if np.any(upper < lower):
        raise ValueError("upper bound below lower bound")
    return float(np.sum(upper - lower))
