"""Privacy budget accounting (sequential composition)."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.errors import DPError, PrivacyBudgetExceeded


@dataclass
class _Charge:
    epsilon: float
    delta: float
    label: str


class PrivacyAccountant:
    """Tracks cumulative (epsilon, delta) spend under sequential composition.

    Example:
        >>> acct = PrivacyAccountant(total_epsilon=1.0)
        >>> acct.charge(0.4, label="q1")
        >>> acct.remaining_epsilon()
        0.6
    """

    def __init__(self, total_epsilon: float, total_delta: float = 0.0):
        if total_epsilon <= 0:
            raise DPError(f"total_epsilon must be positive, got {total_epsilon}")
        if total_delta < 0:
            raise DPError(f"total_delta must be non-negative, got {total_delta}")
        self.total_epsilon = total_epsilon
        self.total_delta = total_delta
        self._lock = threading.Lock()
        self._charges: List[_Charge] = []

    def spent(self) -> Tuple[float, float]:
        with self._lock:
            return (
                sum(c.epsilon for c in self._charges),
                sum(c.delta for c in self._charges),
            )

    def remaining_epsilon(self) -> float:
        return self.total_epsilon - self.spent()[0]

    def remaining_delta(self) -> float:
        return self.total_delta - self.spent()[1]

    def charge(self, epsilon: float, delta: float = 0.0, label: str = "") -> None:
        """Record a query's spend; raises if the budget would be exceeded."""
        if epsilon <= 0:
            raise DPError(f"charged epsilon must be positive, got {epsilon}")
        if delta < 0:
            raise DPError(f"charged delta must be non-negative, got {delta}")
        with self._lock:
            spent_eps = sum(c.epsilon for c in self._charges)
            spent_delta = sum(c.delta for c in self._charges)
            if spent_eps + epsilon > self.total_epsilon + 1e-12:
                raise PrivacyBudgetExceeded(epsilon, self.total_epsilon - spent_eps)
            if spent_delta + delta > self.total_delta + 1e-15:
                raise PrivacyBudgetExceeded(delta, self.total_delta - spent_delta)
            self._charges.append(_Charge(epsilon, delta, label))

    def history(self) -> List[Tuple[float, float, str]]:
        with self._lock:
            return [(c.epsilon, c.delta, c.label) for c in self._charges]
