"""Privacy budget accounting (sequential composition)."""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import DPError, PrivacyBudgetExceeded


def _validate(epsilon: float, delta: float, *, what: str) -> None:
    """Shared epsilon/delta validation (positive/finite, delta in range)."""
    if not (isinstance(epsilon, (int, float)) and math.isfinite(epsilon)):
        raise DPError(f"{what} epsilon must be finite, got {epsilon!r}")
    if epsilon <= 0:
        raise DPError(f"{what} epsilon must be positive, got {epsilon}")
    if not (isinstance(delta, (int, float)) and math.isfinite(delta)):
        raise DPError(f"{what} delta must be finite, got {delta!r}")
    if delta < 0:
        raise DPError(f"{what} delta must be non-negative, got {delta}")


@dataclass
class _Charge:
    epsilon: float
    delta: float
    label: str


class PrivacyAccountant:
    """Tracks cumulative (epsilon, delta) spend under sequential composition.

    Example:
        >>> acct = PrivacyAccountant(total_epsilon=1.0)
        >>> acct.charge(0.4, label="q1")
        >>> acct.remaining_epsilon()
        0.6
    """

    def __init__(self, total_epsilon: float, total_delta: float = 0.0):
        _validate(total_epsilon, total_delta, what="total")
        self.total_epsilon = total_epsilon
        self.total_delta = total_delta
        self._lock = threading.Lock()
        self._charges: List[_Charge] = []

    def _spent_locked(self) -> Tuple[float, float]:
        """(epsilon, delta) spent so far; caller must hold the lock."""
        return (
            sum(c.epsilon for c in self._charges),
            sum(c.delta for c in self._charges),
        )

    def spent(self) -> Tuple[float, float]:
        with self._lock:
            return self._spent_locked()

    def remaining_epsilon(self) -> float:
        return self.total_epsilon - self.spent()[0]

    def remaining_delta(self) -> float:
        return self.total_delta - self.spent()[1]

    def charge(self, epsilon: float, delta: float = 0.0, label: str = "") -> None:
        """Record a query's spend; raises if the budget would be exceeded."""
        _validate(epsilon, delta, what="charged")
        with self._lock:
            spent_eps, spent_delta = self._spent_locked()
            if spent_eps + epsilon > self.total_epsilon + 1e-12:
                raise PrivacyBudgetExceeded(epsilon, self.total_epsilon - spent_eps)
            if spent_delta + delta > self.total_delta + 1e-15:
                raise PrivacyBudgetExceeded(delta, self.total_delta - spent_delta)
            self._charges.append(_Charge(epsilon, delta, label))

    def history(self) -> List[Tuple[float, float, str]]:
        with self._lock:
            return [(c.epsilon, c.delta, c.label) for c in self._charges]

    def describe(self) -> dict:
        """One consistent JSON-friendly balance snapshot.

        Used by the observability layer (the ``/budget`` endpoint and
        the budget burn-rate alert): total/spent/remaining epsilon and
        delta plus the number of charged queries, all read under one
        lock acquisition so the numbers are mutually consistent.
        """
        with self._lock:
            spent_eps, spent_delta = self._spent_locked()
            queries = len(self._charges)
        return {
            "total_epsilon": self.total_epsilon,
            "spent_epsilon": spent_eps,
            "remaining_epsilon": self.total_epsilon - spent_eps,
            "total_delta": self.total_delta,
            "spent_delta": spent_delta,
            "remaining_delta": self.total_delta - spent_delta,
            "queries": queries,
        }

    def __repr__(self) -> str:
        with self._lock:
            spent_eps, spent_delta = self._spent_locked()
            queries = len(self._charges)
        parts = [
            f"spent_epsilon={spent_eps:g}/{self.total_epsilon:g}",
            f"remaining_epsilon={self.total_epsilon - spent_eps:g}",
        ]
        if self.total_delta or spent_delta:
            parts.append(
                f"spent_delta={spent_delta:g}/{self.total_delta:g}"
            )
        parts.append(f"queries={queries}")
        return f"<PrivacyAccountant {' '.join(parts)}>"
