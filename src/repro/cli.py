"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the nine evaluated workloads and their properties.
* ``run`` — answer one workload under epsilon-iDP and print the result.
* ``run-sql`` — answer an ad-hoc SQL counting/sum query over a
  generated TPC-H dataset (compiled by the provenance bridge).
* ``compare`` — UPA vs FLEX vs brute force sensitivities for one
  workload.
* ``report`` — render the per-phase time breakdown and privacy-ledger
  summary from trace/ledger/profile artifacts written by ``run``/
  ``compare``.
* ``serve`` — stand up the live-monitoring endpoints over artifacts
  written by an earlier run (the ledger is replayed through the alert
  rules, so ``/healthz`` reflects what would have fired; a
  ``--timeseries`` artifact is served at /timeseries + /dashboard).
* ``watch`` — refreshing terminal view of a live monitored session
  (polls ``/timeseries`` + ``/healthz``) or a one-shot replay of a
  ``--timeseries`` artifact through the windowed alert rules.
* ``lint`` — the upalint static analyzer: query purity, plan
  stability, and budget-flow diagnostics over the built-in workloads
  and/or analyst scripts; exits non-zero on error-severity findings.

Observability is opt-in and documented in ``docs/observability.md``:
``--trace`` writes a Chrome trace-event JSON (load in
``chrome://tracing``), ``--ledger`` writes the append-only privacy
audit ledger as JSONL, ``--events`` installs a job listener and prints
the engine's per-job event log, ``--serve PORT`` exposes /metrics,
/healthz, /ledger, /traces, /budget, /profile and /workers over HTTP
while the command runs (``--serve-grace`` keeps serving after it
finishes), and ``--profile PATH`` writes collapsed stacks from the
sampling profiler, and ``--timeseries PATH`` streams the sampled
metric time series (one JSONL line per tick) for ``repro report
--trend`` / ``repro watch``.  ``run``/``run-sql``/``compare`` take
``--backend``
and ``--max-workers`` to pick the engine's executor; with
``--backend processes`` all of the above still works — worker-side
spans, metrics and profiles are piggybacked back to the coordinator
(see "Cross-process telemetry" in the same doc).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.analysis import format_table
from repro.core import UPAConfig, UPASession


def _add_observability_args(parser: argparse.ArgumentParser,
                            ledger: bool = True) -> None:
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome trace-event JSON of the run to PATH",
    )
    if ledger:
        parser.add_argument(
            "--ledger", metavar="PATH",
            help="write the privacy audit ledger (JSONL) to PATH",
        )
    parser.add_argument(
        "--events", action="store_true",
        help="install a JobListener and print the engine job event log",
    )
    parser.add_argument(
        "--serve", metavar="PORT", type=int,
        help="serve live monitoring endpoints (/metrics /healthz "
        "/ledger /traces /budget /profile) on 127.0.0.1:PORT while "
        "the command runs; 0 picks an ephemeral port",
    )
    parser.add_argument(
        "--serve-grace", metavar="SECONDS", type=float, default=0.0,
        help="with --serve: keep serving this long after the command "
        "finishes (scrape window for CI and dashboards)",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="sample the run with the span-attributing profiler and "
        "write collapsed stacks (flamegraph.pl / speedscope format) "
        "to PATH",
    )
    parser.add_argument(
        "--profile-hz", metavar="HZ", type=float, default=100.0,
        help="profiler sampling rate (default: 100)",
    )
    parser.add_argument(
        "--timeseries", metavar="PATH",
        help="sample the metrics registry on every release and stream "
        "the time series to PATH (JSONL; replay with `repro report "
        "--trend` or `repro watch --timeseries`)",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=("inline", "threads", "processes"),
        default=None,
        help="executor backend for engine jobs (default: inline); "
        "processes runs partition tasks in a worker pool with "
        "cross-process telemetry when observability is on",
    )
    parser.add_argument(
        "--max-workers", metavar="N", type=int, default=4,
        help="pool size for the threads/processes backends (default: 4)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UPA (DSN 2020) reproduction: differentially private "
        "big-data mining",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine evaluated workloads")

    run = sub.add_parser("run", help="run one workload under epsilon-iDP")
    run.add_argument("workload", help="workload name, e.g. tpch6")
    run.add_argument("--scale", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--epsilon", type=float, default=0.1)
    run.add_argument("--sample-size", type=int, default=1000)
    run.add_argument(
        "--append", metavar="N", type=int, default=0,
        help="after the initial release, append N records per step via "
        "the incremental session path (each append is a fresh release "
        "charging --epsilon again)",
    )
    run.add_argument(
        "--append-steps", metavar="K", type=int, default=1,
        help="with --append: number of append steps (default: 1)",
    )
    _add_engine_args(run)
    _add_observability_args(run)

    sql = sub.add_parser(
        "run-sql", help="run an ad-hoc SQL query over generated TPC-H data"
    )
    sql.add_argument("query", help="SQL text (single COUNT/SUM)")
    sql.add_argument("--protect", required=True, help="protected table")
    sql.add_argument("--scale", type=int, default=20_000)
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument("--epsilon", type=float, default=0.1)
    _add_engine_args(sql)
    _add_observability_args(sql)

    cmp_parser = sub.add_parser(
        "compare", help="UPA vs FLEX vs brute-force sensitivity"
    )
    cmp_parser.add_argument("workload")
    cmp_parser.add_argument("--scale", type=int, default=20_000)
    cmp_parser.add_argument("--seed", type=int, default=0)
    _add_engine_args(cmp_parser)
    _add_observability_args(cmp_parser, ledger=False)

    report = sub.add_parser(
        "report",
        help="per-phase time breakdown + privacy ledger summary from "
        "artifacts written by run/compare",
    )
    report.add_argument(
        "--trace", metavar="PATH", help="Chrome trace JSON written by --trace"
    )
    report.add_argument(
        "--ledger", metavar="PATH", help="ledger JSONL written by --ledger"
    )
    report.add_argument(
        "--profile", metavar="PATH",
        help="collapsed-stack profile written by --profile (renders "
        "the per-span self-time table)",
    )
    report.add_argument(
        "--timeseries", metavar="PATH",
        help="time-series JSONL written by --timeseries (renders the "
        "per-series trend table)",
    )
    report.add_argument(
        "--trend", action="store_true",
        help="with --timeseries: replay the windowed alert rules over "
        "the artifact and include what would have fired",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    serve = sub.add_parser(
        "serve",
        help="serve the live-monitoring endpoints over run artifacts "
        "(the ledger is replayed through the alert rules)",
    )
    serve.add_argument(
        "--ledger", metavar="PATH",
        help="ledger JSONL to serve at /ledger and replay through the "
        "alert rules (drives /healthz)",
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="Chrome trace JSON to serve at /traces",
    )
    serve.add_argument(
        "--timeseries", metavar="PATH",
        help="time-series JSONL to serve at /timeseries and /dashboard "
        "(replayed through the windowed alert rules)",
    )
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (default: ephemeral)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve this long then exit (default: until ctrl-c)",
    )

    watch = sub.add_parser(
        "watch",
        help="refreshing terminal view of a live monitored session "
        "(or a one-shot replay of a --timeseries artifact)",
    )
    watch.add_argument(
        "--url", metavar="URL",
        help="base URL of a live observability server started with "
        "--serve, e.g. http://127.0.0.1:9464",
    )
    watch.add_argument(
        "--timeseries", metavar="PATH",
        help="replay a time-series JSONL artifact (render one frame "
        "with the windowed alert rules re-evaluated) instead of "
        "polling a server",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval with --url (default: 2)",
    )
    watch.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="render N frames then exit (default: until ctrl-c)",
    )
    watch.add_argument(
        "--series", action="append", metavar="NAME",
        help="series to display, repeatable (default: key series "
        "first, then the rest)",
    )
    watch.add_argument(
        "--no-clear", action="store_true",
        help="do not clear the screen between frames",
    )

    lint = sub.add_parser(
        "lint",
        help="static safety analysis (query purity, plan stability, "
        "budget flow)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="Python files/directories for the budget-flow pass "
        "(e.g. examples/)",
    )
    lint.add_argument(
        "--workload", action="append", dest="workloads", metavar="NAME",
        help="lint only this workload (repeatable; default: all nine)",
    )
    lint.add_argument(
        "--no-workloads", action="store_true",
        help="skip the built-in workload registry",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="machine-readable output (alias for --format json)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="output format (default: text; sarif for code-scanning "
        "upload)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="ratchet mode: filter findings recorded in FILE and fail "
        "only on new ones; a missing FILE is created from the current "
        "findings",
    )
    lint.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="skip this file/directory in the script passes "
        "(repeatable; e.g. deliberately-leaky lint fixtures)",
    )
    lint.add_argument(
        "--quiet", action="store_true",
        help="hide info-severity diagnostics in text output",
    )
    return parser


def _cmd_list() -> int:
    from repro.workloads import all_workloads

    rows = [
        [w.name, w.query_type, w.query.protected_table,
         "yes" if w.flex_supported else "no"]
        for w in all_workloads()
    ]
    print(format_table(
        ["workload", "type", "protected table", "FLEX support"], rows
    ))
    return 0


def _setup_observability(args, **config_fields):
    """(tracer, ledger) per the command's observability flags.

    Both artifacts share one self-describing header: repro + python
    versions plus the run configuration (epsilon, n, seed, ...).
    ``--serve`` and ``--profile`` need a live tracer even when no
    ``--trace`` artifact was requested (the ``/traces`` endpoint and
    the profiler's span attribution read it), and ``--serve`` needs an
    in-memory ledger for ``/ledger`` even when none is being written.
    """
    from repro.obs import PrivacyLedger, Tracer, run_header

    header = run_header(**config_fields)
    live = getattr(args, "serve", None) is not None
    want_tracer = (
        getattr(args, "trace", None) or live
        or getattr(args, "profile", None)
    )
    want_ledger = getattr(args, "ledger", None) or (
        live and hasattr(args, "ledger")
    )
    tracer = Tracer(header=header) if want_tracer else None
    ledger = PrivacyLedger(header=header) if want_ledger else None
    return tracer, ledger


def _make_engine(args, config):
    """EngineContext per ``--backend``/``--max-workers``, or None.

    None (no ``--backend`` flag) lets :class:`UPASession` build its
    default inline engine, exactly as before the flag existed.  The
    ``REPRO_PROCESS_START_METHOD`` environment variable forces the
    multiprocessing start method (CI uses ``spawn`` to exercise the
    non-fork telemetry path on Linux).
    """
    import os

    backend = getattr(args, "backend", None)
    if backend is None:
        return None
    from repro.common.config import EngineConfig
    from repro.engine.context import EngineContext

    return EngineContext(EngineConfig(
        backend=backend,
        max_workers=getattr(args, "max_workers", 4),
        default_parallelism=config.engine_partitions,
        process_start_method=(
            os.environ.get("REPRO_PROCESS_START_METHOD") or None
        ),
    ))


def _start_live(args, session):
    """Start --serve / --profile machinery; (server, profiler)."""
    profiler = None
    if getattr(args, "profile", None):
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler(hz=args.profile_hz).start()
        # The processes backend mirrors the driver profiler in each
        # worker (SpanContext.profile_hz) and merges the stacks back,
        # so the scheduler needs to know the profiler exists.
        session.engine.install_profiler(profiler)
    if getattr(args, "timeseries", None):
        # Attach before the first release so the artifact records the
        # whole history; every release ticks the store and appends one
        # JSONL line (--serve additionally starts the wall-clock
        # sampler in session.serve()).
        session.attach_timeseries().stream_to(args.timeseries)
    server = None
    if getattr(args, "serve", None) is not None:
        server = session.serve(port=args.serve, profiler=profiler)
        print(f"live monitoring on {server.url} (endpoints: /metrics "
              "/healthz /ledger /traces /budget /profile /workers "
              "/timeseries /dashboard)")
        sys.stdout.flush()
    elif session.ledger is not None and session.alert_engine is None:
        # No server, but alert rules still evaluate on every release
        # so the exit summary (and the ledger header) reflect firings.
        session.attach_alerts()
    return server, profiler


def _finish_live(args, session, server, profiler) -> None:
    """Stop --serve / --profile machinery and print exit summaries."""
    if profiler is not None:
        profiler.stop()
        profiler.write_collapsed(args.profile)
        print(f"profile written to {args.profile} "
              f"({profiler.sample_count} samples; collapsed-stack "
              "format, load at https://www.speedscope.app)")
    if server is not None:
        grace = getattr(args, "serve_grace", 0.0) or 0.0
        if grace > 0:
            import time

            print(f"serving for {grace:g}s more (--serve-grace); "
                  "ctrl-c to stop early")
            sys.stdout.flush()
            try:
                time.sleep(grace)
            except KeyboardInterrupt:
                pass
        server.stop()
    if session.alert_engine is not None:
        summary = session.alert_engine.summary()
        if summary:
            print(summary)
    # A process-backend job that cannot ship its closure falls back to
    # threads *silently correct* but operationally surprising — the
    # run the user asked to parallelize across processes did not.
    fallbacks = int(session.engine.metrics.get(
        session.engine.metrics.PROCESS_FALLBACKS
    ))
    if fallbacks:
        print(
            f"warning: {fallbacks} engine job(s) fell back from the "
            "processes backend to threads (unpicklable task closure); "
            "see process_fallbacks_total in /metrics",
            file=sys.stderr,
        )


def _emit_observability(args, engine, tracer, ledger) -> None:
    """Write the requested artifacts and print where they landed.

    ``--serve``/``--profile`` create an in-memory tracer (and possibly
    a ledger) without an output path, so each artifact is written only
    when its path flag was actually given.
    """
    if tracer is not None and getattr(args, "trace", None):
        tracer.write_chrome_trace(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(tracer)} spans; open in chrome://tracing)")
    if ledger is not None and getattr(args, "ledger", None):
        ledger.write_jsonl(args.ledger)
        print(f"privacy ledger written to {args.ledger} "
              f"({len(ledger)} entries)")
    store = getattr(engine, "timeseries", None)
    if store is not None and getattr(args, "timeseries", None):
        # stream_to already appended every tick; nothing left to flush.
        print(f"time series written to {args.timeseries} "
              f"({len(store.tick_times())} tick(s), "
              f"{len(store.names())} series)")
    if getattr(args, "events", False) and engine.job_listener is not None:
        print("job events:")
        print(engine.job_listener.summary())


def _install_events(args, engine) -> None:
    from repro.engine.events import JobListener

    if getattr(args, "events", False) and engine.job_listener is None:
        engine.install_job_listener(JobListener())


def _cmd_run(args) -> int:
    from repro.obs.tracing import use_tracer
    from repro.workloads import workload_by_name

    workload = workload_by_name(args.workload)
    append_n = max(0, args.append)
    append_steps = max(1, args.append_steps) if append_n else 0
    # Appended records come from generating the *grown* dataset once
    # and holding back the tail, so every step appends realistic rows.
    tables = workload.make_tables(
        args.scale + append_n * append_steps, args.seed
    )
    protected = workload.query.protected_table
    held_back = tables[protected][args.scale:]
    del tables[protected][args.scale:]
    tracer, ledger = _setup_observability(
        args, command="run", workload=args.workload, epsilon=args.epsilon,
        sample_size=args.sample_size, seed=args.seed, scale=args.scale,
    )
    config = UPAConfig(sample_size=args.sample_size, seed=args.seed)
    session = UPASession(
        config,
        engine=_make_engine(args, config),
        tracer=tracer,
        ledger=ledger,
    )
    _install_events(args, session.engine)
    server, profiler = _start_live(args, session)
    with use_tracer(tracer):
        result = session.run(workload.query, tables, epsilon=args.epsilon)
        for step in range(append_steps):
            chunk = held_back[step * append_n:(step + 1) * append_n]
            result = session.append(chunk, epsilon=args.epsilon)
            stats = session._last_incremental or {}
            print(
                f"append {step + 1}/{append_steps}: +{len(chunk)} records, "
                f"released in {result.elapsed_seconds:.3f}s "
                f"(delta fraction "
                f"{stats.get('delta_fraction', 1.0):.4f}, "
                f"{stats.get('records_reused', 0)} mapped records reused, "
                f"{stats.get('blocks_recomputed', 0)} block(s) recomputed)"
            )
    truth = workload.query.output(tables)
    rows = [
        ["true answer", truth[0] if truth.shape[0] == 1 else list(truth)],
        ["released (noisy)", result.noisy_scalar()
         if truth.shape[0] == 1 else list(result.noisy_output)],
        ["inferred sensitivity", result.local_sensitivity],
        ["epsilon", args.epsilon],
        ["sample size n", result.sample_size],
        ["elapsed seconds", result.elapsed_seconds],
    ]
    print(format_table(["field", "value"], rows))
    _emit_observability(args, session.engine, tracer, ledger)
    _finish_live(args, session, server, profiler)
    return 0


def _cmd_run_sql(args) -> int:
    from repro.tpch import TPCHConfig, TPCHGenerator
    from repro.tpch.queries import base as samplers

    tables = TPCHGenerator(
        TPCHConfig(scale_rows=args.scale, seed=args.seed)
    ).generate()
    domain_samplers = {
        "lineitem": samplers.random_lineitem,
        "orders": samplers.random_order,
        "customer": samplers.random_customer,
        "part": samplers.random_part,
        "partsupp": samplers.random_partsupp,
        "supplier": samplers.random_supplier,
    }
    sampler = domain_samplers.get(args.protect)
    if sampler is None:
        print(f"error: no domain sampler for table {args.protect!r}; "
              f"choose one of {sorted(domain_samplers)}", file=sys.stderr)
        return 2
    from repro.obs.tracing import use_tracer

    tracer, ledger = _setup_observability(
        args, command="run-sql", sql=args.query, epsilon=args.epsilon,
        sample_size=1000, seed=args.seed, scale=args.scale,
    )
    config = UPAConfig(sample_size=1000, seed=args.seed)
    session = UPASession(
        config, engine=_make_engine(args, config), tracer=tracer,
        ledger=ledger,
    )
    _install_events(args, session.engine)
    server, profiler = _start_live(args, session)
    with use_tracer(tracer):
        result = session.run_sql(
            args.query, tables, protected_table=args.protect,
            epsilon=args.epsilon, domain_sampler=sampler,
        )
    rows = [
        ["query", args.query],
        ["true answer", result.plain_output[0]],
        ["released (noisy)", result.noisy_scalar()],
        ["inferred sensitivity", result.local_sensitivity],
    ]
    print(format_table(["field", "value"], rows))
    _emit_observability(args, session.engine, tracer, ledger)
    _finish_live(args, session, server, profiler)
    return 0


def _cmd_compare(args) -> int:
    from repro.baselines import exact_local_sensitivity, flex_local_sensitivity
    from repro.common.errors import FlexUnsupportedError
    from repro.obs.tracing import use_tracer
    from repro.sql import SQLSession
    from repro.tpch.datagen import register_tables
    from repro.workloads import workload_by_name

    workload = workload_by_name(args.workload)
    tables = workload.make_tables(args.scale, args.seed)
    tracer, _ = _setup_observability(
        args, command="compare", workload=args.workload, seed=args.seed,
        scale=args.scale, epsilon=0.1, sample_size=1000,
    )
    config = UPAConfig(sample_size=1000, seed=args.seed)
    session = UPASession(
        config, engine=_make_engine(args, config), tracer=tracer
    )
    _install_events(args, session.engine)
    server, profiler = _start_live(args, session)
    # One ambient tracer scope so the UPA pipeline and both baselines
    # emit into the same trace and can be compared span for span.
    with use_tracer(tracer):
        truth = exact_local_sensitivity(
            workload.query, tables, addition_samples=500
        )
        result = session.run(workload.query, tables, epsilon=0.1)

        flex_text = "unsupported"
        if hasattr(workload.query, "dataframe"):
            sql = SQLSession()
            register_tables(sql, tables)
            try:
                flex_text = flex_local_sensitivity(
                    workload.query.dataframe(sql).plan, tables
                ).sensitivity
            except FlexUnsupportedError:
                pass
    rows = [
        ["brute force (ground truth)", truth.local_sensitivity],
        ["UPA (inferred)", result.estimated_local_sensitivity],
        ["FLEX (static)", flex_text],
    ]
    print(format_table(["system", "local sensitivity"], rows))
    _emit_observability(args, session.engine, tracer, None)
    _finish_live(args, session, server, profiler)
    return 0


def _cmd_report(args) -> int:
    import os

    from repro.obs import ObservedRun

    if not (args.trace or args.ledger or args.profile or args.timeseries):
        print("repro report: pass --trace, --ledger, --profile and/or "
              "--timeseries", file=sys.stderr)
        return 2
    if args.trend and not args.timeseries:
        print("repro report: --trend needs --timeseries PATH",
              file=sys.stderr)
        return 2
    for path in (args.trace, args.ledger, args.profile, args.timeseries):
        if path and not os.path.exists(path):
            print(f"repro report: no such file: {path}", file=sys.stderr)
            return 2
    observed = ObservedRun.from_artifacts(
        trace_path=args.trace, ledger_path=args.ledger,
        profile_path=args.profile, timeseries_path=args.timeseries,
    )
    if args.trend and observed.timeseries is not None:
        from repro.obs import AlertEngine

        alert_engine = AlertEngine()
        alert_engine.replay(observed.timeseries)
        seen = {(a.get("rule"), a.get("message")) for a in observed.alerts}
        observed.alerts.extend(
            a for a in alert_engine.to_dicts()
            if (a.get("rule"), a.get("message")) not in seen
        )
    print(observed.render_json() if args.json else observed.render_text())
    return 0


def _cmd_serve(args) -> int:
    import json
    import os
    import time

    from repro.obs import AlertEngine, ObservabilityServer, PrivacyLedger

    if not args.ledger and not args.trace and not args.timeseries:
        print("repro serve: pass --ledger, --trace and/or --timeseries",
              file=sys.stderr)
        return 2
    for path in (args.ledger, args.trace, args.timeseries):
        if path and not os.path.exists(path):
            print(f"repro serve: no such file: {path}", file=sys.stderr)
            return 2
    ledger = None
    alert_engine = None
    if args.ledger:
        ledger = PrivacyLedger.read_jsonl(args.ledger)
        # Re-evaluate the rules over the recorded releases so /healthz
        # reflects what a live session would have reported.
        alert_engine = AlertEngine()
        alert_engine.replay(ledger)
    timeseries = None
    if args.timeseries:
        from repro.obs.timeseries import TimeSeriesStore

        timeseries = TimeSeriesStore.read_jsonl(args.timeseries)
        if alert_engine is None:
            alert_engine = AlertEngine()
        # Same replay contract as the ledger: the windowed rules walk
        # the recorded ticks, so /healthz and /dashboard badges show
        # what continuous monitoring would have fired.
        alert_engine.replay(timeseries)
    static_trace = None
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as handle:
            static_trace = json.load(handle)
    server = ObservabilityServer(
        ledger=ledger, alerts=alert_engine, static_trace=static_trace,
        timeseries=timeseries, host=args.host, port=args.port,
    ).start()
    sources = " and ".join(
        p for p in (args.ledger, args.trace, args.timeseries) if p
    )
    print(f"serving {sources} on {server.url}")
    if alert_engine is not None:
        summary = alert_engine.summary()
        if summary:
            print(summary)
    sys.stdout.flush()
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    server.stop()
    return 0


def _fetch_json(url: str, timeout: float = 10.0):
    """GET ``url`` and parse JSON; error bodies parse too.

    ``/healthz`` answers 503 with a JSON body when alerts have fired —
    that is a successful watch poll, not a transport failure, so HTTP
    errors carrying parseable JSON are returned rather than raised.
    """
    import json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            return json.loads(body)
        except ValueError:
            raise exc


def _cmd_watch(args) -> int:
    import os
    import time

    from repro.obs.watch import CLEAR_SCREEN, render_watch

    if bool(args.url) == bool(args.timeseries):
        print("repro watch: pass exactly one of --url or --timeseries",
              file=sys.stderr)
        return 2

    if args.timeseries:
        if not os.path.exists(args.timeseries):
            print(f"repro watch: no such file: {args.timeseries}",
                  file=sys.stderr)
            return 2
        from repro.obs import AlertEngine
        from repro.obs.timeseries import TimeSeriesStore

        store = TimeSeriesStore.read_jsonl(args.timeseries)
        alert_engine = AlertEngine()
        alert_engine.replay(store)
        fired = alert_engine.to_dicts()
        health = {"status": "degraded" if fired else "ok",
                  "alerts": fired}
        sys.stdout.write(render_watch(
            store.to_payload(series=args.series), health,
            series=args.series, source=args.timeseries,
        ))
        return 0

    base = args.url.rstrip("/")
    query = "?series=" + ",".join(args.series) if args.series else ""
    frame = 0
    try:
        while args.iterations is None or frame < args.iterations:
            if frame:
                time.sleep(max(0.0, args.interval))
            frame += 1
            try:
                payload = _fetch_json(base + "/timeseries" + query)
                health = _fetch_json(base + "/healthz")
            except (OSError, ValueError) as exc:
                print(f"repro watch: {base}: {exc}", file=sys.stderr)
                return 1
            text = render_watch(payload, health, series=args.series,
                                source=base)
            if not args.no_clear and sys.stdout.isatty():
                sys.stdout.write(CLEAR_SCREEN)
            sys.stdout.write(text)
            sys.stdout.flush()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _cmd_lint(args) -> int:
    import os

    from repro.staticcheck import Severity, run_lint
    from repro.workloads import all_workloads

    # Usage errors (typo'd workload, missing path) must not silently
    # lint nothing and exit 0 — CI would never notice.
    if args.workloads:
        known = {w.name for w in all_workloads()}
        unknown = [n for n in args.workloads if n not in known]
        if unknown:
            print(
                f"repro lint: unknown workload(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
    for path in args.paths:
        if not os.path.exists(path):
            print(f"repro lint: path does not exist: {path}", file=sys.stderr)
            return 2
        if not os.path.isdir(path) and not path.endswith(".py"):
            print(
                f"repro lint: not a directory or .py file: {path}",
                file=sys.stderr,
            )
            return 2

    report = run_lint(
        workloads=not args.no_workloads,
        workload_names=args.workloads,
        paths=args.paths,
        min_severity=Severity.WARNING if args.quiet else Severity.INFO,
        exclude=args.exclude,
        baseline=args.baseline,
    )
    fmt = args.format or ("json" if args.json else "text")
    if report.baseline_written and fmt == "text":
        print(
            f"repro lint: recorded current findings in {args.baseline}; "
            "future runs fail only on new findings",
            file=sys.stderr,
        )
    print(report.render(format=fmt))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "run-sql":
            return _cmd_run_sql(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
