"""TPC-H substrate: seeded data generator and the paper's seven queries.

The paper evaluates on 114-133 GB TPC-H datasets; we generate
TPC-H-shaped tables at laptop scale with the *distributional* features
that drive sensitivity: skewed join-key frequencies (lineitems per
order, orders per customer, lineitems per supplier), date ranges,
selective filters, and comment strings that match/miss the LIKE
patterns.

Each query is available in three equivalent forms:

* SQL text (``sql_text()``) executed by :mod:`repro.sql`;
* a DataFrame builder (``dataframe(session)``);
* a :class:`repro.core.query.MapReduceQuery` (``mapreduce()``) used by
  UPA, brute force and the benchmarks.

Tests assert the three forms agree on the same generated tables.
"""

from repro.tpch.datagen import TPCHConfig, TPCHGenerator
from repro.tpch.workload import all_queries, query_by_name

__all__ = ["TPCHConfig", "TPCHGenerator", "all_queries", "query_by_name"]
