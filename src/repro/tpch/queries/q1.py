"""TPC-H Q1 (counting form used by FLEX's evaluation).

``SELECT COUNT(*) FROM lineitem`` — no filter, no join.  The paper uses
it as the base case: FLEX returns the exact local sensitivity (1) and
UPA's only error is distribution-fit noise.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

import numpy as np

from repro.core.query import Row, Tables
from repro.sql.functions import count_star
from repro.tpch.queries.base import TPCHQuery, random_lineitem


class Q1(TPCHQuery):
    """Count all lineitems; protected table: lineitem."""

    name = "tpch1"
    protected_table = "lineitem"
    query_type = "count"
    flex_supported = True

    def sql_text(self) -> str:
        return "SELECT COUNT(*) AS result FROM lineitem"

    def dataframe(self, session):
        return session.table("lineitem").agg(count_star("result"))

    def build_aux(self, tables: Tables) -> Any:
        return None

    def map_record(self, record: Row, aux: Any) -> float:
        return 1.0

    def map_batch(self, records: Sequence[Row], aux: Any) -> np.ndarray:
        return np.ones(len(records), dtype=float)

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_lineitem(rng, tables)
