"""TPC-H Q4 (counting form): late lineitems of orders in a quarter.

``COUNT(*)`` over orders joined with their late lineitems
(``l_commitdate < l_receiptdate``) where the order date falls in
[1993-01-01, 1994-01-01).  Protected table: **orders** — removing one
order removes all its late lineitems from the join, so a record's
influence is its late-lineitem multiplicity (1-40 with the generator's
skew), which is what FLEX's max-frequency analysis overestimates.
"""

from __future__ import annotations

import datetime
import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict

from repro.core.query import Row, Tables
from repro.sql.expr import col, lit
from repro.sql.functions import count_star
from repro.tpch.queries.base import TPCHQuery, random_order

_DATE_LO = datetime.date(1993, 1, 1)
_DATE_HI = datetime.date(1994, 1, 1)


@dataclass
class _Aux:
    late_counts: Dict[int, int]


class Q4(TPCHQuery):
    """Count (order, late-lineitem) join pairs in the date window."""

    name = "tpch4"
    protected_table = "orders"
    query_type = "count"
    flex_supported = True

    def sql_text(self) -> str:
        return (
            "SELECT COUNT(*) AS result FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey "
            "AND o_orderdate >= DATE '1993-01-01' "
            "AND o_orderdate < DATE '1994-01-01' "
            "AND l_commitdate < l_receiptdate"
        )

    def dataframe(self, session):
        orders = session.table("orders").filter(
            (col("o_orderdate") >= lit(_DATE_LO))
            & (col("o_orderdate") < lit(_DATE_HI))
        )
        late = session.table("lineitem").filter(
            col("l_commitdate") < col("l_receiptdate")
        )
        joined = orders.join(late, on=[("o_orderkey", "l_orderkey")])
        return joined.agg(count_star("result"))

    def build_aux(self, tables: Tables) -> _Aux:
        counts: Counter = Counter()
        for item in tables["lineitem"]:
            if item["l_commitdate"] < item["l_receiptdate"]:
                counts[item["l_orderkey"]] += 1
        return _Aux(dict(counts))

    def map_record(self, record: Row, aux: _Aux) -> float:
        if _DATE_LO <= record["o_orderdate"] < _DATE_HI:
            return float(aux.late_counts.get(record["o_orderkey"], 0))
        return 0.0

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_order(rng, tables)
