"""TPC-H Q11 (arithmetic form): value of German suppliers' stock.

``SUM(ps_supplycost * ps_availqty)`` over partsupp rows whose supplier
is in GERMANY.  Protected table: **partsupp** — a record's influence is
its (cost x quantity) term when its supplier is German, zero otherwise,
so the influence distribution mixes a point mass at zero with a wide
continuous component.  FLEX does not support SUM (Table II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Set

from repro.core.query import Row, Tables
from repro.sql.expr import col, lit
from repro.sql.functions import sum_
from repro.tpch.queries.base import TPCHQuery, random_partsupp

_NATION = "GERMANY"


@dataclass
class _Aux:
    german_suppkeys: Set[int]


class Q11(TPCHQuery):
    """Sum of supplycost * availqty for partsupp rows of German suppliers."""

    name = "tpch11"
    protected_table = "partsupp"
    query_type = "arithmetic"
    flex_supported = False

    def sql_text(self) -> str:
        return (
            "SELECT SUM(ps_supplycost * ps_availqty) AS result "
            "FROM partsupp, supplier, nation "
            "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
            f"AND n_name = '{_NATION}'"
        )

    def dataframe(self, session):
        nation = session.table("nation").filter(col("n_name") == lit(_NATION))
        suppliers = session.table("supplier").join(
            nation, on=[("s_nationkey", "n_nationkey")]
        )
        joined = session.table("partsupp").join(
            suppliers, on=[("ps_suppkey", "s_suppkey")]
        )
        return joined.agg(
            sum_(col("ps_supplycost") * col("ps_availqty"), "result")
        )

    def build_aux(self, tables: Tables) -> _Aux:
        nation_keys = {
            n["n_nationkey"] for n in tables["nation"] if n["n_name"] == _NATION
        }
        german = {
            s["s_suppkey"]
            for s in tables["supplier"]
            if s["s_nationkey"] in nation_keys
        }
        return _Aux(german)

    def map_record(self, record: Row, aux: _Aux) -> float:
        if record["ps_suppkey"] in aux.german_suppkeys:
            return record["ps_supplycost"] * record["ps_availqty"]
        return 0.0

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_partsupp(rng, tables)
