"""TPC-H Q6: forecast revenue change (arithmetic, UPA-only).

``SUM(l_extendedprice * l_discount)`` over lineitems shipped in 1994
with discount in [0.03, 0.08] and quantity < 40.  FLEX does not support
SUM queries (Table II).  A record's influence is its revenue term —
continuous and wide-ranging, the canonical "arithmetic" case.
"""

from __future__ import annotations

import datetime
import random
from typing import Any, Sequence

import numpy as np

from repro.core.batch import column_values
from repro.core.query import Row, Tables
from repro.sql.expr import col, lit
from repro.sql.functions import sum_
from repro.tpch.queries.base import TPCHQuery, random_lineitem

_DATE_LO = datetime.date(1994, 1, 1)
_DATE_HI = datetime.date(1995, 1, 1)


class Q6(TPCHQuery):
    """Sum of discounted revenue over the filtered lineitems."""

    name = "tpch6"
    protected_table = "lineitem"
    query_type = "arithmetic"
    flex_supported = False

    def sql_text(self) -> str:
        return (
            "SELECT SUM(l_extendedprice * l_discount) AS result FROM lineitem "
            "WHERE l_shipdate >= DATE '1994-01-01' "
            "AND l_shipdate < DATE '1995-01-01' "
            "AND l_discount BETWEEN 0.03 AND 0.08 "
            "AND l_quantity < 40"
        )

    def dataframe(self, session):
        filtered = session.table("lineitem").filter(
            (col("l_shipdate") >= lit(_DATE_LO))
            & (col("l_shipdate") < lit(_DATE_HI))
            & col("l_discount").between(0.03, 0.08)
            & (col("l_quantity") < 40)
        )
        return filtered.agg(sum_(col("l_extendedprice") * col("l_discount"),
                                 "result"))

    def build_aux(self, tables: Tables) -> Any:
        return None

    def map_record(self, record: Row, aux: Any) -> float:
        if not _DATE_LO <= record["l_shipdate"] < _DATE_HI:
            return 0.0
        if not 0.03 <= record["l_discount"] <= 0.08:
            return 0.0
        if not record["l_quantity"] < 40:
            return 0.0
        return record["l_extendedprice"] * record["l_discount"]

    def map_batch(self, records: Sequence[Row], aux: Any) -> np.ndarray:
        if not records:
            return np.empty(0)
        # column_values is layout-aware: over a ColumnarPartition the
        # three numeric pulls are zero-copy buffer views, so no row
        # dict is boxed anywhere in this kernel.
        price = column_values(records, "l_extendedprice")
        discount = column_values(records, "l_discount")
        quantity = column_values(records, "l_quantity")
        shipdate = column_values(records, "l_shipdate", dtype=None)
        in_window = np.fromiter(
            (_DATE_LO <= d < _DATE_HI for d in shipdate),
            dtype=bool,
            count=len(shipdate),
        )
        selected = (
            in_window
            & (discount >= 0.03)
            & (discount <= 0.08)
            & (quantity < 40)
        )
        return np.where(selected, price * discount, 0.0)

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_lineitem(rng, tables)
