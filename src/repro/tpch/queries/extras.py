"""Extension workloads beyond the paper's nine: TPC-H Q12 and Q14.

The paper evaluates seven TPC-H queries; these two more show the system
generalizes (and exercise CASE WHEN through the whole stack: parser,
optimizer, physical execution, provenance compilation, UPA).  Both are
scalar forms of the official queries:

* **Q12** — high-priority orders shipped by MAIL/SHIP and received in
  1994: ``SUM(CASE WHEN o_orderpriority IN high THEN 1 ELSE 0 END)``
  over the orders x lineitem join.  Protected table: orders.
* **Q14** — promotional revenue: ``SUM(CASE WHEN p_type LIKE 'PROMO%'
  THEN l_extendedprice * (1 - l_discount) ELSE 0 END)`` over lineitems
  shipped in one year joined with part.  Protected table: lineitem.
  (The official Q14 divides by total revenue; a ratio is not linear in
  records, so the numerator is the released quantity.)
"""

from __future__ import annotations

import datetime
import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Set

from repro.core.query import Row, Tables
from repro.sql.expr import CaseWhen, col, lit
from repro.sql.functions import sum_
from repro.tpch.queries.base import TPCHQuery, random_lineitem, random_order

_Q12_DATE_LO = datetime.date(1994, 1, 1)
_Q12_DATE_HI = datetime.date(1995, 1, 1)
_Q12_MODES = ("MAIL", "SHIP")
_HIGH_PRIORITIES = ("1-URGENT", "2-HIGH")

_Q14_DATE_LO = datetime.date(1995, 1, 1)
_Q14_DATE_HI = datetime.date(1996, 1, 1)


@dataclass
class _Q12Aux:
    qualifying_lineitems: Dict[int, int]  # orderkey -> count in mode+window


class Q12(TPCHQuery):
    """High-priority lineitems shipped by MAIL/SHIP (scalar Q12 form)."""

    name = "tpch12"
    protected_table = "orders"
    query_type = "count"
    flex_supported = False  # SUM(CASE ...) is outside FLEX's fragment

    def sql_text(self) -> str:
        modes = ", ".join(f"'{m}'" for m in _Q12_MODES)
        return (
            "SELECT SUM(CASE WHEN o_orderpriority = '1-URGENT' "
            "OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS result "
            "FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey "
            f"AND l_shipmode IN ({modes}) "
            "AND l_receiptdate >= DATE '1994-01-01' "
            "AND l_receiptdate < DATE '1995-01-01'"
        )

    def dataframe(self, session):
        lineitems = session.table("lineitem").filter(
            col("l_shipmode").isin(list(_Q12_MODES))
            & (col("l_receiptdate") >= lit(_Q12_DATE_LO))
            & (col("l_receiptdate") < lit(_Q12_DATE_HI))
        )
        joined = session.table("orders").join(
            lineitems, on=[("o_orderkey", "l_orderkey")]
        )
        high = CaseWhen(
            [(col("o_orderpriority").isin(list(_HIGH_PRIORITIES)), lit(1))],
            lit(0),
        )
        return joined.agg(sum_(high, "result"))

    def build_aux(self, tables: Tables) -> _Q12Aux:
        counts: Counter = Counter()
        for item in tables["lineitem"]:
            if (
                item["l_shipmode"] in _Q12_MODES
                and _Q12_DATE_LO <= item["l_receiptdate"] < _Q12_DATE_HI
            ):
                counts[item["l_orderkey"]] += 1
        return _Q12Aux(dict(counts))

    def map_record(self, record: Row, aux: _Q12Aux) -> float:
        if record["o_orderpriority"] not in _HIGH_PRIORITIES:
            return 0.0
        return float(aux.qualifying_lineitems.get(record["o_orderkey"], 0))

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_order(rng, tables)


@dataclass
class _Q14Aux:
    promo_partkeys: Set[int]


class Q14(TPCHQuery):
    """Promotional revenue numerator (scalar Q14 form)."""

    name = "tpch14"
    protected_table = "lineitem"
    query_type = "arithmetic"
    flex_supported = False

    def sql_text(self) -> str:
        return (
            "SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' "
            "THEN l_extendedprice * (1 - l_discount) ELSE 0 END) AS result "
            "FROM lineitem, part "
            "WHERE l_partkey = p_partkey "
            "AND l_shipdate >= DATE '1995-01-01' "
            "AND l_shipdate < DATE '1996-01-01'"
        )

    def dataframe(self, session):
        lineitems = session.table("lineitem").filter(
            (col("l_shipdate") >= lit(_Q14_DATE_LO))
            & (col("l_shipdate") < lit(_Q14_DATE_HI))
        )
        joined = lineitems.join(
            session.table("part"), on=[("l_partkey", "p_partkey")]
        )
        promo = CaseWhen(
            [(
                col("p_type").like("PROMO%"),
                col("l_extendedprice") * (1 - col("l_discount")),
            )],
            lit(0),
        )
        return joined.agg(sum_(promo, "result"))

    def build_aux(self, tables: Tables) -> _Q14Aux:
        return _Q14Aux(
            {
                p["p_partkey"]
                for p in tables["part"]
                if p["p_type"].startswith("PROMO")
            }
        )

    def map_record(self, record: Row, aux: _Q14Aux) -> float:
        if not _Q14_DATE_LO <= record["l_shipdate"] < _Q14_DATE_HI:
            return 0.0
        if record["l_partkey"] not in aux.promo_partkeys:
            return 0.0
        return record["l_extendedprice"] * (1 - record["l_discount"])

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_lineitem(rng, tables)


def extension_queries():
    """The beyond-paper extension workloads."""
    return [Q12(), Q14()]
