"""The paper's seven TPC-H queries (Table II), in three equivalent forms.

Count-type (FLEX-supported): Q1, Q4, Q13, Q16, Q21.
Arithmetic (UPA-only): Q6, Q11.
"""

from repro.tpch.queries.base import TPCHQuery
from repro.tpch.queries.q1 import Q1
from repro.tpch.queries.q4 import Q4
from repro.tpch.queries.q6 import Q6
from repro.tpch.queries.q11 import Q11
from repro.tpch.queries.q13 import Q13
from repro.tpch.queries.q16 import Q16
from repro.tpch.queries.q21 import Q21

__all__ = ["Q1", "Q4", "Q6", "Q11", "Q13", "Q16", "Q21", "TPCHQuery"]
