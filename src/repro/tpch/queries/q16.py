"""TPC-H Q16 (counting form): part/supplier relationships.

``COUNT(*)`` over part joined with partsupp, with brand/type/size
filters on part and ``ps_suppkey NOT IN`` the complained-about
suppliers.  Protected table: **part** — removing a part removes its
(2-4, skewed) partsupp rows that survive the supplier anti-join.  The
paper singles out Q16 (with Q21) as where FLEX's error magnifies across
multiple Filter + Join operators.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.core.query import Row, Tables
from repro.sql.expr import col, lit
from repro.sql.functions import count_star
from repro.tpch.queries.base import TPCHQuery, random_part

_SIZES = [49, 14, 23, 45, 19, 3, 36, 9]
_BAD_BRAND = "Brand#45"
_BAD_TYPE_PREFIX = "MEDIUM POLISHED%"
_COMPLAINT_PATTERN = "%Customer%Complaints%"


@dataclass
class _Aux:
    ok_partsupp_counts: Dict[int, int]  # partkey -> rows with ok supplier


class Q16(TPCHQuery):
    """Count filtered (part, partsupp) pairs excluding complaint suppliers."""

    name = "tpch16"
    protected_table = "part"
    query_type = "count"
    flex_supported = True

    def sql_text(self) -> str:
        sizes = ", ".join(str(s) for s in _SIZES)
        return (
            "SELECT COUNT(*) AS result FROM part, partsupp "
            "WHERE p_partkey = ps_partkey "
            f"AND p_brand <> '{_BAD_BRAND}' "
            f"AND p_type NOT LIKE '{_BAD_TYPE_PREFIX}' "
            f"AND p_size IN ({sizes}) "
            "AND ps_suppkey NOT IN ("
            "SELECT s_suppkey FROM supplier "
            f"WHERE s_comment LIKE '{_COMPLAINT_PATTERN}')"
        )

    def dataframe(self, session):
        parts = session.table("part").filter(
            (col("p_brand") != lit(_BAD_BRAND))
            & col("p_type").not_like(_BAD_TYPE_PREFIX)
            & col("p_size").isin(_SIZES)
        )
        complainers = session.table("supplier").filter(
            col("s_comment").like(_COMPLAINT_PATTERN)
        )
        partsupp = session.table("partsupp").anti_join(
            complainers, on=[("ps_suppkey", "s_suppkey")]
        )
        joined = parts.join(partsupp, on=[("p_partkey", "ps_partkey")])
        return joined.agg(count_star("result"))

    def build_aux(self, tables: Tables) -> _Aux:
        matches = col("s_comment").like(_COMPLAINT_PATTERN).compiled()
        complainers = {
            s["s_suppkey"] for s in tables["supplier"] if matches(s)
        }
        counts: Counter = Counter()
        for ps in tables["partsupp"]:
            if ps["ps_suppkey"] not in complainers:
                counts[ps["ps_partkey"]] += 1
        return _Aux(dict(counts))

    def map_record(self, record: Row, aux: _Aux) -> float:
        if record["p_brand"] == _BAD_BRAND:
            return 0.0
        if record["p_type"].startswith(_BAD_TYPE_PREFIX[:-1]):
            return 0.0
        if record["p_size"] not in _SIZES:
            return 0.0
        return float(aux.ok_partsupp_counts.get(record["p_partkey"], 0))

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_part(rng, tables)
