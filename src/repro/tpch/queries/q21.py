"""TPC-H Q21 (counting form): suppliers who kept orders waiting.

Counts (supplier, lineitem l1) pairs where the supplier is in SAUDI
ARABIA, the order's status is 'F', l1 was received late, *some other*
supplier contributed to the same order (EXISTS with a ``<>`` residual),
and *no other* supplier was late on it (NOT EXISTS).  Protected table:
**supplier** — a supplier's influence is its count of qualifying
lineitems, extremely skewed by the generator: Q21 is the paper's
worst-case query (outliers the sampled normal fit misses; FLEX error
compounds across 5 join-like operators and 3 filters).
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Set

from repro.core.query import Row, Tables
from repro.sql.expr import col, lit
from repro.sql.functions import count_star
from repro.tpch.queries.base import TPCHQuery, random_supplier

_NATION = "SAUDI ARABIA"


@dataclass
class _Aux:
    qualifying_counts: Dict[int, int]  # suppkey -> qualifying l1 rows
    nation_names: Dict[int, str]


class Q21(TPCHQuery):
    """Count qualifying (supplier, late lineitem) pairs for one nation."""

    name = "tpch21"
    protected_table = "supplier"
    query_type = "count"
    flex_supported = True

    def sql_text(self) -> str:
        return (
            "SELECT COUNT(*) AS result "
            "FROM supplier, lineitem l1, orders, nation "
            "WHERE s_suppkey = l1.l_suppkey "
            "AND o_orderkey = l1.l_orderkey "
            "AND o_orderstatus = 'F' "
            "AND l1.l_receiptdate > l1.l_commitdate "
            "AND s_nationkey = n_nationkey "
            f"AND n_name = '{_NATION}' "
            "AND EXISTS (SELECT * FROM lineitem l2 "
            "WHERE l2.l_orderkey = l1.l_orderkey "
            "AND l2.l_suppkey <> l1.l_suppkey) "
            "AND NOT EXISTS (SELECT * FROM lineitem l3 "
            "WHERE l3.l_orderkey = l1.l_orderkey "
            "AND l3.l_suppkey <> l1.l_suppkey "
            "AND l3.l_receiptdate > l3.l_commitdate)"
        )

    def dataframe(self, session):
        saudi_nation = session.table("nation").filter(col("n_name") == lit(_NATION))
        suppliers = session.table("supplier").join(
            saudi_nation, on=[("s_nationkey", "n_nationkey")]
        )
        late_l1 = session.table("lineitem").filter(
            col("l_receiptdate") > col("l_commitdate")
        )
        f_orders = session.table("orders").filter(
            col("o_orderstatus") == lit("F")
        ).select("o_orderkey")
        l1 = late_l1.semi_join(f_orders, on=[("l_orderkey", "o_orderkey")])
        other_supp = col("__r_l_suppkey") != col("l_suppkey")
        l1 = l1.semi_join(
            session.table("lineitem"),
            on=[("l_orderkey", "l_orderkey")],
            residual=other_supp,
        )
        late_others = (col("__r_l_suppkey") != col("l_suppkey")) & (
            col("__r_l_receiptdate") > col("__r_l_commitdate")
        )
        l1 = l1.anti_join(
            session.table("lineitem"),
            on=[("l_orderkey", "l_orderkey")],
            residual=late_others,
        )
        joined = suppliers.join(l1, on=[("s_suppkey", "l_suppkey")])
        return joined.agg(count_star("result"))

    def build_aux(self, tables: Tables) -> _Aux:
        f_orders: Set[int] = {
            o["o_orderkey"]
            for o in tables["orders"]
            if o["o_orderstatus"] == "F"
        }
        suppkeys_in_order: Dict[int, Set[int]] = defaultdict(set)
        late_suppkeys_in_order: Dict[int, Set[int]] = defaultdict(set)
        for item in tables["lineitem"]:
            orderkey = item["l_orderkey"]
            suppkeys_in_order[orderkey].add(item["l_suppkey"])
            if item["l_receiptdate"] > item["l_commitdate"]:
                late_suppkeys_in_order[orderkey].add(item["l_suppkey"])
        counts: Counter = Counter()
        for item in tables["lineitem"]:
            orderkey = item["l_orderkey"]
            suppkey = item["l_suppkey"]
            if orderkey not in f_orders:
                continue
            if not item["l_receiptdate"] > item["l_commitdate"]:
                continue
            if not suppkeys_in_order[orderkey] - {suppkey}:
                continue  # no other supplier on the order
            if late_suppkeys_in_order[orderkey] - {suppkey}:
                continue  # some other supplier was also late
            counts[suppkey] += 1
        nation_names = {
            n["n_nationkey"]: n["n_name"] for n in tables["nation"]
        }
        return _Aux(dict(counts), nation_names)

    def map_record(self, record: Row, aux: _Aux) -> float:
        if aux.nation_names.get(record["s_nationkey"]) != _NATION:
            return 0.0
        return float(aux.qualifying_counts.get(record["s_suppkey"], 0))

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_supplier(rng, tables)
