"""TPC-H Q13 (counting form): customer-order join with comment filter.

``COUNT(*)`` over customer joined with orders whose comment does NOT
match '%special%requests%'.  Protected table: **customer** — removing a
customer removes all of that customer's matching orders from the join,
and the generator's Zipf skew over customers makes the influence
distribution heavy-tailed: exactly the one-to-many case where FLEX
multiplies worst-case frequencies.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.core.query import Row, Tables
from repro.sql.expr import col
from repro.sql.functions import count_star
from repro.tpch.queries.base import TPCHQuery, random_customer

_PATTERN = "%special%requests%"


@dataclass
class _Aux:
    order_counts: Dict[int, int]


class Q13(TPCHQuery):
    """Count (customer, order) join pairs with the comment filter."""

    name = "tpch13"
    protected_table = "customer"
    query_type = "count"
    flex_supported = True

    def sql_text(self) -> str:
        return (
            "SELECT COUNT(*) AS result FROM customer, orders "
            "WHERE c_custkey = o_custkey "
            f"AND o_comment NOT LIKE '{_PATTERN}'"
        )

    def dataframe(self, session):
        orders = session.table("orders").filter(
            col("o_comment").not_like(_PATTERN)
        )
        joined = session.table("customer").join(
            orders, on=[("c_custkey", "o_custkey")]
        )
        return joined.agg(count_star("result"))

    def build_aux(self, tables: Tables) -> _Aux:
        matches = col("o_comment").not_like(_PATTERN).compiled()
        counts: Counter = Counter()
        for order in tables["orders"]:
            if matches(order):
                counts[order["o_custkey"]] += 1
        return _Aux(dict(counts))

    def map_record(self, record: Row, aux: _Aux) -> float:
        return float(aux.order_counts.get(record["c_custkey"], 0))

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return random_customer(rng, tables)
