"""Shared machinery for the TPC-H query implementations."""

from __future__ import annotations

import datetime
import random
from typing import Any, Dict, List

import numpy as np

from repro.core.batch import ScalarSumBatch
from repro.core.query import MapReduceQuery, Row, Tables
from repro.tpch.datagen import NATION_NAMES, PRIORITIES, SHIPMODES


class TPCHQuery(ScalarSumBatch, MapReduceQuery):
    """A TPC-H query: MapReduceQuery plus SQL/DataFrame forms.

    All seven queries share the scalar-sum monoid, so the vectorized
    batch kernels come from :class:`~repro.core.batch.ScalarSumBatch`;
    queries whose mapper is itself columnar (Q1, Q6) additionally
    override ``map_batch``.

    Attributes:
        query_type: 'count' or 'arithmetic' (Table II).
        flex_supported: whether FLEX's static analysis applies
            (count-type queries only).
    """

    query_type: str = "count"
    flex_supported: bool = True
    output_dim = 1

    def sql_text(self) -> str:
        """The query as SQL text for :meth:`repro.sql.SQLSession.sql`."""
        raise NotImplementedError

    def dataframe(self, session):
        """The query as a DataFrame plan over the session's catalog."""
        raise NotImplementedError

    # Count/sum queries share the scalar-sum monoid.

    def zero(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        return np.asarray([float(agg)], dtype=float)


_MAX_KEY_CACHE: Dict[tuple, int] = {}


def max_key(rows: List[Row], column: str, default: int = 0) -> int:
    """Largest value of an integer key column (for fresh-key sampling).

    Memoized per (table identity, length, column) — domain samplers call
    this once per sampled record, and the table does not change during
    a run.
    """
    if not rows:
        return default
    cache_key = (id(rows), len(rows), column)
    cached = _MAX_KEY_CACHE.get(cache_key)
    if cached is None:
        cached = max(row[column] for row in rows)
        if len(_MAX_KEY_CACHE) > 4096:
            _MAX_KEY_CACHE.clear()
        _MAX_KEY_CACHE[cache_key] = cached
    return cached


def random_lineitem(rng: random.Random, tables: Tables) -> Row:
    """A plausible new lineitem row (attached to an existing order)."""
    orders = tables["orders"]
    order = orders[rng.randrange(len(orders))] if orders else {"o_orderkey": 1}
    base = order.get("o_orderdate", datetime.date(1995, 6, 1))
    ship = base + datetime.timedelta(days=rng.randrange(1, 121))
    quantity = float(rng.randrange(1, 51))
    n_parts = max_key(tables.get("part", []), "p_partkey", 100)
    n_suppliers = max_key(tables.get("supplier", []), "s_suppkey", 20)
    return {
        "l_orderkey": order["o_orderkey"],
        "l_linenumber": 999,
        "l_partkey": 1 + rng.randrange(n_parts),
        "l_suppkey": 1 + rng.randrange(n_suppliers),
        "l_quantity": quantity,
        "l_extendedprice": round(quantity * rng.uniform(900.0, 1100.0), 2),
        "l_discount": round(rng.randrange(0, 11) / 100.0, 2),
        "l_tax": round(rng.randrange(0, 9) / 100.0, 2),
        "l_returnflag": rng.choice(["A", "N", "R"]),
        "l_linestatus": rng.choice(["F", "O"]),
        "l_shipdate": ship,
        "l_commitdate": base + datetime.timedelta(days=rng.randrange(60, 151)),
        "l_receiptdate": ship + datetime.timedelta(days=rng.randrange(1, 31)),
        "l_shipmode": rng.choice(SHIPMODES),
    }


def random_order(rng: random.Random, tables: Tables) -> Row:
    """A new order with a fresh orderkey (so it has no lineitems)."""
    n_customers = max_key(tables.get("customer", []), "c_custkey", 100)
    start = datetime.date(1992, 1, 1)
    special = rng.random() < 0.15
    return {
        "o_orderkey": max_key(tables["orders"], "o_orderkey") + 1 + rng.randrange(1000),
        "o_custkey": 1 + rng.randrange(n_customers),
        "o_orderstatus": rng.choice(["F", "F", "O", "P"]),
        "o_orderdate": start + datetime.timedelta(days=rng.randrange(2557)),
        "o_orderpriority": rng.choice(PRIORITIES),
        "o_comment": (
            "was told to expedite the special packages and requests"
            if special
            else "ordinary pending packages sleep furiously"
        ),
    }


def random_customer(rng: random.Random, tables: Tables) -> Row:
    """A new customer with a fresh custkey (so it has no orders)."""
    key = max_key(tables["customer"], "c_custkey") + 1 + rng.randrange(1000)
    return {
        "c_custkey": key,
        "c_name": f"Customer#{key:09d}",
        "c_nationkey": rng.randrange(len(NATION_NAMES)),
        "c_mktsegment": "BUILDING",
    }


def random_part(rng: random.Random, tables: Tables) -> Row:
    """A new part with a fresh partkey (so it has no partsupp rows)."""
    key = max_key(tables["part"], "p_partkey") + 1 + rng.randrange(1000)
    return {
        "p_partkey": key,
        "p_name": f"part {key}",
        "p_brand": f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
        "p_type": "STANDARD ANODIZED TIN",
        "p_size": rng.randrange(1, 51),
    }


def random_partsupp(rng: random.Random, tables: Tables) -> Row:
    """A new partsupp row over existing part/supplier keys."""
    n_parts = max_key(tables.get("part", []), "p_partkey", 100)
    n_suppliers = max_key(tables.get("supplier", []), "s_suppkey", 20)
    return {
        "ps_partkey": 1 + rng.randrange(n_parts),
        "ps_suppkey": 1 + rng.randrange(n_suppliers),
        "ps_availqty": rng.randrange(1, 10_000),
        "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
    }


def random_supplier(rng: random.Random, tables: Tables) -> Row:
    """A new supplier with a fresh suppkey (so it has no lineitems)."""
    key = max_key(tables["supplier"], "s_suppkey") + 1 + rng.randrange(1000)
    complaint = rng.random() < 0.05
    return {
        "s_suppkey": key,
        "s_name": f"Supplier#{key:09d}",
        "s_nationkey": rng.randrange(len(NATION_NAMES)),
        "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
        "s_comment": (
            "slow delivery: Customer unhappy Complaints pending"
            if complaint
            else "dependable deliveries, quiet accounts"
        ),
    }
