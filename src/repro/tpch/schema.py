"""Schemas for the TPC-H-shaped tables (columns our workloads use)."""

from __future__ import annotations

from repro.sql.types import DATE, FLOAT, INTEGER, STRING, Field, Schema

REGION = Schema(
    [Field("r_regionkey", INTEGER), Field("r_name", STRING)]
)

NATION = Schema(
    [
        Field("n_nationkey", INTEGER),
        Field("n_name", STRING),
        Field("n_regionkey", INTEGER),
    ]
)

SUPPLIER = Schema(
    [
        Field("s_suppkey", INTEGER),
        Field("s_name", STRING),
        Field("s_nationkey", INTEGER),
        Field("s_acctbal", FLOAT),
        Field("s_comment", STRING),
    ]
)

CUSTOMER = Schema(
    [
        Field("c_custkey", INTEGER),
        Field("c_name", STRING),
        Field("c_nationkey", INTEGER),
        Field("c_mktsegment", STRING),
    ]
)

PART = Schema(
    [
        Field("p_partkey", INTEGER),
        Field("p_name", STRING),
        Field("p_brand", STRING),
        Field("p_type", STRING),
        Field("p_size", INTEGER),
    ]
)

PARTSUPP = Schema(
    [
        Field("ps_partkey", INTEGER),
        Field("ps_suppkey", INTEGER),
        Field("ps_availqty", INTEGER),
        Field("ps_supplycost", FLOAT),
    ]
)

ORDERS = Schema(
    [
        Field("o_orderkey", INTEGER),
        Field("o_custkey", INTEGER),
        Field("o_orderstatus", STRING),
        Field("o_orderdate", DATE),
        Field("o_orderpriority", STRING),
        Field("o_comment", STRING),
    ]
)

LINEITEM = Schema(
    [
        Field("l_orderkey", INTEGER),
        Field("l_linenumber", INTEGER),
        Field("l_partkey", INTEGER),
        Field("l_suppkey", INTEGER),
        Field("l_quantity", FLOAT),
        Field("l_extendedprice", FLOAT),
        Field("l_discount", FLOAT),
        Field("l_tax", FLOAT),
        Field("l_returnflag", STRING),
        Field("l_linestatus", STRING),
        Field("l_shipdate", DATE),
        Field("l_commitdate", DATE),
        Field("l_receiptdate", DATE),
        Field("l_shipmode", STRING),
    ]
)

ALL_SCHEMAS = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}
