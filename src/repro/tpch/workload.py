"""Convenience accessors for the seven TPC-H queries."""

from __future__ import annotations

from typing import Dict, List

from repro.tpch.queries import Q1, Q4, Q6, Q11, Q13, Q16, Q21, TPCHQuery


def all_queries() -> List[TPCHQuery]:
    """Instances of all seven TPC-H queries, evaluation order."""
    return [Q1(), Q4(), Q13(), Q16(), Q21(), Q6(), Q11()]


def query_by_name(name: str) -> TPCHQuery:
    queries: Dict[str, TPCHQuery] = {q.name: q for q in all_queries()}
    try:
        return queries[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-H query {name!r}; available: {sorted(queries)}"
        ) from None
