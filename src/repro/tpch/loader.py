"""Persist generated tables to CSV and load them back.

Datasets are deterministic given a seed, but benchmarks that span
processes (or users who want to inspect the data) need files.  The
format is plain CSV with a one-line typed header (``name:type``) so
loading restores ints, floats and dates exactly.
"""

from __future__ import annotations

import csv
import datetime
import os
from typing import Any, Callable, Dict, List

from repro.core.query import Row, Tables

_SERIALIZERS: Dict[str, Callable[[Any], str]] = {
    "int": str,
    "float": repr,  # repr round-trips floats exactly
    "str": str,
    "date": lambda d: d.isoformat(),
}

_PARSERS: Dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "date": datetime.date.fromisoformat,
}


def _type_of(value: Any) -> str:
    if isinstance(value, bool):
        raise ValueError("bool columns are not supported by the CSV loader")
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, datetime.date):
        return "date"
    if isinstance(value, str):
        return "str"
    raise ValueError(f"unsupported column value type {type(value).__name__}")


def save_table(rows: List[Row], path: str) -> None:
    """Write one table to CSV with a typed header."""
    if not rows:
        raise ValueError(f"refusing to save empty table to {path}")
    columns = list(rows[0].keys())
    types = [_type_of(rows[0][c]) for c in columns]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(f"{c}:{t}" for c, t in zip(columns, types))
        for row in rows:
            writer.writerow(
                _SERIALIZERS[t](row[c]) for c, t in zip(columns, types)
            )


def load_table(path: str) -> List[Row]:
    """Read one table back (types restored from the header)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        columns, types = zip(*(cell.rsplit(":", 1) for cell in header))
        for type_name in types:
            if type_name not in _PARSERS:
                raise ValueError(f"unknown column type {type_name!r} in {path}")
        rows: List[Row] = []
        for record in reader:
            rows.append(
                {
                    c: _PARSERS[t](v)
                    for c, t, v in zip(columns, types, record)
                }
            )
        return rows


def save_tables(tables: Tables, directory: str) -> None:
    """Write every table of a dataset as ``<directory>/<name>.csv``."""
    os.makedirs(directory, exist_ok=True)
    for name, rows in tables.items():
        save_table(rows, os.path.join(directory, f"{name}.csv"))


def load_tables(directory: str) -> Tables:
    """Load every ``*.csv`` in a directory as a tables dict."""
    tables: Tables = {}
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".csv"):
            tables[entry[:-4]] = load_table(os.path.join(directory, entry))
    if not tables:
        raise ValueError(f"no .csv tables found in {directory}")
    return tables
