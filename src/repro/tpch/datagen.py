"""Seeded TPC-H-shaped data generator.

Not a byte-faithful ``dbgen`` port: it generates the columns the nine
workloads consume, with the distributional features that drive
sensitivity analysis:

* **skewed multiplicities** — lineitems-per-order, orders-per-customer
  and lineitems-per-supplier follow truncated Zipf-like laws, so the
  max-frequency metadata FLEX uses is far above the typical value;
* **selective filters** — order/supplier comments contain the TPC-H
  LIKE patterns with configurable probability; dates span 1992-1998;
* **determinism** — everything derives from one seed, so a dataset is
  reproducible and neighbouring datasets can be constructed exactly.

Example:
    >>> tables = TPCHGenerator(TPCHConfig(scale_rows=2000, seed=7)).generate()
    >>> sorted(tables) == ['customer', 'lineitem', 'nation', 'orders',
    ...                    'part', 'partsupp', 'region', 'supplier']
    True
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.common.rng import make_rng

Row = Dict[str, Any]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
# nationkey -> regionkey, loosely following TPC-H.
NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2,
                 3, 4, 2, 3, 3, 1]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
TYPE_ADJ = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_FIN = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_MAT = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

_DATE_START = datetime.date(1992, 1, 1)
_DATE_DAYS = 2557  # through 1998-12-31


@dataclass(frozen=True)
class TPCHConfig:
    """Scaling knobs for the generator.

    Attributes:
        scale_rows: target number of lineitem rows; the other tables are
            derived from it (orders ~ scale/4, customers ~ orders/8, ...).
        seed: master seed.
        special_comment_rate: fraction of order comments matching the
            Q13 '%special%requests%' pattern.
        complaint_rate: fraction of supplier comments matching the
            Q16 '%Customer%Complaints%' pattern.
        zipf_s: skew exponent for multiplicity distributions; higher
            means heavier head (more extreme max frequencies).
    """

    scale_rows: int = 20_000
    seed: int = 0
    special_comment_rate: float = 0.35
    complaint_rate: float = 0.05
    zipf_s: float = 1.3

    def __post_init__(self) -> None:
        if self.scale_rows < 100:
            raise ValueError("scale_rows must be at least 100")


class TPCHGenerator:
    """Generates all eight tables from a :class:`TPCHConfig`."""

    def __init__(self, config: TPCHConfig):
        self.config = config

    # -- public ------------------------------------------------------------

    def generate(self) -> Dict[str, List[Row]]:
        cfg = self.config
        n_orders = max(20, cfg.scale_rows // 4)
        n_customers = max(10, n_orders // 8)
        n_parts = max(20, cfg.scale_rows // 20)
        n_suppliers = max(10, cfg.scale_rows // 40)

        tables: Dict[str, List[Row]] = {}
        tables["region"] = self._regions()
        tables["nation"] = self._nations()
        tables["supplier"] = self._suppliers(n_suppliers)
        tables["customer"] = self._customers(n_customers)
        tables["part"] = self._parts(n_parts)
        tables["partsupp"] = self._partsupps(n_parts, n_suppliers)
        tables["orders"] = self._orders(n_orders, n_customers)
        tables["lineitem"] = self._lineitems(
            cfg.scale_rows, tables["orders"], n_parts, n_suppliers
        )
        return tables

    # -- helpers -------------------------------------------------------------

    def _rng(self, label: str):
        return make_rng(self.config.seed, f"tpch-{label}")

    def _zipf_index(self, rng, n: int) -> int:
        """Draw an index in [0, n) with a Zipf(s) head at low indices."""
        # Inverse-CDF on the truncated zeta distribution, approximated by
        # the continuous power law: cheap and seedable.
        s = self.config.zipf_s
        u = rng.random()
        if abs(s - 1.0) < 1e-9:
            value = math.exp(u * math.log(n + 1.0)) - 1.0
        else:
            top = (n + 1.0) ** (1.0 - s) - 1.0
            value = (1.0 + u * top) ** (1.0 / (1.0 - s)) - 1.0
        return min(n - 1, max(0, int(value)))

    @staticmethod
    def _random_date(rng) -> datetime.date:
        return _DATE_START + datetime.timedelta(days=rng.randrange(_DATE_DAYS))

    # -- per-table generators -------------------------------------------------

    def _regions(self) -> List[Row]:
        return [
            {"r_regionkey": i, "r_name": name}
            for i, name in enumerate(REGION_NAMES)
        ]

    def _nations(self) -> List[Row]:
        return [
            {
                "n_nationkey": i,
                "n_name": name,
                "n_regionkey": NATION_REGION[i],
            }
            for i, name in enumerate(NATION_NAMES)
        ]

    def _suppliers(self, n: int) -> List[Row]:
        rng = self._rng("supplier")
        rows = []
        for key in range(1, n + 1):
            complaint = rng.random() < self.config.complaint_rate
            comment = (
                "slow delivery: Customer unhappy Complaints pending"
                if complaint
                else "dependable deliveries, quiet accounts"
            )
            rows.append(
                {
                    "s_suppkey": key,
                    "s_name": f"Supplier#{key:09d}",
                    "s_nationkey": rng.randrange(len(NATION_NAMES)),
                    "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                    "s_comment": comment,
                }
            )
        return rows

    def _customers(self, n: int) -> List[Row]:
        rng = self._rng("customer")
        return [
            {
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_nationkey": rng.randrange(len(NATION_NAMES)),
                "c_mktsegment": rng.choice(SEGMENTS),
            }
            for key in range(1, n + 1)
        ]

    def _parts(self, n: int) -> List[Row]:
        rng = self._rng("part")
        rows = []
        for key in range(1, n + 1):
            p_type = " ".join(
                (rng.choice(TYPE_ADJ), rng.choice(TYPE_FIN), rng.choice(TYPE_MAT))
            )
            rows.append(
                {
                    "p_partkey": key,
                    "p_name": f"part {key}",
                    "p_brand": f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
                    "p_type": p_type,
                    "p_size": rng.randrange(1, 51),
                }
            )
        return rows

    def _partsupps(self, n_parts: int, n_suppliers: int) -> List[Row]:
        rng = self._rng("partsupp")
        rows = []
        for partkey in range(1, n_parts + 1):
            # 2-4 suppliers per part, drawn uniformly: the per-supplier
            # stock counts come out binomial (near-normal), which is the
            # influence shape the paper reports for Q11/Q16.
            count = rng.randrange(2, 5)
            chosen = set()
            while len(chosen) < count:
                chosen.add(1 + rng.randrange(n_suppliers))
            for suppkey in sorted(chosen):
                rows.append(
                    {
                        "ps_partkey": partkey,
                        "ps_suppkey": suppkey,
                        "ps_availqty": rng.randrange(1, 10_000),
                        "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    }
                )
        return rows

    def _orders(self, n_orders: int, n_customers: int) -> List[Row]:
        rng = self._rng("orders")
        rows = []
        for key in range(1, n_orders + 1):
            special = rng.random() < self.config.special_comment_rate
            comment = (
                "was told to expedite the special packages and requests"
                if special
                else "ordinary pending packages sleep furiously"
            )
            rows.append(
                {
                    "o_orderkey": key,
                    # Uniform over customers: orders-per-customer is then
                    # binomial (near-normal influence for Q13), with the
                    # max frequency FLEX reads still well above typical.
                    "o_custkey": 1 + rng.randrange(n_customers),
                    "o_orderstatus": rng.choice(["F", "F", "O", "P"]),
                    "o_orderdate": self._random_date(rng),
                    "o_orderpriority": rng.choice(PRIORITIES),
                    "o_comment": comment,
                }
            )
        return rows

    def _lineitems(
        self,
        target_rows: int,
        orders: List[Row],
        n_parts: int,
        n_suppliers: int,
    ) -> List[Row]:
        rng = self._rng("lineitem")
        rows: List[Row] = []
        order_index = 0
        while len(rows) < target_rows:
            order = orders[order_index % len(orders)]
            order_index += 1
            # 1-7 lineitems per order, mildly Zipf-skewed: Q4's influence
            # values stay small and discrete, while FLEX's max-frequency
            # metadata still reads the worst case.
            count = 1 + self._zipf_index(rng, 7)
            base_date = order["o_orderdate"]
            for linenumber in range(1, count + 1):
                ship = base_date + datetime.timedelta(days=rng.randrange(1, 121))
                commit = base_date + datetime.timedelta(days=rng.randrange(60, 151))
                receipt = ship + datetime.timedelta(days=rng.randrange(1, 31))
                quantity = float(rng.randrange(1, 51))
                price = round(quantity * rng.uniform(900.0, 1100.0), 2)
                rows.append(
                    {
                        "l_orderkey": order["o_orderkey"],
                        "l_linenumber": linenumber,
                        "l_partkey": 1 + rng.randrange(n_parts),
                        # Zipf over suppliers: a few supply very many items.
                        "l_suppkey": 1 + self._zipf_index(rng, n_suppliers),
                        "l_quantity": quantity,
                        "l_extendedprice": price,
                        "l_discount": round(rng.randrange(0, 11) / 100.0, 2),
                        "l_tax": round(rng.randrange(0, 9) / 100.0, 2),
                        "l_returnflag": rng.choice(["A", "N", "R"]),
                        "l_linestatus": rng.choice(["F", "O"]),
                        "l_shipdate": ship,
                        "l_commitdate": commit,
                        "l_receiptdate": receipt,
                        "l_shipmode": rng.choice(SHIPMODES),
                    }
                )
        del rows[target_rows:]
        return rows


def register_tables(
    session, tables: Dict[str, List[Row]], columnar: bool = False
) -> None:
    """Register every generated table in a SQL session's catalog.

    ``columnar=True`` registers the tables with per-column storage so
    the compiled executor can vectorize supported filters over blocks.
    """
    from repro.tpch.schema import ALL_SCHEMAS

    for name, rows in tables.items():
        session.create_table(
            name, rows, ALL_SCHEMAS.get(name), columnar=columnar
        )
