"""Single source of truth for the package version.

Lives in its own module (instead of ``repro/__init__``) so leaf
packages — notably :mod:`repro.obs`, whose trace/ledger headers embed
the version — can import it without triggering the full top-level
import graph.
"""

__version__ = "1.5.0"
