"""Neighbourhood studies: the data behind the paper's Figure 3.

For one query and dataset, collect the outputs on *all* neighbouring
datasets (brute force), then overlay the output ranges UPA infers at
several sample sizes, reporting the coverage of each — the red/coloured
lines versus the blue ground-truth lines in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.bruteforce import BruteForceResult, exact_local_sensitivity
from repro.core.inference import InferenceConfig, InferredRange
from repro.core.query import MapReduceQuery, Tables
from repro.core.session import UPAConfig, UPASession


@dataclass
class RangeAtSampleSize:
    """UPA's inferred range at one sample size n."""

    sample_size: int
    inferred: InferredRange
    coverage: float  # fraction of true neighbour outputs inside the range
    width_ratio: float  # inferred width / true envelope width


@dataclass
class NeighbourhoodStudy:
    """All Fig. 3 ingredients for one query."""

    query_name: str
    truth: BruteForceResult
    ranges: List[RangeAtSampleSize] = field(default_factory=list)


def study_neighbourhood(
    query: MapReduceQuery,
    tables: Tables,
    sample_sizes: Sequence[int] = (100, 1000, 10_000),
    addition_samples: int = 1000,
    seed: int = 0,
    inference: Optional[InferenceConfig] = None,
) -> NeighbourhoodStudy:
    """Run the Fig. 3 experiment for one query."""
    truth = exact_local_sensitivity(
        query, tables, addition_samples=addition_samples, seed=seed
    )
    study = NeighbourhoodStudy(query_name=query.name, truth=truth)
    true_width = max(truth.range_width, 1e-12)
    for n in sample_sizes:
        session = UPASession(
            UPAConfig(
                sample_size=n,
                seed=seed,
                inference=inference or InferenceConfig(),
            )
        )
        inferred = session.infer_sensitivity(query, tables)
        study.ranges.append(
            RangeAtSampleSize(
                sample_size=n,
                inferred=inferred,
                coverage=inferred.coverage(truth.neighbour_outputs),
                width_ratio=inferred.local_sensitivity / true_width,
            )
        )
    return study
