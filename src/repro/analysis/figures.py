"""Text renderings of the paper's figures (terminal-friendly).

No plotting stack is available offline, so the Fig. 3 scatter is
rendered as an ASCII distribution strip: a histogram of the neighbour
outputs with the ground-truth envelope (``|``) and UPA's inferred range
(``[``/``]``) marked — enough to eyeball the coverage story the paper's
scatter plots tell.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.distribution import NeighbourhoodStudy

_BLOCKS = " .:-=+*#%@"


def ascii_histogram(
    values: np.ndarray,
    lower: Optional[float] = None,
    upper: Optional[float] = None,
    width: int = 72,
) -> str:
    """One-line density strip of ``values`` with optional range markers.

    Each column's character encodes the bin's relative density; ``[``
    and ``]`` overwrite the columns containing ``lower`` / ``upper``.
    """
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot render an empty histogram")
    vmin = float(values.min())
    vmax = float(values.max())
    if lower is not None:
        vmin = min(vmin, lower)
    if upper is not None:
        vmax = max(vmax, upper)
    if vmax == vmin:
        vmax = vmin + 1.0
    span = vmax - vmin

    counts = np.zeros(width)
    for value in values:
        column = min(width - 1, int((value - vmin) / span * width))
        counts[column] += 1
    peak = counts.max() or 1.0
    strip: List[str] = [
        _BLOCKS[min(len(_BLOCKS) - 1, int(c / peak * (len(_BLOCKS) - 1)))]
        for c in counts
    ]

    def mark(position: Optional[float], char: str) -> None:
        if position is None:
            return
        column = min(width - 1, max(0, int((position - vmin) / span * width)))
        strip[column] = char

    mark(lower, "[")
    mark(upper, "]")
    return "".join(strip)


def render_fig3_panel(study: NeighbourhoodStudy, width: int = 72) -> str:
    """Render one query's Fig. 3 panel as text.

    Shows the true neighbour-output distribution with the ground-truth
    envelope, then one line per sample size with UPA's inferred range
    markers and its coverage.
    """
    truth = study.truth
    outputs = truth.neighbour_outputs[:, 0]
    lines = [
        f"{study.query_name}: {outputs.shape[0]} neighbour outputs, "
        f"true envelope [{truth.range_lower[0]:.4g}, "
        f"{truth.range_upper[0]:.4g}]",
        "  truth    |"
        + ascii_histogram(
            outputs, float(truth.range_lower[0]), float(truth.range_upper[0]),
            width,
        )
        + "|",
    ]
    for entry in study.ranges:
        strip = ascii_histogram(
            outputs,
            float(entry.inferred.lower[0]),
            float(entry.inferred.upper[0]),
            width,
        )
        lines.append(
            f"  n={entry.sample_size:<6} |{strip}| "
            f"coverage {entry.coverage * 100:.1f}%"
        )
    return "\n".join(lines)
