"""Evaluation utilities: error metrics, neighbourhood studies, reports."""

from repro.analysis.distribution import NeighbourhoodStudy, study_neighbourhood
from repro.analysis.reporting import format_table, format_value
from repro.analysis.rmse import relative_rmse_percent, rmse

__all__ = [
    "NeighbourhoodStudy",
    "format_table",
    "format_value",
    "relative_rmse_percent",
    "rmse",
    "study_neighbourhood",
]
