"""Error metrics used by the Fig. 2(a) accuracy comparison."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def rmse(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Root mean square error between paired estimates and truths."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"shape mismatch: {estimates.shape} vs {truths.shape}"
        )
    if estimates.size == 0:
        raise ValueError("rmse of empty sequences")
    return float(np.sqrt(np.mean((estimates - truths) ** 2)))


def relative_rmse_percent(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """RMSE normalized by the mean ground truth, in percent.

    The paper reports "3.81 % RMSE" — error relative to the true
    sensitivity scale; this is that normalization.  A zero mean truth
    (degenerate) falls back to absolute RMSE.
    """
    truths_arr = np.asarray(truths, dtype=float)
    error = rmse(estimates, truths)
    scale = float(np.mean(np.abs(truths_arr)))
    if scale == 0.0:
        return error * 100.0
    return error / scale * 100.0
