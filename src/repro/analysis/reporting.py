"""Plain-text report tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_value(value: Any) -> str:
    """Benchmark-friendly scalar formatting (scientific for extremes)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned fixed-width table (headers + separator + rows)."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max([len(h)] + [len(row[i]) for row in cells])
        for i, h in enumerate(headers)
    ]
    def fmt_row(values: Sequence[str]) -> str:
        return " | ".join(v.ljust(w) for v, w in zip(values, widths))

    lines = [fmt_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)
