"""Utility studies: how accurate are UPA's released answers?

The paper argues accuracy of the *sensitivity* translates into utility
of the *released values* (noise is proportional to sensitivity).  This
module measures that end-to-end: relative error of released answers
across trials and epsilons, for UPA's inferred sensitivity versus what
a system forced to use FLEX's (overestimated) sensitivity would
release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.rng import derive_seed
from repro.core.query import MapReduceQuery, Tables
from repro.core.session import UPAConfig, UPASession
from repro.dp.mechanisms import LaplaceMechanism


@dataclass
class UtilityPoint:
    """Released-answer error statistics at one epsilon."""

    epsilon: float
    mean_absolute_error: float
    mean_relative_error: float  # fraction of |truth| (inf-safe)


@dataclass
class UtilityStudy:
    """Utility-vs-epsilon curve for one query."""

    query_name: str
    truth: float
    points: List[UtilityPoint]


def released_error_curve(
    query: MapReduceQuery,
    tables: Tables,
    epsilons: Sequence[float],
    trials: int = 10,
    sample_size: int = 500,
    seed: int = 0,
) -> UtilityStudy:
    """Measure UPA's released-answer error across epsilons.

    Each trial uses a fresh session (fresh enforcer registry) so trials
    are independent first submissions.
    """
    truth = float(query.output(tables).reshape(-1)[0])
    points = []
    for epsilon in epsilons:
        errors = []
        for trial in range(trials):
            session = UPASession(
                UPAConfig(
                    sample_size=sample_size,
                    seed=derive_seed(seed, f"utility-{epsilon}-{trial}"),
                )
            )
            released = session.run(query, tables, epsilon=epsilon)
            errors.append(abs(released.noisy_scalar() - truth))
        mae = float(np.mean(errors))
        scale = max(abs(truth), 1e-12)
        points.append(UtilityPoint(epsilon, mae, mae / scale))
    return UtilityStudy(query.name, truth, points)


def noise_with_sensitivity(
    truth: float,
    sensitivity: float,
    epsilon: float,
    trials: int = 100,
    seed: int = 0,
) -> float:
    """Mean absolute error if noise were calibrated to ``sensitivity``.

    Used to show what FLEX's overestimated sensitivities would cost in
    utility for the same epsilon.
    """
    mechanism = LaplaceMechanism(epsilon, seed=derive_seed(seed, "what-if"))
    errors = [
        abs(mechanism.randomize(truth, sensitivity) - truth)
        for _ in range(trials)
    ]
    return float(np.mean(errors))
