"""Exception hierarchy for the UPA reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch either a precise error or the whole family.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EngineError(ReproError):
    """Raised by the MapReduce engine (scheduling, shuffle, storage)."""


class TaskFailedError(EngineError):
    """A task failed more times than the configured retry limit."""

    def __init__(self, stage_id: int, partition: int, attempts: int, cause: Exception):
        super().__init__(
            f"task for stage {stage_id} partition {partition} failed "
            f"after {attempts} attempts: {cause!r}"
        )
        self.stage_id = stage_id
        self.partition = partition
        self.attempts = attempts
        self.cause = cause


class SQLError(ReproError):
    """Raised by the SQL layer (parsing, analysis, execution)."""


class ParseError(SQLError):
    """Raised when SQL text cannot be parsed."""

    def __init__(self, message: str, position: int = -1):
        suffix = f" (at position {position})" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class AnalysisError(SQLError):
    """Raised when a logical plan fails semantic analysis."""


class DPError(ReproError):
    """Raised by differential-privacy components."""


class PrivacyBudgetExceeded(DPError):
    """The privacy accountant refused a query: not enough budget left."""

    def __init__(self, requested: float, remaining: float):
        super().__init__(
            f"privacy budget exceeded: requested epsilon={requested}, "
            f"remaining={remaining}"
        )
        self.requested = requested
        self.remaining = remaining


class FlexUnsupportedError(DPError):
    """FLEX's static analysis does not support the submitted query.

    The paper (Table II) shows FLEX supporting only counting queries
    built from Select/Join/Filter/Count; everything else raises this.
    """


class QueryShapeError(DPError):
    """A query does not expose the Mapper/Reducer decomposition UPA needs."""


class StaticAnalysisError(DPError):
    """The static analyzer (upalint) found error-severity diagnostics.

    Raised by strict-mode sessions at query registration; carries the
    diagnostics so callers can render or log them.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
