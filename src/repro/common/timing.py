"""Tiny timing helper used by benchmarks and the engine's metrics."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager measuring wall-clock time in seconds.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
