"""Explicit declassification for values derived from protected data.

The taint pass (:mod:`repro.staticcheck.taint`) tracks values derived
from protected tables and flags any that reach a release sink without
passing through ``session.run()``/``run_sql()`` — the pipeline's only
privacy-preserving exits.  Some legitimate scripts do need another
exit: a count the analyst has verified is public metadata, a value
noised by an external mechanism, a debugging dump behind an access
control the linter cannot see.

``declassify(value, reason=...)`` is that exit.  At runtime it is the
identity function — it adds **no** privacy protection whatsoever; it
is an auditable, grep-able assertion by the author that releasing
``value`` is safe for a stated reason.  upalint treats its result as
untainted; the mandatory ``reason`` keeps the assertion honest in
review.
"""

from __future__ import annotations

from typing import TypeVar

T = TypeVar("T")


def declassify(value: T, *, reason: str) -> T:
    """Assert that ``value`` is safe to release despite its provenance.

    Identity at runtime; a sanitizer to the taint pass.  ``reason``
    is required and must be non-empty — an unexplained declassification
    is indistinguishable from a leak in review.
    """
    if not reason or not reason.strip():
        raise ValueError(
            "declassify() requires a non-empty reason: state why this "
            "value is safe to release"
        )
    return value
