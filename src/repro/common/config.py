"""Engine configuration.

A single frozen dataclass so configuration is explicit and immutable
once a context is created.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: executor backends the scheduler knows how to run jobs on.
EXECUTOR_BACKENDS = ("inline", "threads", "processes")


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for :class:`repro.engine.context.EngineContext`.

    Attributes:
        default_parallelism: number of partitions used when callers do
            not specify one.
        max_task_retries: how many times a failed task is retried before
            the job is aborted (lineage makes retries cheap).
        backend: executor backend for partition tasks —

            * ``"inline"`` (default): tasks run sequentially on the
              calling thread;
            * ``"threads"``: a persistent thread pool.  The engine is
              pure Python, so threads mostly model concurrency (they
              matter for fault-injection tests) — the GIL serializes
              interpreter work;
            * ``"processes"``: a persistent ``ProcessPoolExecutor``.
              Workers receive pickled task closures (base partition
              records plus the narrow operator chain), so jobs whose
              functions or lineage cannot cross a process boundary
              transparently fall back to the thread/inline path (the
              ``process_fallbacks`` counter records when).

        use_threads: legacy spelling of ``backend="threads"``; kept so
            existing configs keep working.  Ignored when ``backend`` is
            set to anything other than ``"inline"``.
        max_workers: pool size when ``backend`` is threads or processes.
        process_start_method: multiprocessing start method for the
            process backend (``"fork"``/``"spawn"``/``"forkserver"``);
            None uses the platform default.  CI runs the suite under
            ``"spawn"`` so macOS/Windows semantics are covered on Linux.
        cache_capacity_blocks: maximum number of partition blocks kept by
            the block store before LRU eviction.
        shuffle_record_cost: simulated network cost (abstract units) per
            shuffled record, used by the metrics-based cost model.
        broadcast_record_cost: simulated cost per broadcast record.
        seed: base seed for any engine-internal randomness (sampling,
            fault injection).
    """

    default_parallelism: int = 4
    max_task_retries: int = 3
    backend: str = "inline"
    use_threads: bool = False
    max_workers: int = 4
    process_start_method: Optional[str] = None
    cache_capacity_blocks: int = 4096
    shuffle_record_cost: float = 1.0
    broadcast_record_cost: float = 0.05
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.backend!r}; "
                f"expected one of {EXECUTOR_BACKENDS}"
            )
        if self.process_start_method not in (
            None, "fork", "spawn", "forkserver"
        ):
            raise ValueError(
                "process_start_method must be one of fork/spawn/"
                f"forkserver, got {self.process_start_method!r}"
            )

    @property
    def effective_backend(self) -> str:
        """The backend after legacy ``use_threads`` resolution."""
        if self.backend == "inline" and self.use_threads:
            return "threads"
        return self.backend

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = EngineConfig()
