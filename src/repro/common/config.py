"""Engine configuration.

A single frozen dataclass so configuration is explicit and immutable
once a context is created.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for :class:`repro.engine.context.EngineContext`.

    Attributes:
        default_parallelism: number of partitions used when callers do
            not specify one.
        max_task_retries: how many times a failed task is retried before
            the job is aborted (lineage makes retries cheap).
        use_threads: run partition tasks on a thread pool.  The engine is
            pure Python, so threads mostly model concurrency rather than
            speed things up; they matter for fault-injection tests.
        max_workers: thread-pool size when ``use_threads`` is set.
        cache_capacity_blocks: maximum number of partition blocks kept by
            the block store before LRU eviction.
        shuffle_record_cost: simulated network cost (abstract units) per
            shuffled record, used by the metrics-based cost model.
        broadcast_record_cost: simulated cost per broadcast record.
        seed: base seed for any engine-internal randomness (sampling,
            fault injection).
    """

    default_parallelism: int = 4
    max_task_retries: int = 3
    use_threads: bool = False
    max_workers: int = 4
    cache_capacity_blocks: int = 4096
    shuffle_record_cost: float = 1.0
    broadcast_record_cost: float = 0.05
    seed: Optional[int] = 0

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = EngineConfig()
