"""Shared utilities used across every subsystem of the UPA reproduction.

This package deliberately holds only small, dependency-free helpers:
error types, seeded randomness, configuration and timing.  Everything
else lives in its own subsystem package (``repro.engine``, ``repro.sql``,
``repro.core``, ...).
"""

from repro.common.config import EngineConfig
from repro.common.errors import (
    DPError,
    EngineError,
    FlexUnsupportedError,
    PrivacyBudgetExceeded,
    ReproError,
    SQLError,
)
from repro.common.release import declassify
from repro.common.rng import derive_seed, make_rng
from repro.common.timing import Timer

__all__ = [
    "DPError",
    "EngineConfig",
    "EngineError",
    "FlexUnsupportedError",
    "PrivacyBudgetExceeded",
    "ReproError",
    "SQLError",
    "Timer",
    "declassify",
    "derive_seed",
    "make_rng",
]
