"""Seeded randomness helpers.

Determinism matters throughout the reproduction: data generation,
sampling, noise and fault injection must all be reproducible from a
single seed.  These helpers derive independent child seeds from a parent
seed and a string label, so subsystems never share RNG state.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable child seed from ``parent_seed`` and a label.

    Uses SHA-256 so that different labels give statistically independent
    streams, and the same (seed, label) pair always gives the same child.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_63


def make_rng(seed: Optional[int], label: str = "") -> random.Random:
    """Create a :class:`random.Random` from an optional seed and label."""
    if seed is None:
        return random.Random()
    return random.Random(derive_seed(seed, label) if label else seed)


def make_numpy_rng(seed: Optional[int], label: str = "") -> np.random.Generator:
    """Create a NumPy generator from an optional seed and label."""
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(derive_seed(seed, label) if label else seed)
