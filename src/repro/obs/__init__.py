"""repro.obs: observability for the UPA pipeline.

Post-hoc pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — contextvar-propagated span tracer with
  Chrome trace-event export; zero-cost when disabled.
* :mod:`repro.obs.ledger` — append-only privacy audit ledger recording
  the fitted normal parameters, inferred output range, sensitivity,
  RANGE ENFORCER outcomes and epsilon charged per release.
* :mod:`repro.obs.report` — the :class:`ObservedRun` report object and
  the per-phase/percentile breakdowns behind ``repro report``.

Live-monitoring pillars (same doc, "Live monitoring"):

* :mod:`repro.obs.exporters` — Prometheus text exposition and
  OTLP-style JSON over metrics snapshots and span trees.
* :mod:`repro.obs.server` — the :class:`ObservabilityServer` HTTP
  endpoints (``/metrics``, ``/healthz``, ``/ledger``, ``/traces``,
  ``/budget``, ``/profile``) behind ``repro … --serve``.
* :mod:`repro.obs.alerts` — declarative :class:`AlertRule`s (budget
  burn rate, sensitivity drift, clamp rate) driven by ledger appends
  and metrics scrapes.
* :mod:`repro.obs.profiler` — the span-attributing
  :class:`SamplingProfiler` with collapsed-stack export.
* :mod:`repro.obs.crossproc` — cross-process telemetry for
  ``backend="processes"``: span parentage shipped down to workers
  (:class:`SpanContext`), worker spans/metrics/profiles piggybacked
  back (:class:`WorkerTelemetry`) and merged under ``worker=<pid>``
  labels.
* :mod:`repro.obs.timeseries` — the bounded :class:`TimeSeriesStore`
  ring buffers behind continuous monitoring: sampled metric history,
  counter→rate derivation, exhaustion forecasts and the JSONL
  time-series artifact (``--timeseries``).
* :mod:`repro.obs.watch` — pure terminal rendering for ``repro
  watch`` (unicode sparklines over ``/timeseries`` payloads).

Observer code must never influence query outputs: calling into this
package from a mapper/reducer is flagged by upalint (UPA011), and
starting a server/profiler there by UPA013.
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    BudgetBurnRule,
    ClampRateRule,
    GaugeThresholdRule,
    RateRule,
    SensitivityDriftRule,
    TrendRule,
    WorkerRssRule,
    WorkerStarvationRule,
    default_rules,
)
from repro.obs.crossproc import (
    SpanContext,
    WorkerTelemetry,
    merge_telemetry,
    worker_table,
)
from repro.obs.exporters import (
    labeled_name,
    render_dashboard,
    render_otlp_metrics,
    render_otlp_spans,
    render_prometheus,
    sanitize_metric_name,
    sparkline_svg,
    split_labeled_name,
)
from repro.obs.ledger import LedgerEntry, PrivacyLedger, make_entry
from repro.obs.profiler import (
    SamplingProfiler,
    parse_collapsed,
    span_table_from_collapsed,
)
from repro.obs.report import ObservedRun, SpanStat, run_header
from repro.obs.server import ObservabilityServer
from repro.obs.timeseries import (
    KEY_SERIES,
    TIMESERIES_FORMAT,
    TimeSeriesStore,
    forecast_exhaustion,
    least_squares_slope,
    order_series,
)
from repro.obs.watch import render_watch, spark
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_span_chain,
    current_span,
    get_tracer,
    set_tracer,
    trace,
    use_tracer,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BudgetBurnRule",
    "ClampRateRule",
    "GaugeThresholdRule",
    "KEY_SERIES",
    "LedgerEntry",
    "NULL_TRACER",
    "NullTracer",
    "ObservabilityServer",
    "ObservedRun",
    "PrivacyLedger",
    "RateRule",
    "SamplingProfiler",
    "SensitivityDriftRule",
    "Span",
    "SpanContext",
    "SpanStat",
    "TIMESERIES_FORMAT",
    "TimeSeriesStore",
    "Tracer",
    "TrendRule",
    "WorkerRssRule",
    "WorkerStarvationRule",
    "WorkerTelemetry",
    "active_span_chain",
    "current_span",
    "default_rules",
    "forecast_exhaustion",
    "get_tracer",
    "labeled_name",
    "least_squares_slope",
    "make_entry",
    "merge_telemetry",
    "order_series",
    "parse_collapsed",
    "render_dashboard",
    "render_otlp_metrics",
    "render_otlp_spans",
    "render_prometheus",
    "render_watch",
    "run_header",
    "sanitize_metric_name",
    "set_tracer",
    "spark",
    "span_table_from_collapsed",
    "sparkline_svg",
    "split_labeled_name",
    "trace",
    "use_tracer",
    "worker_table",
]
