"""repro.obs: observability for the UPA pipeline.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — contextvar-propagated span tracer with
  Chrome trace-event export; zero-cost when disabled.
* :mod:`repro.obs.ledger` — append-only privacy audit ledger recording
  the fitted normal parameters, inferred output range, sensitivity,
  RANGE ENFORCER outcomes and epsilon charged per release.
* :mod:`repro.obs.report` — the :class:`ObservedRun` report object and
  the per-phase/percentile breakdowns behind ``repro report``.

Observer code must never influence query outputs: calling into this
package from a mapper/reducer is flagged by upalint (UPA011).
"""

from repro.obs.ledger import LedgerEntry, PrivacyLedger, make_entry
from repro.obs.report import ObservedRun, SpanStat, run_header
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    trace,
    use_tracer,
)

__all__ = [
    "LedgerEntry",
    "NULL_TRACER",
    "NullTracer",
    "ObservedRun",
    "PrivacyLedger",
    "Span",
    "SpanStat",
    "Tracer",
    "current_span",
    "get_tracer",
    "make_entry",
    "run_header",
    "set_tracer",
    "trace",
    "use_tracer",
]
