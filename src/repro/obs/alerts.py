"""Declarative runtime alerting over the privacy ledger and metrics.

Production DP systems live or die by three live questions the post-hoc
report cannot answer in time:

* **How fast is the budget burning?**  :class:`BudgetBurnRule`
  forecasts, at the current average epsilon charge per release, how
  many more releases fit before the
  :class:`~repro.dp.budget.PrivacyAccountant` is exhausted.
* **Has inferred sensitivity drifted?**  :class:`SensitivityDriftRule`
  keeps a rolling mean/stddev of ``local_sensitivity`` per query
  fingerprint and fires on a z-score excursion — the repeated-query
  attack surface RANGE ENFORCER (Algorithm 2) defends, made observable:
  a later submission of the same query whose inferred sensitivity jumps
  is exactly the signal an operator wants paged on.
* **Is RANGE ENFORCER clamping too often?**  :class:`ClampRateRule`
  fires when the fraction of clamped releases exceeds a threshold —
  persistent clamping means the fitted range is systematically tighter
  than the data, i.e. utility is silently degrading.

Rules are evaluated by an :class:`AlertEngine` on every ledger append
(attach it with :meth:`AlertEngine.attach`) and on every metrics tick
(:meth:`AlertEngine.observe_metrics` — the introspection server calls
this per scrape).  Fired alerts land in the ledger header, the
``ObservedRun`` report, the ``/healthz`` endpoint (degraded status) and
the CLI exit summary.

A third hook, ``on_window``, evaluates *windowed* conditions against a
:class:`~repro.obs.timeseries.TimeSeriesStore` — rates and trends over
sliding time windows rather than point-in-time snapshots.  The engine
runs it on every store tick once :meth:`AlertEngine.attach_timeseries`
is wired (``UPASession.attach_timeseries`` does this), which is how a
continuous ``append``/``retire`` session gets its budget exhaustion
*forecast in seconds* (windowed :class:`BudgetBurnRule`), clamp-rate
spike detection (:class:`RateRule`) and sensitivity/worker-RSS growth
trends (:class:`TrendRule`).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.dp.budget import PrivacyAccountant
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.ledger import LedgerEntry, PrivacyLedger
from repro.obs.timeseries import (
    TimeSeriesStore,
    forecast_exhaustion,
    least_squares_slope,
)


@dataclass(frozen=True)
class Alert:
    """One rule firing.

    ``sequence`` is the ledger sequence that triggered it (None for
    metrics-tick firings); ``context`` carries the numbers behind the
    decision so the message never needs re-deriving.
    """

    rule: str
    severity: str  # "warning" | "critical"
    message: str
    sequence: Optional[int] = None
    context: Dict[str, Any] = field(default_factory=dict)
    unix_time: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "sequence": self.sequence,
            "context": dict(self.context),
            "unix_time": self.unix_time,
        }


class AlertRule:
    """Base rule: override one (or more) evaluation hooks.

    ``on_entry`` sees the appended entry plus the full prior history
    (the new entry is ``history[-1]``); ``on_metrics`` sees a metrics
    snapshot; ``on_window`` sees the time-series store as of ``now``
    (points after ``now`` are excluded, so artifact replay evaluates
    each historical tick faithfully).  All return an :class:`Alert` to
    fire or None.
    """

    name = "rule"

    def on_entry(
        self,
        entry: LedgerEntry,
        history: Sequence[LedgerEntry],
        accountant: Optional[PrivacyAccountant],
    ) -> Optional[Alert]:
        return None

    def on_metrics(self, snapshot: MetricsSnapshot) -> Optional[Alert]:
        return None

    def on_window(
        self, store: TimeSeriesStore, now: float
    ) -> Optional[Alert]:
        return None


def _charged(history: Sequence[LedgerEntry]) -> List[LedgerEntry]:
    """Entries that actually spent budget (cache hits charge nothing)."""
    return [e for e in history if not e.cache_hit]


@dataclass
class BudgetBurnRule(AlertRule):
    """Forecast budget exhaustion from the burn rate, two ways.

    Per ledger entry (``on_entry``): average the epsilon charged over
    the last ``window`` charged entries, read the remaining balance
    (live from the accountant when available, else from the entry's
    recorded ``accountant_remaining_epsilon``), and fire when
    ``remaining / average`` drops below ``min_releases_remaining``.

    Per time-series tick (``on_window``): derive the epsilon charge
    rate (epsilon/second) over the trailing ``rate_window_seconds`` of
    the ``release.epsilon_charged`` counter and fire when
    ``remaining / rate`` forecasts exhaustion within
    ``min_seconds_remaining`` — a *wall-clock* forecast, which is what
    a continuous append/retire deployment actually pages on.

    Silent when no balance is known — there is nothing to forecast
    against without an accountant.
    """

    min_releases_remaining: float = 5.0
    window: int = 10
    #: windowed path: fire when exhaustion is forecast within this many
    #: seconds at the trailing charge rate.
    min_seconds_remaining: float = 300.0
    rate_window_seconds: float = 300.0
    name: str = "budget-burn"

    def on_window(self, store, now):
        forecast = forecast_exhaustion(
            store, window=self.rate_window_seconds, now=now
        )
        if forecast is None:
            return None
        seconds = forecast["seconds_to_exhaustion"]
        if seconds >= self.min_seconds_remaining:
            return None
        releases = forecast.get("releases_to_exhaustion")
        suffix = (
            f", ~{releases:.0f} release(s)" if releases is not None else ""
        )
        return Alert(
            rule=self.name,
            severity=(
                "critical"
                if seconds < self.min_seconds_remaining / 10.0
                else "warning"
            ),
            message=(
                f"budget burn-rate: exhaustion forecast in ~{seconds:.0f}s"
                f"{suffix} at the trailing charge rate "
                f"({forecast['epsilon_per_second']:g} eps/s over "
                f"{self.rate_window_seconds:g}s, remaining epsilon "
                f"{forecast['remaining_epsilon']:g})"
            ),
            context={
                "metric": MetricsRegistry.RELEASE_EPSILON,
                "forecast_seconds_to_exhaustion": seconds,
                **forecast,
            },
            unix_time=now,
        )

    def on_entry(self, entry, history, accountant):
        if entry.cache_hit:
            return None
        remaining: Optional[float] = None
        total: Optional[float] = None
        if accountant is not None:
            balance = accountant.describe()
            remaining = balance["remaining_epsilon"]
            total = balance["total_epsilon"]
        elif entry.accountant_remaining_epsilon is not None:
            remaining = float(entry.accountant_remaining_epsilon)
        if remaining is None:
            return None
        recent = _charged(history)[-self.window:]
        charges = [e.epsilon_charged for e in recent if e.epsilon_charged > 0]
        if not charges:
            return None
        burn = sum(charges) / len(charges)
        forecast = remaining / burn if burn > 0 else math.inf
        if forecast >= self.min_releases_remaining:
            return None
        return Alert(
            rule=self.name,
            severity="critical" if forecast < 1.0 else "warning",
            message=(
                f"budget burn-rate: ~{forecast:.1f} release(s) left at the "
                f"current spend (remaining epsilon {remaining:g}, mean "
                f"charge {burn:g} over last {len(charges)} release(s))"
            ),
            sequence=entry.sequence,
            context={
                "remaining_epsilon": remaining,
                "total_epsilon": total,
                "mean_epsilon_charged": burn,
                "forecast_releases_remaining": forecast,
            },
        )


@dataclass
class SensitivityDriftRule(AlertRule):
    """Rolling z-score of ``local_sensitivity`` per query fingerprint.

    For each charged release, the baseline is the mean/stddev of the
    *prior* ``window`` charged entries with the same query name.  With
    at least ``min_history`` baseline points, fire when
    ``|value - mean| / stddev`` exceeds ``z_threshold``; a zero-stddev
    baseline fires on any deviation at all (the strongest drift signal
    a constant history can give).
    """

    z_threshold: float = 3.0
    min_history: int = 5
    window: int = 50
    name: str = "sensitivity-drift"

    def on_entry(self, entry, history, accountant):
        if entry.cache_hit:
            return None
        prior = [
            e for e in _charged(history[:-1]) if e.query == entry.query
        ][-self.window:]
        if len(prior) < self.min_history:
            return None
        values = [e.local_sensitivity for e in prior]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        stddev = math.sqrt(variance)
        deviation = entry.local_sensitivity - mean
        if stddev == 0.0:
            if deviation == 0.0:
                return None
            z = math.inf
        else:
            z = deviation / stddev
            if abs(z) <= self.z_threshold:
                return None
        return Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"sensitivity drift on {entry.query!r}: local_sensitivity "
                f"{entry.local_sensitivity:g} is {z:+.1f} sigma from the "
                f"rolling baseline (mean {mean:g}, stddev {stddev:g}, "
                f"n={len(values)}) — inspect before releasing further "
                "answers for this query"
            ),
            sequence=entry.sequence,
            context={
                "query": entry.query,
                "local_sensitivity": entry.local_sensitivity,
                "baseline_mean": mean,
                "baseline_stddev": stddev,
                "baseline_count": len(values),
                "z_score": z if math.isfinite(z) else None,
            },
        )


@dataclass
class ClampRateRule(AlertRule):
    """RANGE ENFORCER clamp-rate threshold over charged releases."""

    max_rate: float = 0.5
    min_entries: int = 5
    name: str = "clamp-rate"

    def on_entry(self, entry, history, accountant):
        charged = _charged(history)
        if len(charged) < self.min_entries:
            return None
        clamped = sum(1 for e in charged if e.clamped)
        rate = clamped / len(charged)
        if rate <= self.max_rate:
            return None
        return Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"RANGE ENFORCER clamped {clamped}/{len(charged)} releases "
                f"({rate:.0%} > {self.max_rate:.0%}): the fitted range is "
                "systematically tighter than the data"
            ),
            sequence=entry.sequence,
            context={
                "clamped": clamped,
                "entries": len(charged),
                "clamp_rate": rate,
            },
        )


@dataclass
class RateRule(AlertRule):
    """Windowed rule: counter rate over a sliding window exceeds a cap.

    ``metric`` matches an exact series name or a labelled family base
    (``release.clamps`` and ``tasks_run#worker=123`` style alike); with
    several matching series the worst offender is named.  The default
    instance in :func:`default_rules` watches RANGE ENFORCER's clamp
    counter — a clamp *spike* (many clamps per second) is a different
    signal from :class:`ClampRateRule`'s clamp *fraction* and catches a
    burst of tight-range releases inside an otherwise healthy history.
    """

    metric: str = ""
    max_rate_per_second: float = math.inf
    window_seconds: float = 60.0
    min_points: int = 2
    severity: str = "warning"
    name: str = "rate"

    def on_window(self, store, now):
        from repro.obs.exporters import split_labeled_name

        worst: Optional[tuple] = None
        for raw in store.names():
            base, _ = split_labeled_name(raw)
            if raw != self.metric and base != self.metric:
                continue
            pts = store.points(
                raw, since=now - self.window_seconds, until=now
            )
            if len(pts) < self.min_points:
                continue
            rate = store.rate(raw, window=self.window_seconds, now=now)
            if rate is None or rate <= self.max_rate_per_second:
                continue
            if worst is None or rate > worst[1]:
                worst = (raw, rate)
        if worst is None:
            return None
        series, rate = worst
        return Alert(
            rule=self.name,
            severity=self.severity,
            message=(
                f"rate spike on {series}: {rate:g}/s over the trailing "
                f"{self.window_seconds:g}s exceeds "
                f"{self.max_rate_per_second:g}/s"
            ),
            context={
                "metric": self.metric,
                "series": series,
                "rate_per_second": rate,
                "max_rate_per_second": self.max_rate_per_second,
                "window_seconds": self.window_seconds,
            },
            unix_time=now,
        )


@dataclass
class TrendRule(AlertRule):
    """Windowed rule: least-squares slope over a window exceeds a cap.

    ``metric`` matches exact names or labelled family bases (so one
    rule covers every ``worker_rss_kb#worker=<pid>`` series).  With
    ``relative=True`` the slope is divided by the window's mean value,
    making the threshold a *fractional growth rate per second* — the
    scale-free form suits sensitivity drift, where absolute magnitudes
    are query-dependent.  Fires on the worst offending series.
    """

    metric: str = ""
    max_slope_per_second: float = math.inf
    window_seconds: float = 120.0
    min_points: int = 3
    relative: bool = False
    severity: str = "warning"
    name: str = "trend"

    def on_window(self, store, now):
        from repro.obs.exporters import split_labeled_name

        worst: Optional[tuple] = None
        for raw in store.names():
            base, _ = split_labeled_name(raw)
            if raw != self.metric and base != self.metric:
                continue
            pts = store.points(
                raw, since=now - self.window_seconds, until=now
            )
            if len(pts) < self.min_points:
                continue
            slope = least_squares_slope(pts)
            if slope is None:
                continue
            if self.relative:
                mean = sum(v for _, v in pts) / len(pts)
                if mean == 0.0:
                    continue
                slope = slope / abs(mean)
            if slope <= self.max_slope_per_second:
                continue
            if worst is None or slope > worst[1]:
                worst = (raw, slope)
        if worst is None:
            return None
        series, slope = worst
        unit = "fraction/s" if self.relative else "units/s"
        return Alert(
            rule=self.name,
            severity=self.severity,
            message=(
                f"upward trend on {series}: slope {slope:g} {unit} over "
                f"the trailing {self.window_seconds:g}s exceeds "
                f"{self.max_slope_per_second:g} {unit}"
            ),
            context={
                "metric": self.metric,
                "series": series,
                "slope_per_second": slope,
                "max_slope_per_second": self.max_slope_per_second,
                "window_seconds": self.window_seconds,
                "relative": self.relative,
            },
            unix_time=now,
        )


@dataclass
class GaugeThresholdRule(AlertRule):
    """Metrics-tick rule: fire while gauge ``metric`` exceeds ``max_value``."""

    metric: str = ""
    max_value: float = math.inf
    name: str = "gauge-threshold"

    def on_metrics(self, snapshot):
        if self.metric not in snapshot.gauges:
            return None
        value = snapshot.gauges[self.metric]
        if value <= self.max_value:
            return None
        return Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"gauge {self.metric} = {value:g} exceeds the configured "
                f"threshold {self.max_value:g}"
            ),
            context={"metric": self.metric, "value": value,
                     "max_value": self.max_value},
        )


@dataclass
class WorkerStarvationRule(AlertRule):
    """Process backend configured, but all work falls back to the driver.

    Fires on a metrics tick when at least ``min_fallbacks`` jobs have
    taken the fallback path while **no** worker has completed a single
    task (every ``worker_tasks_completed`` gauge absent or zero).  That
    combination means the pool is spawned and idle — typically every
    shipped lineage has an unpicklable closure — and the operator is
    paying process-pool overhead for thread-path throughput.  Silent on
    thread/inline sessions: the ``process_fallbacks`` counter only
    exists once a processes-backend scheduler is constructed.
    """

    min_fallbacks: float = 1.0
    name: str = "worker-starvation"

    def on_metrics(self, snapshot):
        from repro.obs.crossproc import WORKER_TASKS_COMPLETED
        from repro.obs.exporters import split_labeled_name

        fallbacks = snapshot.counters.get("process_fallbacks")
        if fallbacks is None or fallbacks < self.min_fallbacks:
            return None
        completed = 0.0
        for raw, value in snapshot.gauges.items():
            base, labels = split_labeled_name(raw)
            if base == WORKER_TASKS_COMPLETED and labels:
                completed += value
        if completed > 0:
            return None
        return Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"process workers are starving: {fallbacks:g} job(s) fell "
                "back to the thread/inline path and no worker has "
                "completed a task — shipped lineages are not crossing "
                "the process boundary"
            ),
            context={
                "process_fallbacks": fallbacks,
                "worker_tasks_completed": completed,
            },
        )


@dataclass
class WorkerRssRule(AlertRule):
    """Fire when any worker's rss gauge exceeds ``max_rss_kb``.

    A label-aware :class:`GaugeThresholdRule`: the per-worker
    ``worker_rss_kb`` gauges carry a ``worker=<pid>`` label, so the
    rule scans every series of the family and names the worst offender.
    The default threshold (4 GiB) is deliberately generous — the rule
    exists to catch a leaking worker, not to police normal footprints.
    """

    max_rss_kb: float = 4.0 * 1024 * 1024
    name: str = "worker-rss"

    def on_metrics(self, snapshot):
        from repro.obs.crossproc import WORKER_RSS_KB
        from repro.obs.exporters import split_labeled_name

        worst: Optional[tuple] = None
        for raw, value in snapshot.gauges.items():
            base, labels = split_labeled_name(raw)
            if base != WORKER_RSS_KB or not labels:
                continue
            if value > self.max_rss_kb and (
                worst is None or value > worst[1]
            ):
                worst = (labels.get("worker", "?"), value)
        if worst is None:
            return None
        pid, rss = worst
        return Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"worker {pid} rss {rss:g} kB exceeds the configured "
                f"threshold {self.max_rss_kb:g} kB"
            ),
            context={"worker": pid, "rss_kb": rss,
                     "max_rss_kb": self.max_rss_kb},
        )


def default_rules() -> List[AlertRule]:
    """The rules every monitored session should run.

    The ledger-driven trio (budget burn, sensitivity drift, clamp
    rate) plus the process-worker health pair — the latter are silent
    no-ops unless a processes-backend session is actually running —
    and two windowed rules that only evaluate once a time-series store
    is attached: a clamp-rate spike detector and a worker-RSS growth
    trend (sustained > 1 MiB/s over two minutes means a leaking
    worker, not a working set).  Sensitivity-drift trends are left to
    explicit :class:`TrendRule` instances because a useful relative
    threshold is workload-specific.
    """
    return [
        BudgetBurnRule(),
        SensitivityDriftRule(),
        ClampRateRule(),
        WorkerStarvationRule(),
        WorkerRssRule(),
        RateRule(
            metric=MetricsRegistry.RELEASE_CLAMPS,
            max_rate_per_second=1.0,
            window_seconds=60.0,
            min_points=3,
            name="clamp-spike",
        ),
        TrendRule(
            metric="worker_rss_kb",
            max_slope_per_second=1024.0,
            window_seconds=120.0,
            min_points=5,
            name="worker-rss-growth",
        ),
    ]


class AlertEngine:
    """Evaluates rules on ledger appends and metrics ticks; keeps firings.

    Thread-safe: ledger appends arrive from the session thread while
    the introspection server ticks metrics from scrape threads.
    Metrics-tick rules are deduplicated per (rule, metric context) so a
    scrape loop does not refile the same condition every second;
    ledger-entry firings are naturally unique per sequence.
    """

    def __init__(
        self,
        rules: Optional[Sequence[AlertRule]] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ):
        self.rules = list(rules) if rules is not None else default_rules()
        self.accountant = accountant
        self._lock = threading.Lock()
        self._alerts: List[Alert] = []
        self._history: List[LedgerEntry] = []
        self._metric_fired: set = set()
        self._window_fired: set = set()
        self._ledger: Optional[PrivacyLedger] = None
        self._timeseries: Optional[TimeSeriesStore] = None

    # -- wiring -------------------------------------------------------
    def attach(self, ledger: PrivacyLedger) -> "AlertEngine":
        """Subscribe to ``ledger`` appends; firings land in its header."""
        self._ledger = ledger
        ledger.add_listener(self.observe_entry)
        return self

    def attach_timeseries(self, store: TimeSeriesStore) -> "AlertEngine":
        """Evaluate windowed rules on every tick of ``store``."""
        self._timeseries = store
        store.add_listener(lambda s, t: self.observe_window(s, now=t))
        return self

    # -- evaluation ---------------------------------------------------
    def observe_entry(self, entry: LedgerEntry) -> List[Alert]:
        """Evaluate every rule against one appended ledger entry."""
        with self._lock:
            self._history.append(entry)
            history = list(self._history)
        fired: List[Alert] = []
        for rule in self.rules:
            alert = rule.on_entry(entry, history, self.accountant)
            if alert is not None:
                fired.append(alert)
        if fired:
            self._record(fired)
        return fired

    def observe_metrics(self, snapshot: MetricsSnapshot) -> List[Alert]:
        """Evaluate metrics-tick rules against one snapshot."""
        fired: List[Alert] = []
        for rule in self.rules:
            alert = rule.on_metrics(snapshot)
            if alert is None:
                continue
            key = (alert.rule, alert.message)
            with self._lock:
                if key in self._metric_fired:
                    continue
                self._metric_fired.add(key)
            fired.append(alert)
        if fired:
            self._record(fired)
        return fired

    def observe_window(
        self, store: TimeSeriesStore, now: Optional[float] = None
    ) -> List[Alert]:
        """Evaluate windowed rules against the store as of ``now``.

        Deduplicated per (rule, metric, series) — the *condition*, not
        the message, because windowed messages embed numbers that churn
        every tick.  A rule that keeps being true therefore fires once,
        same philosophy as the metrics-tick dedupe.
        """
        t = time.time() if now is None else float(now)
        fired: List[Alert] = []
        for rule in self.rules:
            alert = rule.on_window(store, t)
            if alert is None:
                continue
            key = (
                alert.rule,
                alert.context.get("metric", ""),
                alert.context.get("series", ""),
            )
            with self._lock:
                if key in self._window_fired:
                    continue
                self._window_fired.add(key)
            fired.append(alert)
        if fired:
            self._record(fired)
        return fired

    def _record(self, fired: Sequence[Alert]) -> None:
        with self._lock:
            self._alerts.extend(fired)
        if self._ledger is not None:
            self._ledger.update_header(alerts=self.to_dicts())

    # -- queries ------------------------------------------------------
    def alerts(self) -> List[Alert]:
        with self._lock:
            return list(self._alerts)

    @property
    def degraded(self) -> bool:
        """True once any rule has fired (the ``/healthz`` signal)."""
        with self._lock:
            return bool(self._alerts)

    def firing_rules(self) -> List[str]:
        """Distinct rule names that have fired, in first-firing order."""
        seen: List[str] = []
        for alert in self.alerts():
            if alert.rule not in seen:
                seen.append(alert.rule)
        return seen

    def to_dicts(self) -> List[dict]:
        return [a.to_dict() for a in self.alerts()]

    def summary(self) -> str:
        """CLI exit-summary rendering ('' when nothing fired)."""
        alerts = self.alerts()
        if not alerts:
            return ""
        lines = [f"{len(alerts)} alert(s) fired:"]
        for alert in alerts:
            where = f" [entry {alert.sequence}]" if (
                alert.sequence is not None) else ""
            lines.append(
                f"  {alert.severity.upper()} {alert.rule}{where}: "
                f"{alert.message}"
            )
        return "\n".join(lines)

    def replay(
        self, source: Union[PrivacyLedger, TimeSeriesStore]
    ) -> List[Alert]:
        """Evaluate an existing artifact against the rules.

        A :class:`PrivacyLedger` replays entry by entry; a
        :class:`TimeSeriesStore` (e.g. rebuilt from a ``--timeseries``
        JSONL artifact via :meth:`TimeSeriesStore.read_jsonl`) replays
        tick by tick, evaluating each window *as of* that tick so the
        replay fires exactly what a live session would have.  Returns
        everything fired during the replay.
        """
        if isinstance(source, TimeSeriesStore):
            return self.replay_timeseries(source)
        fired: List[Alert] = []
        for entry in source.entries():
            fired.extend(self.observe_entry(entry))
        return fired

    def replay_timeseries(self, store: TimeSeriesStore) -> List[Alert]:
        fired: List[Alert] = []
        for t in store.tick_times():
            fired.extend(self.observe_window(store, now=t))
        return fired
