"""Cross-process telemetry for the ``processes`` executor backend.

The observability stack (:mod:`repro.obs`) is contextvar- and
thread-local: spans nest through a ``ContextVar``, the profiler walks
``sys._current_frames()``, the metrics registry lives on the driver's
``EngineContext``.  None of that crosses a process boundary, so without
this module a ``backend="processes"`` run produces no worker-side
spans, task histograms or profile samples — the surfaces silently
report a fraction of the real work.

The design has two halves and **no extra IPC channel**:

* **Ship parentage down.**  A picklable :class:`SpanContext` rides
  inside each :class:`~repro.engine.procpool.ProcessTask`.  It carries
  the coordinator's ``engine.job`` span id and the live profiler rate;
  a few dozen bytes on a payload that already holds the partition.

* **Piggyback telemetry up.**  The worker keeps lazily-created
  *worker-local* instances of the same primitives — a
  :class:`~repro.obs.tracing.Tracer`, a
  :class:`~repro.engine.metrics.MetricsRegistry`, a
  :class:`~repro.obs.profiler.SamplingProfiler` — and wraps each task
  in an ``engine.task`` span with the tracer installed as the process
  ambient (:func:`repro.obs.tracing.set_tracer`) and the registry as
  the ambient registry
  (:func:`repro.engine.metrics.set_ambient_metrics`), so instrumented
  code deep in the task (monoid batch kernels, fused SQL stages) lands
  in the worker-local collectors.  On completion the *delta* — new
  spans as :meth:`~repro.obs.tracing.Span.to_dict` dicts, counter and
  histogram increments, worker health facts (pid, rss via
  ``resource.getrusage``, uptime, tasks completed), drained profiler
  stacks — travels back as the third element of the task result tuple
  (:class:`WorkerTelemetry`).

The driver merges each delta exactly once per *recorded* result
(:func:`merge_telemetry`): spans are adopted with remapped ids and
re-parented under the job span
(:meth:`~repro.obs.tracing.Tracer.merge_foreign_spans`), metrics are
re-recorded under a ``worker=<pid>`` label
(:func:`repro.obs.exporters.labeled_name`), health facts become
labelled gauges, and profile stacks add into the driver profiler with
span attribution intact.  A task attempt lost to a dying worker ships
nothing, so respawn/retry accounting cannot double-count.

Everything here is gated on the driver's tracer being enabled: an
untraced processes run ships the same 2-tuple it always did, keeping
the disabled path's overhead at zero.
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine.metrics import (
    MetricsRegistry,
    set_ambient_metrics,
)
from repro.obs.exporters import labeled_name
from repro.obs.profiler import SamplingProfiler
from repro.obs.tracing import (
    Tracer,
    _active_by_thread,
    _current_span,
    set_tracer,
)

#: per-worker health gauges, exported with a ``worker=<pid>`` label.
WORKER_RSS_KB = "worker_rss_kb"
WORKER_UPTIME_SECONDS = "worker_uptime_seconds"
WORKER_TASKS_COMPLETED = "worker_tasks_completed"

#: worker-side histogram: records in each task's base partition.
TASK_RECORDS = "task_records"


@dataclass(frozen=True)
class SpanContext:
    """Picklable span parentage shipped inside a process task.

    The wire format of "where does this task hang in the span tree":
    the coordinator's ``engine.job`` span id, whether tracing is on at
    all, and the driver profiler's sampling rate (0.0 = no profiling)
    so the worker can mirror it.  Frozen because it is shared state
    crossing a process boundary — a worker must not mutate it.
    """

    parent_span_id: Optional[int] = None
    enabled: bool = True
    profile_hz: float = 0.0


@dataclass
class WorkerTelemetry:
    """One task's telemetry delta, piggybacked on the result tuple.

    Plain dicts/tuples only — the driver-side primitives
    (``MetricsRegistry`` holds a lock, ``Tracer`` holds spans with
    tracer backrefs) do not pickle, and should not: the delta is data,
    not behaviour.
    """

    pid: int
    #: echo of :attr:`SpanContext.parent_span_id`, so the driver-side
    #: merge needs no extra bookkeeping to re-parent worker spans.
    parent_span_id: Optional[int]
    #: the worker tracer's wall-clock epoch; the driver rebases span
    #: start times by the epoch difference.
    wall_epoch: float
    spans: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    rss_kb: float = 0.0
    uptime_seconds: float = 0.0
    tasks_completed: int = 0
    profile_stacks: Dict[Tuple[str, ...], int] = field(default_factory=dict)


class _WorkerState:
    """Worker-local telemetry collectors, created on first traced task.

    One per worker *process* (module global), persistent across tasks:
    the tracer/registry accumulate and each task ships only its slice,
    while ``tasks_completed``/uptime are deliberately cumulative —
    they are health facts about the worker, not the task.
    """

    def __init__(self) -> None:
        # A fork-started worker inherits the driver's live tracing
        # state — the current-span contextvar and the per-thread span
        # registry both point at *driver* spans (the pool is typically
        # forked inside an entered engine.job span).  Parenting worker
        # spans under those would be wrong twice over: the ids belong
        # to the driver tracer's counter (colliding with ours), and the
        # merge re-parents under the job span anyway.  Start clean.
        _current_span.set(None)
        _active_by_thread.clear()
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.started = time.time()
        self.tasks_completed = 0
        self.profiler: Optional[SamplingProfiler] = None

    def ensure_profiler(self, hz: float) -> Optional[SamplingProfiler]:
        if hz <= 0:
            return None
        if self.profiler is None:
            self.profiler = SamplingProfiler(hz=hz)
        if not self.profiler.running:
            self.profiler.start()
        return self.profiler


_STATE: Optional[_WorkerState] = None


def _worker_state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        _STATE = _WorkerState()
    return _STATE


def run_traced_task(task) -> Tuple[float, Any, WorkerTelemetry]:
    """Worker-side traced execution of one :class:`ProcessTask`.

    Wraps ``task.run()`` in an ``engine.task`` span on the worker-local
    tracer (installed as the process ambient for the duration, so
    nested instrumentation parents under it) and returns
    ``(elapsed_seconds, result, telemetry)``.  A raising task
    propagates its exception — its attempt ships no telemetry, which
    is what makes retry accounting safe.
    """
    ctx: SpanContext = task.span_context
    state = _worker_state()
    profiler = state.ensure_profiler(ctx.profile_hz)
    spans_before = len(state.tracer)
    metrics_before = state.metrics.snapshot()
    prev_tracer = set_tracer(state.tracer)
    prev_metrics = set_ambient_metrics(state.metrics)
    started = time.perf_counter()
    try:
        with state.tracer.span(
            "engine.task",
            stage_id=task.stage_id,
            partition=task.split,
            worker=os.getpid(),
        ):
            result = task.run()
    finally:
        set_tracer(prev_tracer)
        set_ambient_metrics(prev_metrics)
    elapsed = time.perf_counter() - started
    state.metrics.observe(MetricsRegistry.TASK_SECONDS, elapsed)
    try:
        state.metrics.observe(TASK_RECORDS, float(len(task.base)))
    except (TypeError, AttributeError):
        pass
    state.tasks_completed += 1
    delta = state.metrics.snapshot().diff(metrics_before)
    spans = [s.to_dict() for s in state.tracer.spans()[spans_before:]]
    stacks: Dict[Tuple[str, ...], int] = {}
    if profiler is not None:
        stacks = profiler.stacks()
        profiler.reset()
    telemetry = WorkerTelemetry(
        pid=os.getpid(),
        parent_span_id=ctx.parent_span_id,
        wall_epoch=state.tracer.wall_epoch,
        spans=spans,
        counters={k: v for k, v in delta.counters.items() if v},
        histograms={k: v for k, v in delta.histograms.items() if v},
        rss_kb=float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        uptime_seconds=time.time() - state.started,
        tasks_completed=state.tasks_completed,
        profile_stacks=stacks,
    )
    return elapsed, result, telemetry


def merge_telemetry(
    telemetry: Optional[WorkerTelemetry],
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[SamplingProfiler] = None,
) -> None:
    """Fold one worker delta into the driver-side collectors.

    Every operation here is additive and per-series commutative, so
    merging deltas in completion order (which is not partition order)
    is order-independent.  ``None`` telemetry (untraced task) is a
    no-op.
    """
    if telemetry is None:
        return
    worker = str(telemetry.pid)
    if tracer is not None:
        tracer.merge_foreign_spans(
            telemetry.spans,
            parent_id=telemetry.parent_span_id,
            wall_epoch=telemetry.wall_epoch,
        )
    if metrics is not None:
        for name, value in sorted(telemetry.counters.items()):
            metrics.incr(labeled_name(name, worker=worker), value)
        for name, values in sorted(telemetry.histograms.items()):
            series = labeled_name(name, worker=worker)
            for value in values:
                metrics.observe(series, value)
        metrics.set_gauge(
            labeled_name(WORKER_RSS_KB, worker=worker), telemetry.rss_kb
        )
        metrics.set_gauge(
            labeled_name(WORKER_UPTIME_SECONDS, worker=worker),
            telemetry.uptime_seconds,
        )
        metrics.set_gauge(
            labeled_name(WORKER_TASKS_COMPLETED, worker=worker),
            float(telemetry.tasks_completed),
        )
    if profiler is not None and telemetry.profile_stacks:
        profiler.merge_stacks(telemetry.profile_stacks)


def worker_table(snapshot) -> List[Dict[str, Any]]:
    """Per-worker health rows derived from one metrics snapshot.

    Scans every ``worker``-labelled series the telemetry merge records
    and folds them into one row per pid: rss/uptime/tasks-completed
    gauges plus a summary of the worker's ``task_seconds`` histogram.
    The primitive behind the ``/workers`` endpoint and the ``repro
    report`` per-worker table; an empty list simply means no process
    worker has reported (thread/inline run, or nothing shipped yet).
    """
    from repro.engine.metrics import HistogramSummary
    from repro.obs.exporters import split_labeled_name

    workers: Dict[str, Dict[str, Any]] = {}

    def row(pid: str) -> Dict[str, Any]:
        return workers.setdefault(pid, {"worker": pid})

    gauge_fields = {
        WORKER_RSS_KB: "rss_kb",
        WORKER_UPTIME_SECONDS: "uptime_seconds",
        WORKER_TASKS_COMPLETED: "tasks_completed",
    }
    for raw, value in snapshot.gauges.items():
        base, labels = split_labeled_name(raw)
        if not labels or "worker" not in labels:
            continue
        field_name = gauge_fields.get(base)
        if field_name is not None:
            row(labels["worker"])[field_name] = value
    for raw, values in snapshot.histograms.items():
        base, labels = split_labeled_name(raw)
        if not labels or "worker" not in labels:
            continue
        if base == MetricsRegistry.TASK_SECONDS:
            row(labels["worker"])["task_seconds"] = (
                HistogramSummary.from_values(values).to_dict()
            )
    # Numeric pid order where pids are numeric, lexicographic otherwise.
    return [
        workers[pid]
        for pid in sorted(workers, key=lambda p: (len(p), p))
    ]
