"""ObservedRun: one report object tying trace + metrics + ledger together.

Consumed two ways:

* **live** — the CLI (or a test) builds it from the session's
  :class:`~repro.obs.tracing.Tracer`, the engine's
  :class:`~repro.engine.metrics.MetricsSnapshot` and the
  :class:`~repro.obs.ledger.PrivacyLedger` right after a run;
* **from artifacts** — ``repro report --trace t.json --ledger l.jsonl``
  reloads the Chrome-trace JSON and the ledger JSONL written by an
  earlier ``repro run`` and renders the same breakdown.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.engine.metrics import HistogramSummary, MetricsSnapshot, percentile
from repro.obs.ledger import LedgerEntry, PrivacyLedger
from repro.obs.tracing import Tracer

#: canonical pipeline-phase order (paper Figure 1) — the phases every
#: cold run emits exactly once.
PHASE_ORDER = (
    "phase:partition_sample",
    "phase:map",
    "phase:reduce",
    "phase:inference",
    "phase:noise",
)

#: PHASE_ORDER plus optional phases that only some runs emit
#: (``phase:incremental_delta`` appears on append/retire releases);
#: used to sort phase tables without changing the cold-run contract.
FULL_PHASE_ORDER = (
    "phase:partition_sample",
    "phase:incremental_delta",
    "phase:map",
    "phase:reduce",
    "phase:inference",
    "phase:noise",
)


def run_header(**extra: Any) -> Dict[str, Any]:
    """Self-describing header for traces and ledgers.

    Always embeds the package version and python version; callers add
    the run configuration (epsilon, sample size n, seed, workload) so
    an artifact can be interpreted without the command line that
    produced it.
    """
    header: Dict[str, Any] = {
        "repro_version": __version__,
        "python_version": platform.python_version(),
    }
    header.update(extra)
    return header


def _workers_from_trace_events(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-worker rows recovered from archived Chrome-trace events.

    ``engine.task`` spans merged from process workers carry the worker
    pid in their ``worker`` attribute (landing in the event's ``args``).
    A trace has no rss/uptime gauges, so artifact-derived rows hold
    what the spans preserve: task count and task-seconds summary.
    """
    per_worker: Dict[str, List[float]] = {}
    for event in events:
        if event.get("name") != "engine.task":
            continue
        args = event.get("args") or {}
        worker = args.get("worker")
        if worker is None:
            continue
        per_worker.setdefault(str(worker), []).append(
            float(event.get("dur", 0.0)) / 1e6
        )
    return [
        {
            "worker": pid,
            "tasks_completed": float(len(durations)),
            "task_seconds": HistogramSummary.from_values(
                durations
            ).to_dict(),
        }
        for pid, durations in sorted(
            per_worker.items(), key=lambda kv: (len(kv[0]), kv[0])
        )
    ]


@dataclass(frozen=True)
class SpanStat:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    max_seconds: float

    @classmethod
    def from_durations(cls, name: str,
                       durations: Sequence[float]) -> "SpanStat":
        data = [float(d) for d in durations]
        return cls(
            name=name,
            count=len(data),
            total_seconds=sum(data),
            mean_seconds=sum(data) / len(data) if data else 0.0,
            p50_seconds=percentile(data, 50.0) if data else 0.0,
            p95_seconds=percentile(data, 95.0) if data else 0.0,
            max_seconds=max(data) if data else 0.0,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "max_seconds": self.max_seconds,
        }


def _aggregate(named_durations: Sequence[Tuple[str, float]]) -> List[SpanStat]:
    groups: Dict[str, List[float]] = {}
    first_seen: Dict[str, int] = {}
    for index, (name, duration) in enumerate(named_durations):
        groups.setdefault(name, []).append(duration)
        first_seen.setdefault(name, index)
    return [
        SpanStat.from_durations(name, groups[name])
        for name in sorted(groups, key=first_seen.__getitem__)
    ]


@dataclass
class ObservedRun:
    """Everything one observed pipeline execution produced."""

    header: Dict[str, Any] = field(default_factory=dict)
    #: (span name, duration seconds) pairs in start order.
    span_durations: List[Tuple[str, float]] = field(default_factory=list)
    metrics: Optional[MetricsSnapshot] = None
    ledger_entries: List[LedgerEntry] = field(default_factory=list)
    ledger_totals: Dict[str, float] = field(default_factory=dict)
    #: alert firings (dicts shaped like ``Alert.to_dict``).
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: profiler (span, samples, estimated seconds) self-time rows.
    profile: List[Tuple[str, int, float]] = field(default_factory=list)
    #: per-worker health rows (processes backend; see
    #: :func:`repro.obs.crossproc.worker_table`). Empty for
    #: thread/inline runs.
    workers: List[Dict[str, Any]] = field(default_factory=list)
    #: sampled metric history (a
    #: :class:`~repro.obs.timeseries.TimeSeriesStore`), live or
    #: reloaded from a ``--timeseries`` JSONL artifact. None when the
    #: run was not sampled.
    timeseries: Optional[Any] = None

    # -- constructors -------------------------------------------------
    @classmethod
    def from_live(
        cls,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsSnapshot] = None,
        ledger: Optional[PrivacyLedger] = None,
        alert_engine: Optional[Any] = None,
        profiler: Optional[Any] = None,
        timeseries: Optional[Any] = None,
    ) -> "ObservedRun":
        header: Dict[str, Any] = {}
        durations: List[Tuple[str, float]] = []
        if tracer is not None:
            header.update(tracer.header)
            spans = sorted(tracer.spans(), key=lambda s: s.start)
            durations = [(s.name, s.duration) for s in spans]
        entries: List[LedgerEntry] = []
        totals: Dict[str, float] = {}
        if ledger is not None:
            header.update(ledger.header)
            entries = ledger.entries()
            totals = ledger.totals()
        alerts: List[Dict[str, Any]] = []
        if alert_engine is not None:
            alerts = alert_engine.to_dicts()
        profile: List[Tuple[str, int, float]] = []
        if profiler is not None:
            profile = profiler.span_table()
        workers: List[Dict[str, Any]] = []
        if metrics is not None:
            from repro.obs.crossproc import worker_table

            workers = worker_table(metrics)
        return cls(header, durations, metrics, entries, totals,
                   alerts, profile, workers, timeseries)

    @classmethod
    def from_artifacts(
        cls,
        trace_path: Optional[str] = None,
        ledger_path: Optional[str] = None,
        profile_path: Optional[str] = None,
        timeseries_path: Optional[str] = None,
    ) -> "ObservedRun":
        header: Dict[str, Any] = {}
        durations: List[Tuple[str, float]] = []
        workers: List[Dict[str, Any]] = []
        if trace_path is not None:
            with open(trace_path, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
            header.update(trace.get("metadata") or {})
            events = sorted(
                (e for e in trace.get("traceEvents", ())
                 if e.get("ph") == "X"),
                key=lambda e: e.get("ts", 0.0),
            )
            durations = [
                (e["name"], float(e.get("dur", 0.0)) / 1e6) for e in events
            ]
            workers = _workers_from_trace_events(events)
        entries: List[LedgerEntry] = []
        totals: Dict[str, float] = {}
        alerts: List[Dict[str, Any]] = []
        if ledger_path is not None:
            ledger = PrivacyLedger.read_jsonl(ledger_path)
            header.update(ledger.header)
            entries = ledger.entries()
            totals = ledger.totals()
            # alert firings travel in the ledger header (AlertEngine
            # pushes them there on every firing); don't render them as
            # a header blob too.
            raw = header.pop("alerts", None)
            if isinstance(raw, list):
                alerts = [a for a in raw if isinstance(a, dict)]
        profile: List[Tuple[str, int, float]] = []
        if profile_path is not None:
            from repro.obs.profiler import span_table_from_collapsed
            with open(profile_path, "r", encoding="utf-8") as handle:
                profile = span_table_from_collapsed(handle.read())
        timeseries = None
        if timeseries_path is not None:
            from repro.obs.timeseries import TimeSeriesStore

            timeseries = TimeSeriesStore.read_jsonl(timeseries_path)
            for key, value in timeseries.header.items():
                header.setdefault(key, value)
        return cls(header, durations, None, entries, totals,
                   alerts, profile, workers, timeseries)

    # -- breakdowns ---------------------------------------------------
    def phase_stats(self) -> List[SpanStat]:
        """Per-phase aggregates in canonical pipeline order."""
        phases = [
            (name, d) for name, d in self.span_durations
            if name.startswith("phase:")
        ]
        stats = _aggregate(phases)
        order = {name: i for i, name in enumerate(FULL_PHASE_ORDER)}
        return sorted(stats, key=lambda s: order.get(s.name, len(order)))

    def span_stats(self) -> List[SpanStat]:
        return _aggregate(self.span_durations)

    def histogram_summaries(self) -> Dict[str, HistogramSummary]:
        if self.metrics is None:
            return {}
        return {
            name: self.metrics.summary(name)
            for name in sorted(self.metrics.histograms)
        }

    def counter_values(self) -> Dict[str, float]:
        """Non-zero engine/SQL counters (plan cache, join strategy, …)."""
        if self.metrics is None:
            return {}
        return {
            name: value
            for name, value in sorted(self.metrics.counters.items())
            if value
        }

    def timeseries_trends(self) -> List[Dict[str, Any]]:
        """Per-series trend rows from the sampled metric history.

        One row per series, key series first: point count, first/last
        values, the trailing per-second change (rate for counters,
        least-squares slope for gauges) and a unicode sparkline of the
        whole retained window.  Empty when the run was not sampled.
        """
        if self.timeseries is None:
            return []
        from repro.obs.timeseries import COUNTER, order_series
        from repro.obs.watch import spark

        store = self.timeseries
        rows: List[Dict[str, Any]] = []
        for name in order_series(store.names()):
            points = store.points(name)
            if not points:
                continue
            kind = store.kind(name)
            if kind == COUNTER:
                change = store.rate(name)
            else:
                change = store.slope(name)
            rows.append({
                "series": name,
                "kind": kind,
                "points": len(points),
                "first": points[0][1],
                "last": points[-1][1],
                "per_second": change,
                "spark": spark([p[1] for p in points], width=16),
            })
        return rows

    # -- rendering ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "header": dict(self.header),
            "phases": [s.to_dict() for s in self.phase_stats()],
            "spans": [s.to_dict() for s in self.span_stats()],
            "metrics": self.metrics.to_dict() if self.metrics else None,
            "ledger": {
                "totals": dict(self.ledger_totals),
                "entries": [e.to_dict() for e in self.ledger_entries],
            },
            "alerts": [dict(a) for a in self.alerts],
            "profile": [
                {"span": span, "samples": samples, "seconds": seconds}
                for span, samples, seconds in self.profile
            ],
            "workers": [dict(w) for w in self.workers],
            "timeseries": {
                "ticks": len(self.timeseries.tick_times()),
                "trends": [dict(r) for r in self.timeseries_trends()],
            } if self.timeseries is not None else None,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str)

    def render_text(self) -> str:
        from repro.analysis import format_table

        sections: List[str] = []
        if self.header:
            sections.append("header: " + json.dumps(
                self.header, sort_keys=True, default=str))

        def _stat_rows(stats: Sequence[SpanStat]) -> List[list]:
            return [
                [s.name, s.count, f"{s.total_seconds * 1000:.2f}",
                 f"{s.mean_seconds * 1000:.2f}",
                 f"{s.p50_seconds * 1000:.2f}",
                 f"{s.p95_seconds * 1000:.2f}",
                 f"{s.max_seconds * 1000:.2f}"]
                for s in stats
            ]

        headers = ["span", "count", "total ms", "mean ms", "p50 ms",
                   "p95 ms", "max ms"]
        phases = self.phase_stats()
        if phases:
            sections.append(
                "pipeline phases:\n" + format_table(headers,
                                                    _stat_rows(phases))
            )
        other = [s for s in self.span_stats()
                 if not s.name.startswith("phase:")]
        if other:
            sections.append(
                "other spans:\n" + format_table(headers, _stat_rows(other))
            )
        counters = self.counter_values()
        if counters:
            rows = [[name, f"{value:g}"] for name, value in counters.items()]
            sections.append(
                "engine counters:\n" + format_table(["counter", "value"],
                                                    rows)
            )
        histograms = self.histogram_summaries()
        if histograms:
            rows = [
                [name, s.count, f"{s.minimum:g}", f"{s.mean:g}",
                 f"{s.p50:g}", f"{s.p90:g}", f"{s.p99:g}", f"{s.maximum:g}"]
                for name, s in histograms.items()
            ]
            sections.append(
                "metric histograms:\n" + format_table(
                    ["histogram", "count", "min", "mean", "p50", "p90",
                     "p99", "max"], rows)
            )
        if self.workers:
            rows = []
            for w in self.workers:
                tasks = w.get("task_seconds") or {}
                rows.append([
                    w.get("worker", "?"),
                    f"{w.get('tasks_completed', 0):g}",
                    f"{tasks.get('count', 0):g}",
                    f"{tasks.get('mean', 0.0) * 1000:.2f}",
                    f"{tasks.get('p90', 0.0) * 1000:.2f}",
                    f"{w['rss_kb']:g}" if "rss_kb" in w else "-",
                    f"{w['uptime_seconds']:.1f}"
                    if "uptime_seconds" in w else "-",
                ])
            sections.append(
                "worker processes:\n" + format_table(
                    ["worker", "tasks", "task obs", "mean ms", "p90 ms",
                     "rss kB", "uptime s"], rows)
            )
        if self.profile:
            rows = [
                [span, samples,
                 f"{seconds * 1000:.1f}" if seconds else "-"]
                for span, samples, seconds in self.profile
            ]
            sections.append(
                "profiler span self-time:\n" + format_table(
                    ["span", "samples", "est ms"], rows)
            )
        trends = self.timeseries_trends()
        if trends:
            rows = [
                [r["series"], r["kind"], r["points"],
                 f"{r['first']:g}", f"{r['last']:g}",
                 f"{r['per_second']:.4g}"
                 if r["per_second"] is not None else "-",
                 r["spark"]]
                for r in trends
            ]
            sections.append(
                "time-series trends:\n" + format_table(
                    ["series", "kind", "points", "first", "last",
                     "per second", "trend"], rows)
            )
        if self.alerts:
            rows = [
                [a.get("severity", "?"), a.get("rule", "?"),
                 a.get("message", "")]
                for a in self.alerts
            ]
            sections.append(
                "alerts fired:\n" + format_table(
                    ["severity", "rule", "message"], rows)
            )
        if self.ledger_totals:
            rows = [[k, f"{v:g}"] for k, v in
                    sorted(self.ledger_totals.items())]
            sections.append(
                "privacy ledger totals:\n"
                + format_table(["field", "value"], rows)
            )
        if self.ledger_entries:
            rows = [
                [e.sequence, e.query, f"{e.epsilon_charged:g}",
                 f"{e.local_sensitivity:g}",
                 "cache" if e.cache_hit else
                 ("clamped" if e.clamped else "ok"),
                 e.records_removed]
                for e in self.ledger_entries
            ]
            sections.append(
                "privacy ledger entries:\n" + format_table(
                    ["#", "query", "epsilon", "sensitivity", "outcome",
                     "removed"], rows)
            )
        if not sections:
            return "(no observability artifacts: nothing to report)"
        return "\n\n".join(sections)
