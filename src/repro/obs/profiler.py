"""Sampling profiler: where CPU time goes, attributed to live spans.

The span tracer answers "how long did phase:reduce take"; the profiler
answers "what was the interpreter *doing* inside it".  A background
daemon thread samples ``sys._current_frames()`` at a configurable rate
and, for every observed thread, prepends the chain of live spans that
thread is inside (via the tracer's per-thread registry,
:func:`repro.obs.tracing.active_span_chain`) — so a stack reads
``upa.run;phase:reduce;fold_batch …`` and a flamegraph groups by
pipeline phase with zero changes to the instrumented code.

Exports:

* :meth:`SamplingProfiler.collapsed_stacks` — the collapsed-stack
  format ``frame;frame;frame count`` consumed by ``flamegraph.pl`` and
  https://www.speedscope.app (File → Import, or paste).
* :meth:`SamplingProfiler.span_table` — per-span self-sample counts
  with estimated seconds, rendered by ``repro report`` as the span
  self-time table.

The profiler is an *observer*: it never touches pipeline state, and
sampling cost is bounded by ``hz`` times the number of live threads.
Starting one inside a mapper/reducer is flagged by upalint (UPA013).
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tracing import active_span_chain

#: frames deeper than this are truncated (pathological recursion guard).
MAX_STACK_DEPTH = 128

#: collapsed-format separator; frames containing it are rewritten.
_SEP = ";"


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    label = f"{code.co_name} ({filename}:{frame.f_lineno})"
    return label.replace(_SEP, ",")


class SamplingProfiler:
    """Background statistical profiler with span attribution.

    Example:
        >>> profiler = SamplingProfiler(hz=200)
        >>> profiler.start()
        >>> sum(i * i for i in range(100_000))  # doctest: +SKIP
        >>> profiler.stop()
        >>> profiler.write_collapsed("profile.txt")  # doctest: +SKIP

    Use as a context manager to scope it over one run.  ``hz`` is the
    target sampling rate; actual attribution error is the usual
    statistical-profiler one sample, so seconds in :meth:`span_table`
    are estimates (``samples / hz``), not measurements.
    """

    def __init__(self, hz: float = 100.0,
                 include_idle: bool = False):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.interval = 1.0 / float(hz)
        #: sample threads with no live span (servers, pool idlers)?
        #: Default False: span-less stacks are mostly executor
        #: wait-loops and swamp the signal.
        self.include_idle = include_idle
        self._stacks: Counter = Counter()
        self._span_samples: Counter = Counter()
        self._samples_total = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent while running)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread (idempotent)."""
        self._stop_event.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------
    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            self._sample_once(own)

    def _sample_once(self, own: int) -> None:
        # One pass over every live frame; the frames dict is a snapshot,
        # but frames themselves keep executing — sampling noise inherent
        # to statistical profilers, bounded by one frame per sample.
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter teardown
            return
        names = {t.ident: t.name for t in threading.enumerate()}
        batch: List[Tuple[Tuple[str, ...], str]] = []
        for ident, frame in frames.items():
            if ident == own:
                continue
            spans = active_span_chain(ident)
            if not spans and not self.include_idle:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            root = spans if spans else [
                f"thread:{names.get(ident, ident)}".replace(_SEP, ",")
            ]
            batch.append((tuple(root + stack), root[-1]))
        if not batch:
            return
        with self._lock:
            for stack_key, span in batch:
                self._stacks[stack_key] += 1
                self._span_samples[span] += 1
                self._samples_total += 1

    # -- queries / exports --------------------------------------------
    @property
    def sample_count(self) -> int:
        with self._lock:
            return self._samples_total

    def stacks(self) -> Dict[Tuple[str, ...], int]:
        with self._lock:
            return dict(self._stacks)

    def span_table(self) -> List[Tuple[str, int, float]]:
        """``(span, samples, estimated_seconds)`` rows, hottest first.

        A sample is attributed to the *innermost* live span of the
        sampled thread, so these are self-time style numbers at span
        granularity (code under ``phase:reduce`` but not inside a
        nested span counts toward ``phase:reduce``).
        """
        with self._lock:
            items = sorted(
                self._span_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return [
            (span, samples, samples * self.interval)
            for span, samples in items
        ]

    def collapsed_stacks(self) -> str:
        """flamegraph.pl / speedscope collapsed format, one stack per
        line: ``root;frame;...;leaf count``."""
        with self._lock:
            items = sorted(self._stacks.items())
        return "".join(
            _SEP.join(stack) + f" {count}\n" for stack, count in items
        )

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed_stacks())

    def merge_stacks(
        self, stacks: Mapping[Sequence[str], int]
    ) -> int:
        """Merge collapsed stacks sampled elsewhere (a process worker).

        ``stacks`` maps frame tuples — the same shape :meth:`stacks`
        returns — to sample counts.  Counts add into this profiler's
        aggregate, and span attribution is recomputed per stack the way
        :func:`span_table_from_collapsed` does: the sample goes to the
        innermost frame of the leading span chain (frames without a
        ``name (file:line)`` suffix).  Merging is commutative, so the
        order worker deltas arrive in does not matter.  Returns the
        number of samples merged.
        """
        merged = 0
        with self._lock:
            for frames, count in stacks.items():
                if not frames or count <= 0:
                    continue
                key = tuple(frames)
                span = None
                for frame in key:
                    if frame.endswith(")") and " (" in frame:
                        break
                    span = frame
                self._stacks[key] += count
                self._samples_total += count
                if span is not None:
                    self._span_samples[span] += count
                merged += count
        return merged

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._span_samples.clear()
            self._samples_total = 0


def parse_collapsed(text: str) -> List[Tuple[Tuple[str, ...], int]]:
    """Parse collapsed-stack text back into ``(frames, count)`` pairs.

    Tolerant the way :meth:`PrivacyLedger.read_jsonl` is: blank and
    malformed lines are skipped, so a file truncated mid-write still
    parses to its valid prefix.
    """
    out: List[Tuple[Tuple[str, ...], int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            continue
        try:
            count = int(count_text)
        except ValueError:
            continue
        out.append((tuple(stack_text.split(_SEP)), count))
    return out


def span_table_from_collapsed(
    text: str, interval: float = 0.0
) -> List[Tuple[str, int, float]]:
    """Rebuild the per-span table from a collapsed file.

    Span frames are distinguishable from code frames because code
    frames carry a ``name (file:line)`` suffix — the leading run of
    suffix-less frames is the span chain, and the sample is attributed
    to its innermost element (mirroring :meth:`SamplingProfiler
    .span_table`).  ``interval`` (seconds per sample) scales counts to
    estimated seconds; 0 leaves seconds at 0 when the rate is unknown.
    """
    samples: Counter = Counter()
    for frames, count in parse_collapsed(text):
        span = None
        for frame in frames:
            if frame.endswith(")") and " (" in frame:
                break
            span = frame
        if span is not None:
            samples[span] += count
    return [
        (span, count, count * interval)
        for span, count in sorted(
            samples.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
