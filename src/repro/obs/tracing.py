"""Span tracer: where the time goes, end to end.

The paper's efficiency claims are about *phases* — partition & sample,
parallel map, union-preserving reduce, sensitivity inference, noise —
so the tracer's unit is a :class:`Span`: a named interval with a parent
link, wall time, and typed attributes.  Spans nest through a
``contextvars.ContextVar``, so code deep inside the engine (a shuffle
running on a pool thread) parents correctly under the session phase
that triggered it, provided the scheduler propagates the context (see
``TaskScheduler.run_job``).

Two export formats:

* **span-tree JSON** (:meth:`Tracer.to_dict`) — every span with parent
  ids, for programmatic consumers (``repro report``, tests);
* **Chrome trace-event JSON** (:meth:`Tracer.to_chrome_trace`) — load
  it in ``chrome://tracing`` or https://ui.perfetto.dev to see the
  pipeline phases on a timeline.

Tracing is **zero-cost when disabled**: the module-level default is
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager — no allocation, no clock reads, no locking.  Hot paths gate
attribute construction on ``tracer.enabled``; the bench-smoke job
asserts the residual overhead stays below 5 %.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

#: innermost live span of the *current* logical context (task, thread).
_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: innermost live span per OS thread (thread ident -> Span).  The
#: contextvar above answers "what span am *I* inside"; this registry
#: answers the sampling profiler's cross-thread question "what span is
#: thread T inside right now".  Maintained by Span.__enter__/__exit__,
#: so the disabled path (NULL_SPAN) never touches it.  Plain dict ops
#: on int keys are atomic under the GIL.
_active_by_thread: Dict[int, "Span"] = {}


class Span:
    """One named, timed interval in the span tree.

    Use as a context manager (normally via :meth:`Tracer.span` or
    :func:`trace`); attributes can be attached at creation or with
    :meth:`set_attribute` while the span is live.  Times are seconds
    relative to the owning tracer's epoch (monotonic clock).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "attributes",
        "thread", "_tracer", "_token", "_prev_active",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int],
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.thread = threading.current_thread().name
        self.start = 0.0
        self.end: Optional[float] = None
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None
        #: the span this one displaced in the per-thread registry; for
        #: spans entered and exited on one thread this is the enclosing
        #: span on that thread, so walking it yields the span chain.
        self._prev_active: Optional["Span"] = None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still live)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        ident = threading.get_ident()
        self._prev_active = _active_by_thread.get(ident)
        _active_by_thread[ident] = self
        self.start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._now()
        ident = threading.get_ident()
        if self._prev_active is not None:
            _active_by_thread[ident] = self._prev_active
        else:
            _active_by_thread.pop(ident, None)
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._record(self)
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self.start,
            "duration_seconds": self.duration,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} id={self.span_id} "
            f"parent={self.parent_id} {self.duration * 1000:.2f}ms>"
        )


class _NullSpan:
    """Shared no-op span: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe collector of finished spans.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("outer"):
        ...     with tracer.span("inner", detail=1):
        ...         pass
        >>> [s.name for s in tracer.spans()]
        ['inner', 'outer']
        >>> tracer.spans()[0].parent_id == tracer.spans()[1].span_id
        True
    """

    enabled = True

    def __init__(self, header: Optional[Dict[str, Any]] = None):
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        #: wall-clock time of the epoch, so spans recorded against a
        #: *different* tracer (a process worker's) can be rebased onto
        #: this tracer's timeline (see :meth:`merge_foreign_spans`).
        self.wall_epoch = time.time()
        #: self-describing metadata embedded in every export.
        self.header: Dict[str, Any] = dict(header or {})

    # -- internals used by Span -------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- public API --------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Create a child span of the current context's span."""
        parent = _current_span.get()
        return Span(
            self, name, next(self._ids),
            parent.span_id if parent is not None else None,
            attributes,
        )

    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans() if s.name == name]

    def phase_spans(self) -> List[Span]:
        """The pipeline-phase spans, in start order."""
        phases = [s for s in self.spans() if s.name.startswith("phase:")]
        return sorted(phases, key=lambda s: s.start)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def merge_foreign_spans(
        self,
        spans: Sequence[Dict[str, Any]],
        parent_id: Optional[int] = None,
        wall_epoch: Optional[float] = None,
    ) -> List[Span]:
        """Adopt spans recorded by another tracer (a process worker's).

        ``spans`` are :meth:`Span.to_dict` dicts — the cross-process
        wire format.  Foreign span ids come from the *worker's* id
        counter and would collide with this tracer's, so every id is
        remapped through a fresh allocation here; parent links between
        the foreign spans are preserved through the same map, and
        foreign roots are re-parented under ``parent_id`` (typically
        the coordinator's ``engine.job`` span).  ``wall_epoch`` is the
        worker tracer's wall-clock epoch: start times are rebased by
        the epoch difference so merged spans sit correctly on this
        tracer's timeline.  Returns the adopted spans.
        """
        if not spans:
            return []
        offset = 0.0
        if wall_epoch is not None:
            offset = wall_epoch - self.wall_epoch
        # Pass 1: allocate local ids for every foreign id, so forward
        # parent references (child recorded before parent) resolve.
        id_map = {s["span_id"]: next(self._ids) for s in spans}
        adopted: List[Span] = []
        for raw in spans:
            foreign_parent = raw.get("parent_id")
            span = Span(
                self, raw["name"], id_map[raw["span_id"]],
                id_map.get(foreign_parent, parent_id)
                if foreign_parent is not None else parent_id,
                raw.get("attributes"),
            )
            span.thread = raw.get("thread", "worker")
            span.start = raw["start_seconds"] + offset
            span.end = span.start + raw["duration_seconds"]
            adopted.append(span)
        with self._lock:
            self._spans.extend(adopted)
        return adopted

    # -- exports -----------------------------------------------------
    def to_dict(self) -> dict:
        """Span-tree JSON: ``{"header": ..., "spans": [...]}``."""
        return {
            "header": dict(self.header),
            "spans": [s.to_dict() for s in self.spans()],
        }

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event format (the ``chrome://tracing`` JSON).

        Complete ("ph": "X") events with microsecond timestamps; span
        attributes land in ``args`` so they show in the inspector pane.
        The tracer header travels in ``metadata`` (ignored by the
        viewer, kept for self-description).
        """
        pid = os.getpid()
        events = []
        for span in self.spans():
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": span.thread,
                "cat": "repro",
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": dict(self.header),
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2,
                      sort_keys=True, default=str)
            handle.write("\n")

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")


class NullTracer(Tracer):
    """Disabled tracer: every span is the shared no-op.

    ``isinstance(t, Tracer)`` still holds, so call sites never branch
    on type — only (optionally) on :attr:`enabled` to skip building
    attribute dicts.
    """

    enabled = False

    def span(self, name: str, **attributes: Any):  # type: ignore[override]
        return NULL_SPAN

    def merge_foreign_spans(self, spans, parent_id=None, wall_epoch=None):
        return []

    def _record(self, span: Span) -> None:  # pragma: no cover - unused
        pass


#: the module-wide ambient default (see :func:`get_tracer`).
NULL_TRACER = NullTracer()
_ambient: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The ambient tracer (NULL_TRACER unless :func:`set_tracer` ran)."""
    return _ambient


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install the ambient tracer (None resets to disabled); returns
    the previous one so callers can restore it."""
    global _ambient
    previous = _ambient
    _ambient = tracer if tracer is not None else NULL_TRACER
    return previous


class use_tracer:
    """Scoped ambient-tracer installation (tests, CLI commands).

    Example:
        >>> t = Tracer()
        >>> with use_tracer(t):
        ...     with trace("scoped"):
        ...         pass
        >>> len(t.find("scoped"))
        1
    """

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return get_tracer()

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)


def current_span() -> Optional[Span]:
    """The innermost live span of this context (None outside spans)."""
    return _current_span.get()


def active_span_chain(ident: Optional[int] = None) -> List[str]:
    """Live span names enclosing thread ``ident``, outermost first.

    ``ident`` defaults to the calling thread.  This is the sampling
    profiler's attribution primitive: it reads the per-thread registry,
    so it works *across* threads (``sys._current_frames`` style),
    unlike :func:`current_span` which is context-local.  Best-effort by
    design — the observed thread may exit spans concurrently, so the
    walk tolerates a chain mutating underfoot and simply returns what
    it saw.
    """
    if ident is None:
        ident = threading.get_ident()
    names: List[str] = []
    span = _active_by_thread.get(ident)
    depth = 0
    while span is not None and depth < 64:
        names.append(span.name)
        span = span._prev_active
        depth += 1
    names.reverse()
    return names


class _TraceHelper:
    """``trace("x")``: context manager *and* decorator on the ambient
    tracer, resolved at enter/call time so late ``set_tracer`` works."""

    __slots__ = ("_name", "_attributes", "_span")

    def __init__(self, name: str, attributes: Dict[str, Any]):
        self._name = name
        self._attributes = attributes
        self._span: Any = None

    def __enter__(self):
        tracer = _ambient
        if not tracer.enabled:
            self._span = NULL_SPAN
            return NULL_SPAN
        self._span = tracer.span(self._name, **self._attributes)
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        return self._span.__exit__(exc_type, exc, tb)

    def __call__(self, func: Callable) -> Callable:
        name = self._name or func.__qualname__
        attributes = self._attributes

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = _ambient
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(name, **attributes):
                return func(*args, **kwargs)

        return wrapper


def trace(name: str = "", **attributes: Any) -> _TraceHelper:
    """Trace a block (``with trace("x"):``) or a function (``@trace()``)
    against the ambient tracer; free when tracing is disabled."""
    return _TraceHelper(name, attributes)


def task_contexts(n: int) -> List[contextvars.Context]:
    """``n`` copies of the caller's context, one per pool task.

    ``ThreadPoolExecutor`` workers do not inherit the submitter's
    contextvars, so spans created inside tasks would lose their parent
    link.  A :class:`contextvars.Context` cannot be entered twice
    concurrently, hence one copy per task rather than one shared copy.
    """
    return [contextvars.copy_context() for _ in range(n)]
