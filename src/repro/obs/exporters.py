"""Metric and span exporters: Prometheus text exposition + OTLP-style JSON.

The post-hoc observability layer (traces, ledger, ``repro report``)
answers "what did that run do"; a production DP service also needs
"what is this session doing *right now*" — which means speaking the
formats monitoring stacks already scrape:

* :func:`render_prometheus` — Prometheus text exposition format
  v0.0.4 over a :class:`~repro.engine.metrics.MetricsSnapshot`:
  counters (``_total`` suffix), gauges, and histogram summaries as
  ``summary`` metrics (quantile gauges plus ``_count``/``_sum``), each
  with ``# HELP``/``# TYPE`` annotations and sanitized names.
* :func:`render_otlp_metrics` / :func:`render_otlp_spans` — OTLP-style
  JSON renderings of the same snapshot and of a tracer's span tree
  (the shape of ``ExportMetricsServiceRequest`` /
  ``ExportTraceServiceRequest``; "style" because timestamps are
  tracer-epoch-relative, not unix nanos, and only string/number
  attribute values are emitted).

Everything here is stdlib-only and read-only over thread-safe
snapshots, so an exporter can run concurrently with the pipeline.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.engine.metrics import HistogramSummary, MetricsSnapshot
from repro.obs.tracing import Tracer

#: quantiles exported for every histogram (label value, summary attr).
SUMMARY_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.9", "p90"),
    ("0.95", "p95"),
    ("0.99", "p99"),
)

#: a fully valid Prometheus metric name.
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """Coerce ``name`` into the Prometheus metric-name grammar.

    Invalid characters (``.`` in ``sql.plan_cache.hits``, ``-``,
    spaces, unicode) become ``_``; runs collapse to one; a leading
    digit gets a ``_`` prefix; an optional ``namespace`` is prepended
    with an underscore.  An empty result degrades to ``_``.
    """
    cleaned = _INVALID_NAME_CHARS.sub("_", name)
    cleaned = re.sub(r"__+", "_", cleaned).strip("_") or "_"
    if namespace:
        cleaned = f"{namespace}_{cleaned}"
    if not _VALID_NAME.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def labeled_name(name: str, **labels: Any) -> str:
    """Encode labels into a registry metric name: ``base#k=v,k2=v2``.

    The :class:`~repro.engine.metrics.MetricsRegistry` keys series by a
    flat string, so labelled series (per-worker task histograms, rss
    gauges) are stored under a structured name the exporters decode
    with :func:`split_labeled_name`.  Label keys are sorted so the same
    label set always produces the same series.  Keys and values must
    not contain ``#``, ``,`` or ``=`` (PIDs and short identifiers, the
    intended values, never do).
    """
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}#{rendered}"


def split_labeled_name(raw: str) -> Tuple[str, Optional[Dict[str, str]]]:
    """Decode :func:`labeled_name`: ``(base, labels-or-None)``.

    Tolerant of malformed label text (pairs without ``=`` are
    dropped; no valid pair at all degrades to unlabelled).
    """
    base, sep, label_text = raw.partition("#")
    if not sep:
        return raw, None
    labels: Dict[str, str] = {}
    for pair in label_text.split(","):
        key, eq, value = pair.partition("=")
        if eq and key:
            labels[key] = value
    return base, (labels or None)


def _group_families(
    names: Iterable[str],
) -> List[Tuple[str, List[Tuple[Optional[Dict[str, str]], str]]]]:
    """Group raw registry names into metric families by base name.

    Returns ``(base, [(labels, raw_name), ...])`` sorted by base, with
    the unlabelled member (if any) first in each family — so a family
    renders under one ``# TYPE`` header regardless of how many worker
    labels it carries.
    """
    families: Dict[str, List[Tuple[Optional[Dict[str, str]], str]]] = {}
    for raw in names:
        base, labels = split_labeled_name(raw)
        families.setdefault(base, []).append((labels, raw))
    for members in families.values():
        members.sort(key=lambda member: (member[0] is not None, member[1]))
    return sorted(families.items())


def sanitize_label_name(name: str) -> str:
    """Label names are like metric names but without ``:``."""
    cleaned = _INVALID_LABEL_CHARS.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Shortest round-trippable rendering; Inf/NaN per the exposition
    grammar."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_block(
    name: str,
    mtype: str,
    help_text: str,
    samples: Iterable[Tuple[str, Optional[Mapping[str, str]], float]],
) -> List[str]:
    """One ``# HELP``/``# TYPE`` header plus its sample lines.

    ``samples`` yields ``(suffix, labels, value)`` — suffix is appended
    to the metric name (``_count``/``_sum`` for summaries, "" for plain
    samples).  ``name`` must already be sanitized.
    """
    lines = [
        f"# HELP {name} {_escape_help(help_text)}",
        f"# TYPE {name} {mtype}",
    ]
    for suffix, labels, value in samples:
        rendered = ""
        if labels:
            parts = ",".join(
                f'{sanitize_label_name(k)}="{_escape_label_value(str(v))}"'
                for k, v in labels.items()
            )
            rendered = "{" + parts + "}"
        lines.append(f"{name}{suffix}{rendered} {format_value(value)}")
    return lines


def render_prometheus(
    snapshot: MetricsSnapshot,
    namespace: str = "upa",
    extra_blocks: Optional[Iterable[List[str]]] = None,
) -> str:
    """Prometheus text exposition (v0.0.4) of one metrics snapshot.

    Counters get the conventional ``_total`` suffix; histograms export
    as ``summary`` metrics with the :data:`SUMMARY_QUANTILES` quantile
    gauges plus ``_count`` and ``_sum``; gauges export as-is.
    ``extra_blocks`` (pre-rendered via :func:`prometheus_block`) lets
    the server append budget/alert gauges without touching the engine
    registry.  Ends with the grammar's required trailing newline.
    """
    lines: List[str] = []
    for base, members in _group_families(snapshot.counters):
        name = sanitize_metric_name(base, namespace)
        if not name.endswith("_total"):
            name += "_total"
        lines.extend(prometheus_block(
            name, "counter", f"Engine counter {base}.",
            [
                ("", labels, snapshot.counters[raw])
                for labels, raw in members
            ],
        ))
    for base, members in _group_families(snapshot.gauges):
        lines.extend(prometheus_block(
            sanitize_metric_name(base, namespace), "gauge",
            f"Engine gauge {base}.",
            [
                ("", labels, snapshot.gauges[raw])
                for labels, raw in members
            ],
        ))
    for base, members in _group_families(snapshot.histograms):
        name = sanitize_metric_name(base, namespace)
        samples: List[Tuple[str, Optional[Mapping[str, str]], float]] = []
        stddev_samples: List[
            Tuple[str, Optional[Mapping[str, str]], float]
        ] = []
        for labels, raw in members:
            summary = snapshot.summary(raw)
            samples.extend(
                ("", {"quantile": q, **(labels or {})},
                 getattr(summary, attr))
                for q, attr in SUMMARY_QUANTILES
            )
            samples.append(("_sum", labels, summary.mean * summary.count))
            samples.append(("_count", labels, float(summary.count)))
            stddev_samples.append(("", labels, summary.stddev))
        lines.extend(prometheus_block(
            name, "summary", f"Engine histogram {base}.", samples
        ))
        lines.extend(prometheus_block(
            f"{name}_stddev", "gauge",
            f"Population standard deviation of histogram {base}.",
            stddev_samples,
        ))
    for block in extra_blocks or ():
        lines.extend(block)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# OTLP-style JSON
# ---------------------------------------------------------------------------


def _otlp_attributes(attributes: Mapping[str, Any]) -> List[dict]:
    out = []
    for key, value in attributes.items():
        if isinstance(value, bool):
            typed = {"boolValue": value}
        elif isinstance(value, int):
            typed = {"intValue": str(value)}
        elif isinstance(value, float):
            typed = {"doubleValue": value}
        else:
            typed = {"stringValue": str(value)}
        out.append({"key": str(key), "value": typed})
    return out


def _otlp_envelope(key: str, scope_key: str, payload_key: str,
                   payload: List[dict],
                   resource: Optional[Mapping[str, Any]] = None) -> dict:
    return {
        key: [{
            "resource": {
                "attributes": _otlp_attributes(
                    {"service.name": "repro.upa", **(resource or {})}
                ),
            },
            scope_key: [{
                "scope": {"name": "repro.obs", "version": "1"},
                payload_key: payload,
            }],
        }],
    }


def render_otlp_metrics(
    snapshot: MetricsSnapshot,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict:
    """OTLP-style JSON of one metrics snapshot.

    Counters become monotonic cumulative ``sum`` metrics, gauges become
    ``gauge`` metrics, histograms become ``summary`` metrics carrying
    the same quantiles the Prometheus exposition exports.
    """
    def _point(labels: Optional[Mapping[str, str]], body: dict) -> dict:
        if labels:
            return {"attributes": _otlp_attributes(labels), **body}
        return body

    metrics: List[dict] = []
    for base, members in _group_families(snapshot.counters):
        metrics.append({
            "name": base,
            "sum": {
                "isMonotonic": True,
                "aggregationTemporality":
                    "AGGREGATION_TEMPORALITY_CUMULATIVE",
                "dataPoints": [
                    _point(labels, {"asDouble": snapshot.counters[raw]})
                    for labels, raw in members
                ],
            },
        })
    for base, members in _group_families(snapshot.gauges):
        metrics.append({
            "name": base,
            "gauge": {
                "dataPoints": [
                    _point(labels, {"asDouble": snapshot.gauges[raw]})
                    for labels, raw in members
                ],
            },
        })
    for base, members in _group_families(snapshot.histograms):
        points = []
        for labels, raw in members:
            summary: HistogramSummary = snapshot.summary(raw)
            points.append(_point(labels, {
                "count": summary.count,
                "sum": summary.mean * summary.count,
                "quantileValues": [
                    {"quantile": float(q), "value": getattr(summary, a)}
                    for q, a in SUMMARY_QUANTILES
                ],
            }))
        metrics.append({"name": base, "summary": {"dataPoints": points}})
    return _otlp_envelope(
        "resourceMetrics", "scopeMetrics", "metrics", metrics, resource
    )


def render_otlp_spans(
    tracer: Tracer,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict:
    """OTLP-style JSON of a tracer's finished spans.

    Timestamps are seconds-since-tracer-epoch scaled to nanos (the
    tracer uses a monotonic clock, so they are *relative*, which is
    what makes this OTLP-*style*); ids are rendered as the fixed-width
    hex OTLP uses.
    """
    spans: List[dict] = []
    for span in tracer.spans():
        spans.append({
            "name": span.name,
            "spanId": f"{span.span_id:016x}",
            "parentSpanId":
                f"{span.parent_id:016x}" if span.parent_id else "",
            "startTimeUnixNano": str(int(span.start * 1e9)),
            "endTimeUnixNano": str(int((span.end or span.start) * 1e9)),
            "attributes": _otlp_attributes(
                {"thread.name": span.thread, **span.attributes}
            ),
        })
    return _otlp_envelope(
        "resourceSpans", "scopeSpans", "spans", spans,
        {**tracer.header, **(resource or {})},
    )
