"""Metric and span exporters: Prometheus text exposition + OTLP-style JSON.

The post-hoc observability layer (traces, ledger, ``repro report``)
answers "what did that run do"; a production DP service also needs
"what is this session doing *right now*" — which means speaking the
formats monitoring stacks already scrape:

* :func:`render_prometheus` — Prometheus text exposition format
  v0.0.4 over a :class:`~repro.engine.metrics.MetricsSnapshot`:
  counters (``_total`` suffix), gauges, and histogram summaries as
  ``summary`` metrics (quantile gauges plus ``_count``/``_sum``), each
  with ``# HELP``/``# TYPE`` annotations and sanitized names.
* :func:`render_otlp_metrics` / :func:`render_otlp_spans` — OTLP-style
  JSON renderings of the same snapshot and of a tracer's span tree
  (the shape of ``ExportMetricsServiceRequest`` /
  ``ExportTraceServiceRequest``; "style" because timestamps are
  tracer-epoch-relative, not unix nanos, and only string/number
  attribute values are emitted).

Everything here is stdlib-only and read-only over thread-safe
snapshots, so an exporter can run concurrently with the pipeline.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.engine.metrics import HistogramSummary, MetricsSnapshot
from repro.obs.tracing import Tracer

#: quantiles exported for every histogram (label value, summary attr).
SUMMARY_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.9", "p90"),
    ("0.95", "p95"),
    ("0.99", "p99"),
)

#: a fully valid Prometheus metric name.
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """Coerce ``name`` into the Prometheus metric-name grammar.

    Invalid characters (``.`` in ``sql.plan_cache.hits``, ``-``,
    spaces, unicode) become ``_``; runs collapse to one; a leading
    digit gets a ``_`` prefix; an optional ``namespace`` is prepended
    with an underscore.  An empty result degrades to ``_``.
    """
    cleaned = _INVALID_NAME_CHARS.sub("_", name)
    cleaned = re.sub(r"__+", "_", cleaned).strip("_") or "_"
    if namespace:
        cleaned = f"{namespace}_{cleaned}"
    if not _VALID_NAME.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def labeled_name(name: str, **labels: Any) -> str:
    """Encode labels into a registry metric name: ``base#k=v,k2=v2``.

    The :class:`~repro.engine.metrics.MetricsRegistry` keys series by a
    flat string, so labelled series (per-worker task histograms, rss
    gauges) are stored under a structured name the exporters decode
    with :func:`split_labeled_name`.  Label keys are sorted so the same
    label set always produces the same series.  Keys and values must
    not contain ``#``, ``,`` or ``=`` (PIDs and short identifiers, the
    intended values, never do).
    """
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}#{rendered}"


def split_labeled_name(raw: str) -> Tuple[str, Optional[Dict[str, str]]]:
    """Decode :func:`labeled_name`: ``(base, labels-or-None)``.

    Tolerant of malformed label text (pairs without ``=`` are
    dropped; no valid pair at all degrades to unlabelled).
    """
    base, sep, label_text = raw.partition("#")
    if not sep:
        return raw, None
    labels: Dict[str, str] = {}
    for pair in label_text.split(","):
        key, eq, value = pair.partition("=")
        if eq and key:
            labels[key] = value
    return base, (labels or None)


def _group_families(
    names: Iterable[str],
) -> List[Tuple[str, List[Tuple[Optional[Dict[str, str]], str]]]]:
    """Group raw registry names into metric families by base name.

    Returns ``(base, [(labels, raw_name), ...])`` sorted by base, with
    the unlabelled member (if any) first in each family — so a family
    renders under one ``# TYPE`` header regardless of how many worker
    labels it carries.
    """
    families: Dict[str, List[Tuple[Optional[Dict[str, str]], str]]] = {}
    for raw in names:
        base, labels = split_labeled_name(raw)
        families.setdefault(base, []).append((labels, raw))
    for members in families.values():
        members.sort(key=lambda member: (member[0] is not None, member[1]))
    return sorted(families.items())


def sanitize_label_name(name: str) -> str:
    """Label names are like metric names but without ``:``."""
    cleaned = _INVALID_LABEL_CHARS.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Shortest round-trippable rendering; Inf/NaN per the exposition
    grammar."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_block(
    name: str,
    mtype: str,
    help_text: str,
    samples: Iterable[Tuple[str, Optional[Mapping[str, str]], float]],
) -> List[str]:
    """One ``# HELP``/``# TYPE`` header plus its sample lines.

    ``samples`` yields ``(suffix, labels, value)`` — suffix is appended
    to the metric name (``_count``/``_sum`` for summaries, "" for plain
    samples).  ``name`` must already be sanitized.
    """
    lines = [
        f"# HELP {name} {_escape_help(help_text)}",
        f"# TYPE {name} {mtype}",
    ]
    for suffix, labels, value in samples:
        rendered = ""
        if labels:
            parts = ",".join(
                f'{sanitize_label_name(k)}="{_escape_label_value(str(v))}"'
                for k, v in labels.items()
            )
            rendered = "{" + parts + "}"
        lines.append(f"{name}{suffix}{rendered} {format_value(value)}")
    return lines


def render_prometheus(
    snapshot: MetricsSnapshot,
    namespace: str = "upa",
    extra_blocks: Optional[Iterable[List[str]]] = None,
) -> str:
    """Prometheus text exposition (v0.0.4) of one metrics snapshot.

    Counters get the conventional ``_total`` suffix; histograms export
    as ``summary`` metrics with the :data:`SUMMARY_QUANTILES` quantile
    gauges plus ``_count`` and ``_sum``; gauges export as-is.
    ``extra_blocks`` (pre-rendered via :func:`prometheus_block`) lets
    the server append budget/alert gauges without touching the engine
    registry.  Ends with the grammar's required trailing newline.
    """
    lines: List[str] = []
    for base, members in _group_families(snapshot.counters):
        name = sanitize_metric_name(base, namespace)
        if not name.endswith("_total"):
            name += "_total"
        lines.extend(prometheus_block(
            name, "counter", f"Engine counter {base}.",
            [
                ("", labels, snapshot.counters[raw])
                for labels, raw in members
            ],
        ))
    for base, members in _group_families(snapshot.gauges):
        lines.extend(prometheus_block(
            sanitize_metric_name(base, namespace), "gauge",
            f"Engine gauge {base}.",
            [
                ("", labels, snapshot.gauges[raw])
                for labels, raw in members
            ],
        ))
    for base, members in _group_families(snapshot.histograms):
        name = sanitize_metric_name(base, namespace)
        samples: List[Tuple[str, Optional[Mapping[str, str]], float]] = []
        stddev_samples: List[
            Tuple[str, Optional[Mapping[str, str]], float]
        ] = []
        for labels, raw in members:
            summary = snapshot.summary(raw)
            samples.extend(
                ("", {"quantile": q, **(labels or {})},
                 getattr(summary, attr))
                for q, attr in SUMMARY_QUANTILES
            )
            samples.append(("_sum", labels, summary.mean * summary.count))
            samples.append(("_count", labels, float(summary.count)))
            stddev_samples.append(("", labels, summary.stddev))
        lines.extend(prometheus_block(
            name, "summary", f"Engine histogram {base}.", samples
        ))
        lines.extend(prometheus_block(
            f"{name}_stddev", "gauge",
            f"Population standard deviation of histogram {base}.",
            stddev_samples,
        ))
    for block in extra_blocks or ():
        lines.extend(block)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# OTLP-style JSON
# ---------------------------------------------------------------------------


def _otlp_attributes(attributes: Mapping[str, Any]) -> List[dict]:
    out = []
    for key, value in attributes.items():
        if isinstance(value, bool):
            typed = {"boolValue": value}
        elif isinstance(value, int):
            typed = {"intValue": str(value)}
        elif isinstance(value, float):
            typed = {"doubleValue": value}
        else:
            typed = {"stringValue": str(value)}
        out.append({"key": str(key), "value": typed})
    return out


def _otlp_envelope(key: str, scope_key: str, payload_key: str,
                   payload: List[dict],
                   resource: Optional[Mapping[str, Any]] = None) -> dict:
    return {
        key: [{
            "resource": {
                "attributes": _otlp_attributes(
                    {"service.name": "repro.upa", **(resource or {})}
                ),
            },
            scope_key: [{
                "scope": {"name": "repro.obs", "version": "1"},
                payload_key: payload,
            }],
        }],
    }


def render_otlp_metrics(
    snapshot: MetricsSnapshot,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict:
    """OTLP-style JSON of one metrics snapshot.

    Counters become monotonic cumulative ``sum`` metrics, gauges become
    ``gauge`` metrics, histograms become ``summary`` metrics carrying
    the same quantiles the Prometheus exposition exports.
    """
    def _point(labels: Optional[Mapping[str, str]], body: dict) -> dict:
        if labels:
            return {"attributes": _otlp_attributes(labels), **body}
        return body

    metrics: List[dict] = []
    for base, members in _group_families(snapshot.counters):
        metrics.append({
            "name": base,
            "sum": {
                "isMonotonic": True,
                "aggregationTemporality":
                    "AGGREGATION_TEMPORALITY_CUMULATIVE",
                "dataPoints": [
                    _point(labels, {"asDouble": snapshot.counters[raw]})
                    for labels, raw in members
                ],
            },
        })
    for base, members in _group_families(snapshot.gauges):
        metrics.append({
            "name": base,
            "gauge": {
                "dataPoints": [
                    _point(labels, {"asDouble": snapshot.gauges[raw]})
                    for labels, raw in members
                ],
            },
        })
    for base, members in _group_families(snapshot.histograms):
        points = []
        for labels, raw in members:
            summary: HistogramSummary = snapshot.summary(raw)
            points.append(_point(labels, {
                "count": summary.count,
                "sum": summary.mean * summary.count,
                "quantileValues": [
                    {"quantile": float(q), "value": getattr(summary, a)}
                    for q, a in SUMMARY_QUANTILES
                ],
            }))
        metrics.append({"name": base, "summary": {"dataPoints": points}})
    return _otlp_envelope(
        "resourceMetrics", "scopeMetrics", "metrics", metrics, resource
    )


def render_otlp_spans(
    tracer: Tracer,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict:
    """OTLP-style JSON of a tracer's finished spans.

    Timestamps are seconds-since-tracer-epoch scaled to nanos (the
    tracer uses a monotonic clock, so they are *relative*, which is
    what makes this OTLP-*style*); ids are rendered as the fixed-width
    hex OTLP uses.
    """
    spans: List[dict] = []
    for span in tracer.spans():
        spans.append({
            "name": span.name,
            "spanId": f"{span.span_id:016x}",
            "parentSpanId":
                f"{span.parent_id:016x}" if span.parent_id else "",
            "startTimeUnixNano": str(int(span.start * 1e9)),
            "endTimeUnixNano": str(int((span.end or span.start) * 1e9)),
            "attributes": _otlp_attributes(
                {"thread.name": span.thread, **span.attributes}
            ),
        })
    return _otlp_envelope(
        "resourceSpans", "scopeSpans", "spans", spans,
        {**tracer.header, **(resource or {})},
    )


# ---------------------------------------------------------------------------
# /dashboard: self-contained HTML with inline-SVG sparklines
# ---------------------------------------------------------------------------

#: chart tokens (light, dark) — the validated reference palette: one
#: series hue (every sparkline is a single series, titled by its card),
#: reserved status steps for alert badges (always paired with a text
#: label, never color alone), and the matching surface/ink pairs.
_DASH_CSS = """\
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --plane: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --plane: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 20px; background: var(--plane);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 17px; margin: 0 0 2px; }
.sub { color: var(--text-secondary); font-size: 12px; margin: 0 0 14px; }
.sub a { color: var(--text-secondary); }
.badges { margin: 0 0 14px; }
.badge {
  display: inline-block; padding: 2px 9px; margin: 0 6px 6px 0;
  border-radius: 999px; font-size: 12px; font-weight: 600;
  border: 1px solid var(--border); background: var(--surface-1);
  color: var(--text-primary);
}
.badge .dot {
  display: inline-block; width: 8px; height: 8px; border-radius: 50%;
  margin-right: 6px; vertical-align: baseline;
}
.badge-good .dot { background: var(--status-good); }
.badge-warning .dot { background: var(--status-warning); }
.badge-critical .dot { background: var(--status-critical); }
.forecast { color: var(--text-secondary); font-size: 13px; margin: 0 0 14px; }
.grid {
  display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(230px, 1fr));
}
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px;
}
.card .name {
  color: var(--text-secondary); font-size: 11px;
  overflow-wrap: anywhere;
}
.card .value {
  font-size: 20px; font-variant-numeric: tabular-nums; margin: 1px 0 4px;
}
.card .rate { color: var(--muted); font-size: 11px; }
.spark { display: block; width: 100%; height: 36px; }
.spark .base { stroke: var(--grid); stroke-width: 1; }
.spark polyline { stroke: var(--series-1); }
.note { color: var(--muted); font-size: 12px; margin-top: 14px; }
"""


def _format_number(value: float) -> str:
    """Compact human rendering for card values ("1234", "0.0417")."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def sparkline_svg(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 220,
    height: int = 36,
    title: str = "",
) -> str:
    """One series as an inline-SVG sparkline (2px line, no chrome).

    Values normalize into the box with a 3px inset; a flat series draws
    mid-height.  The ``<title>`` child is the native hover tooltip and
    the accessible name — the numbers also appear as text on the card,
    so color never carries the information alone.
    """
    import html as _html

    w, h, inset = float(width), float(height), 3.0
    if not points:
        return ""
    values = [v for _, v in points]
    times = [t for t, _ in points]
    vmin, vmax = min(values), max(values)
    tmin, tmax = min(times), max(times)
    vspan = vmax - vmin
    tspan = tmax - tmin
    coords = []
    for i, (t, v) in enumerate(points):
        if tspan > 0:
            x = inset + (t - tmin) / tspan * (w - 2 * inset)
        else:
            x = inset + (i / max(1, len(points) - 1)) * (w - 2 * inset)
        if vspan > 0:
            y = (h - inset) - (v - vmin) / vspan * (h - 2 * inset)
        else:
            y = h / 2.0
        coords.append(f"{x:.1f},{y:.1f}")
    label = _html.escape(title, quote=True)
    baseline = h - inset
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'preserveAspectRatio="none" role="img" aria-label="{label}">'
        f"<title>{label}</title>"
        f'<line class="base" x1="0" y1="{baseline:.1f}" '
        f'x2="{width}" y2="{baseline:.1f}" />'
        f'<polyline fill="none" stroke-width="2" stroke-linejoin="round" '
        f'stroke-linecap="round" points="{" ".join(coords)}" />'
        "</svg>"
    )


def render_dashboard(
    store,
    alerts: Optional[Iterable[Mapping[str, Any]]] = None,
    *,
    title: str = "UPA continuous monitoring",
    refresh: Optional[float] = None,
    series: Optional[Iterable[str]] = None,
    since: Optional[float] = None,
    step: Optional[float] = None,
    max_cards: int = 48,
    now: Optional[float] = None,
) -> str:
    """The ``/dashboard`` page: key series first, everything inline.

    Stdlib-only and self-contained (no external scripts, fonts or
    stylesheets): one card per series with the latest value, trailing
    rate and a sparkline; status badges for health and firing alerts
    (color + text label, never color alone); the budget-exhaustion
    forecast when the store carries budget series.  ``refresh`` adds a
    ``<meta http-equiv="refresh">`` so a browser left open stays live.
    When more than ``max_cards`` series exist the remainder is dropped
    from the page (never silently — the footer says how many; the
    ``/timeseries`` endpoint always has the full set).
    """
    import html as _html

    from repro.obs.timeseries import forecast_exhaustion, order_series

    payload = store.to_payload(
        series=list(series) if series else None,
        since=since,
        step=step,
        now=now,
    )
    ordered = order_series(payload["series"])
    dropped = max(0, len(ordered) - max_cards)
    ordered = ordered[:max_cards]

    head = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_html.escape(title)}</title>",
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
    ]
    if refresh:
        head.append(f'<meta http-equiv="refresh" content="{refresh:g}">')
    head.append(f"<style>{_DASH_CSS}</style></head><body>")

    body: List[str] = [f"<h1>{_html.escape(title)}</h1>"]
    body.append(
        '<p class="sub">'
        f'{payload["ticks"]} sample(s), {len(payload["series"])} series '
        f'&middot; sample interval {payload["interval"]:g}s &middot; '
        '<a href="/timeseries">JSON</a> &middot; '
        '<a href="/metrics">metrics</a> &middot; '
        '<a href="/healthz">health</a></p>'
    )

    alert_list = list(alerts or ())
    badges: List[str] = []
    if alert_list:
        for alert in alert_list:
            severity = str(alert.get("severity", "warning"))
            cls = "critical" if severity == "critical" else "warning"
            text = _html.escape(
                f'{severity} · {alert.get("rule", "?")}'
            )
            detail = _html.escape(str(alert.get("message", "")), quote=True)
            badges.append(
                f'<span class="badge badge-{cls}" title="{detail}">'
                f'<span class="dot"></span>{text}</span>'
            )
    else:
        badges.append(
            '<span class="badge badge-good">'
            '<span class="dot"></span>ok · no alerts fired</span>'
        )
    body.append(f'<p class="badges">{"".join(badges)}</p>')

    forecast = forecast_exhaustion(store, now=now)
    if forecast is not None:
        releases = forecast.get("releases_to_exhaustion")
        suffix = (
            f" (~{releases:.0f} release(s))" if releases is not None else ""
        )
        body.append(
            '<p class="forecast">budget: exhaustion forecast in '
            f'~{forecast["seconds_to_exhaustion"]:.0f}s{suffix} at '
            f'{forecast["epsilon_per_second"]:.4g} eps/s &middot; '
            f'remaining epsilon {forecast["remaining_epsilon"]:.4g}</p>'
        )

    body.append('<div class="grid">')
    for name in ordered:
        entry = payload["series"][name]
        pts = entry["points"]
        rate = entry.get("rate_per_second")
        rate_text = (
            f"{_format_number(rate)}/s &middot; " if rate is not None else ""
        )
        spark = sparkline_svg(
            [(p[0], p[1]) for p in pts],
            title=f'{name}: latest {_format_number(entry["latest"])}',
        )
        body.append(
            '<div class="card">'
            f'<div class="name">{_html.escape(name)}</div>'
            f'<div class="value">{_format_number(entry["latest"])}</div>'
            f"{spark}"
            f'<div class="rate">{rate_text}{entry["kind"]} &middot; '
            f"{len(pts)} pt(s)</div>"
            "</div>"
        )
    body.append("</div>")
    if dropped:
        body.append(
            f'<p class="note">{dropped} more series not shown — '
            'query <a href="/timeseries">/timeseries</a> for the full '
            "set.</p>"
        )
    body.append("</body></html>")
    return "\n".join(head + body) + "\n"
