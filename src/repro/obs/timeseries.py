"""Bounded time-series store sampled from the metrics registry.

Everything in :mod:`repro.obs` up to here is snapshot-shaped: a
``/metrics`` scrape, a ledger entry, a report section all describe one
instant.  A long-running session (``UPASession.append``/``retire``)
needs the *time* dimension — how fast is epsilon being charged, is
sensitivity drifting, is a worker's RSS growing — so the alert rules can
forecast budget exhaustion before it happens instead of observing it
after.

:class:`TimeSeriesStore` samples a :class:`~repro.engine.metrics.MetricsRegistry`
into bounded per-series ring buffers:

* counters are recorded as cumulative values (kind ``"counter"``) and
  rates are derived over sliding windows on read;
* gauges are recorded as-is (kind ``"gauge"``);
* histograms are summarized per tick into a ``<name>.count`` counter and
  ``<name>.mean`` / ``<name>.p95`` gauges (re-summarizing the full
  observation list every tick would be O(samples) per tick).

Sampling happens three ways, all landing in the same ``tick`` path:

* a daemon sampler thread on a configurable interval (``start()``);
* an explicit ``tick(now=...)`` so tests are deterministic;
* ``tick_if_due()`` from scrape handlers and per-release hooks, which
  rate-limits to the configured interval so a busy append loop and a
  scraping Prometheus don't multiply the sample rate.

When a series' ring buffer fills, it is *downsampled* rather than
truncated: points are compacted pairwise (counters keep the later
cumulative value, gauges average), doubling the effective resolution and
therefore the retention horizon.  Old data gets coarser, not dropped.

The store never mutates what it observes — it holds no references into
the engine beyond the registry it snapshots, so enabling it cannot
change DP outputs (the same invariant upalint enforces for monoids).
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import warnings
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.metrics import HistogramSummary, MetricsRegistry

#: artifact format tag, first line of every time-series JSONL file.
TIMESERIES_FORMAT = "upa-timeseries/1"

#: the series an operator watches first — the dashboard and ``repro
#: watch`` lead with these (family bases match their labelled members),
#: then append whatever else the store holds.
KEY_SERIES: Tuple[str, ...] = (
    MetricsRegistry.RELEASES,
    MetricsRegistry.RELEASE_EPSILON,
    MetricsRegistry.BUDGET_REMAINING,
    MetricsRegistry.RELEASE_SENSITIVITY,
    MetricsRegistry.RELEASE_CLAMPS,
    MetricsRegistry.INCR_DELTA_FRACTION,
    MetricsRegistry.INCR_RECORDS_REUSED,
    MetricsRegistry.JOBS,
    MetricsRegistry.TASKS,
    "worker_rss_kb",
)

COUNTER = "counter"
GAUGE = "gauge"

Point = Tuple[float, float]


class _Series:
    """One bounded series: ``[(unix_time, value), ...]`` plus its kind."""

    __slots__ = ("kind", "points", "compactions")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.points: List[Point] = []
        self.compactions = 0

    def add(self, t: float, v: float, max_points: int) -> None:
        self.points.append((t, v))
        if len(self.points) > max_points:
            self._compact()

    def _compact(self) -> None:
        pts = self.points
        out: List[Point] = []
        for i in range(0, len(pts) - 1, 2):
            a, b = pts[i], pts[i + 1]
            if self.kind == COUNTER:
                # cumulative: the later value subsumes the earlier one,
                # so pairwise rates over the survivors stay exact.
                out.append(b)
            else:
                out.append(((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0))
        if len(pts) % 2:
            out.append(pts[-1])
        self.points = out
        self.compactions += 1


class TimeSeriesStore:
    """Ring-buffered metric samples with rate/trend derivation.

    Args:
        metrics: registry to sample on each tick (optional — a store
            can also be fed via :meth:`record`, e.g. when rebuilt from
            an artifact).
        interval: target seconds between samples; both the sampler
            thread and :meth:`tick_if_due` honour it.
        max_points: per-series ring-buffer capacity before pairwise
            downsampling kicks in.
        histograms: also summarize histogram metrics per tick (count /
            mean / p95 derived series).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        *,
        interval: float = 1.0,
        max_points: int = 512,
        histograms: bool = True,
        header: Optional[dict] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_points < 8:
            raise ValueError(f"max_points must be >= 8, got {max_points}")
        self.metrics = metrics
        self.interval = float(interval)
        self.max_points = int(max_points)
        self.sample_histograms = bool(histograms)
        self.header = dict(header or {})
        self._lock = threading.Lock()
        self._series: Dict[str, _Series] = {}
        self._ticks: List[float] = []
        self._last_tick: Optional[float] = None
        self._listeners: List[Callable[["TimeSeriesStore", float], None]] = []
        self._jsonl_path: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------
    # recording

    def add_listener(
        self, listener: Callable[["TimeSeriesStore", float], None]
    ) -> None:
        """Call ``listener(store, now)`` after every tick.

        Listeners run outside the store lock (same contract as ledger
        listeners); an exception is downgraded to a warning so a broken
        observer cannot fail the pipeline it observes.
        """
        self._listeners.append(listener)

    def record(self, name: str, kind: str, value: float, now: float) -> None:
        """Record one point into series ``name`` (creating it)."""
        if kind not in (COUNTER, GAUGE):
            raise ValueError(f"unknown series kind: {kind!r}")
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(kind)
            series.add(float(now), float(value), self.max_points)

    def tick(self, now: Optional[float] = None) -> float:
        """Sample the registry once; returns the sample timestamp.

        Histogram metrics are summarized into derived series rather
        than stored raw; the derived names are plain metric names, so
        they flow through ``?series=`` filters and the dashboard like
        any other series.
        """
        t = time.time() if now is None else float(now)
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        if self.metrics is not None:
            snap = self.metrics.snapshot()
            counters.update(snap.counters)
            gauges.update(snap.gauges)
            if self.sample_histograms:
                for name, values in snap.histograms.items():
                    summary = HistogramSummary.from_values(values)
                    counters[name + ".count"] = float(summary.count)
                    gauges[name + ".mean"] = summary.mean
                    gauges[name + ".p95"] = summary.p95
        with self._lock:
            for name, value in counters.items():
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = _Series(COUNTER)
                series.add(t, float(value), self.max_points)
            for name, value in gauges.items():
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = _Series(GAUGE)
                series.add(t, float(value), self.max_points)
            self._ticks.append(t)
            if len(self._ticks) > 4 * self.max_points:
                del self._ticks[: len(self._ticks) // 2]
            self._last_tick = t
            path = self._jsonl_path
        if path is not None:
            self._append_jsonl(path, t, counters, gauges)
        for listener in list(self._listeners):
            try:
                listener(self, t)
            except Exception as exc:  # pragma: no cover - defensive
                warnings.warn(
                    f"time-series listener raised {exc!r}; "
                    "continuing without it",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return t

    def tick_if_due(self, now: Optional[float] = None) -> Optional[float]:
        """Tick only if at least ``interval`` elapsed since the last one.

        This is the hook scrape handlers and per-release paths use:
        it keeps an idle-but-serving session's series (and therefore
        its windowed alert state) fresh without letting a hot loop
        oversample.
        """
        t = time.time() if now is None else float(now)
        with self._lock:
            last = self._last_tick
        if last is not None and t - last < self.interval:
            return None
        return self.tick(now=t)

    # ------------------------------------------------------------------
    # sampler thread

    def start(self, interval: Optional[float] = None) -> None:
        """Start the daemon sampler thread (idempotent)."""
        if interval is not None:
            if interval <= 0:
                raise ValueError(f"interval must be positive, got {interval}")
            self.interval = float(interval)
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()

        def _loop() -> None:
            while not self._stop_event.wait(self.interval):
                try:
                    self.tick()
                except Exception:  # pragma: no cover - defensive
                    # the sampler must never take the session down; a
                    # failed sample is a gap in the series, nothing more.
                    pass

        self._thread = threading.Thread(
            target=_loop, name="repro-timeseries-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; safe if never started)."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # queries

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def kind(self, name: str) -> Optional[str]:
        with self._lock:
            series = self._series.get(name)
            return series.kind if series is not None else None

    def tick_times(self) -> List[float]:
        with self._lock:
            return list(self._ticks)

    @property
    def last_tick(self) -> Optional[float]:
        with self._lock:
            return self._last_tick

    def points(
        self,
        name: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[Point]:
        """Points of series ``name`` with ``since < t <= until``.

        The half-open lower bound makes windowed reads composable with
        :meth:`rate`; ``until`` lets :meth:`AlertEngine.replay
        <repro.obs.alerts.AlertEngine.replay>` evaluate windows *as of*
        a historical tick without seeing the future.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            pts = list(series.points)
        if since is not None:
            pts = [p for p in pts if p[0] > since]
        if until is not None:
            pts = [p for p in pts if p[0] <= until]
        return pts

    def latest(
        self, name: str, until: Optional[float] = None
    ) -> Optional[float]:
        pts = self.points(name, until=until)
        return pts[-1][1] if pts else None

    def rate(
        self,
        name: str,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second rate of change over the trailing ``window``.

        Needs at least two points in the window; counter rates clamp at
        zero (a registry reset between samples reads as "no progress",
        not a negative rate).  ``window=None`` spans the whole series.
        """
        end = self._resolve_now(now)
        since = None if window is None else end - float(window)
        pts = self.points(name, since=since, until=end)
        if len(pts) < 2:
            return None
        (t0, v0), (t1, v1) = pts[0], pts[-1]
        if t1 <= t0:
            return None
        r = (v1 - v0) / (t1 - t0)
        if self.kind(name) == COUNTER:
            r = max(0.0, r)
        return r

    def delta(
        self,
        name: str,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Increase over the trailing ``window`` (None if < 2 points)."""
        end = self._resolve_now(now)
        since = None if window is None else end - float(window)
        pts = self.points(name, since=since, until=end)
        if len(pts) < 2:
            return None
        return pts[-1][1] - pts[0][1]

    def slope(
        self,
        name: str,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Least-squares slope (units/second) over the trailing window."""
        end = self._resolve_now(now)
        since = None if window is None else end - float(window)
        pts = self.points(name, since=since, until=end)
        return least_squares_slope(pts)

    def _resolve_now(self, now: Optional[float]) -> float:
        if now is not None:
            return float(now)
        last = self.last_tick
        return last if last is not None else time.time()

    # ------------------------------------------------------------------
    # payloads

    def to_payload(
        self,
        series: Optional[Sequence[str]] = None,
        since: Optional[float] = None,
        step: Optional[float] = None,
        rate_window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> dict:
        """JSON-ready dict for ``/timeseries`` and ``repro watch``.

        ``series`` filters by exact name or by labelled-family base
        (``worker_rss_kb`` matches ``worker_rss_kb#worker=123``);
        ``step`` resamples each series to at most one point per
        ``step`` seconds (last value wins — cheap, monotone-safe).
        """
        from repro.obs.exporters import split_labeled_name

        end = self._resolve_now(now)
        wanted = None
        if series:
            wanted = {s.strip() for s in series if s and s.strip()}
        out: Dict[str, dict] = {}
        for name in self.names():
            if wanted is not None:
                base, _ = split_labeled_name(name)
                if name not in wanted and base not in wanted:
                    continue
            pts = self.points(name, since=since, until=end)
            if not pts:
                continue
            if step:
                pts = resample(pts, float(step))
            entry = {
                "kind": self.kind(name),
                "points": [[t, v] for t, v in pts],
                "latest": pts[-1][1],
            }
            r = self.rate(name, window=rate_window, now=end)
            if r is not None:
                entry["rate_per_second"] = r
            out[name] = entry
        return {
            "format": TIMESERIES_FORMAT,
            "now": end,
            "interval": self.interval,
            "ticks": len(self.tick_times()),
            "series": out,
        }

    # ------------------------------------------------------------------
    # JSONL artifacts

    def stream_to(self, path: str) -> None:
        """Append one JSONL line per tick to ``path`` from now on.

        Writes the header immediately if the file is empty/absent, same
        convention as :meth:`PrivacyLedger.append_jsonl` — a crash
        mid-session leaves a readable prefix.
        """
        self._jsonl_path = os.fspath(path)
        self._ensure_jsonl_header(self._jsonl_path)

    def _header_line(self) -> dict:
        header = {
            "format": TIMESERIES_FORMAT,
            "interval": self.interval,
            "max_points": self.max_points,
        }
        header.update(self.header)
        return header

    def _ensure_jsonl_header(self, path: str) -> None:
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return
        with io.open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._header_line(), sort_keys=True) + "\n")

    def _append_jsonl(
        self,
        path: str,
        t: float,
        counters: Dict[str, float],
        gauges: Dict[str, float],
    ) -> None:
        line = json.dumps(
            {"t": t, "counters": counters, "gauges": gauges},
            sort_keys=True,
        )
        with io.open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def write_jsonl(self, path: str) -> int:
        """Dump the retained window to ``path``; returns ticks written.

        Reconstructs per-tick rows from the ring buffers, so a store
        that has downsampled writes its *coarsened* history — use
        :meth:`stream_to` during the run for full-resolution artifacts.
        """
        ticks = self.tick_times()
        with self._lock:
            columns = {
                name: (s.kind, list(s.points)) for name, s in self._series.items()
            }
        with io.open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._header_line(), sort_keys=True) + "\n")
            written = 0
            for t in ticks:
                counters: Dict[str, float] = {}
                gauges: Dict[str, float] = {}
                for name, (kind, pts) in columns.items():
                    value = _value_at(pts, t)
                    if value is None:
                        continue
                    (counters if kind == COUNTER else gauges)[name] = value
                fh.write(
                    json.dumps(
                        {"t": t, "counters": counters, "gauges": gauges},
                        sort_keys=True,
                    )
                    + "\n"
                )
                written += 1
        return written

    @classmethod
    def read_jsonl(cls, path: str) -> "TimeSeriesStore":
        """Rebuild a store from a JSONL artifact (crash-safe).

        Blank and corrupt lines are skipped with a warning, matching
        :meth:`PrivacyLedger.read_jsonl` — a torn final line from a
        crashed session must not make the artifact unreadable.
        """
        store: Optional[TimeSeriesStore] = None
        with io.open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}:{lineno}: skipping corrupt time-series "
                        "line (truncated write?)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if not isinstance(payload, dict):
                    continue
                if store is None:
                    if payload.get("format") != TIMESERIES_FORMAT:
                        raise ValueError(
                            f"{path}: not a {TIMESERIES_FORMAT} artifact "
                            f"(header: {payload!r})"
                        )
                    header = {
                        k: v
                        for k, v in payload.items()
                        if k not in ("format", "interval", "max_points")
                    }
                    store = cls(
                        None,
                        interval=float(payload.get("interval", 1.0)),
                        max_points=int(payload.get("max_points", 512)),
                        header=header,
                    )
                    continue
                if "t" not in payload:
                    continue
                t = float(payload["t"])
                for name, value in (payload.get("counters") or {}).items():
                    store.record(name, COUNTER, value, t)
                for name, value in (payload.get("gauges") or {}).items():
                    store.record(name, GAUGE, value, t)
                with store._lock:
                    store._ticks.append(t)
                    store._last_tick = t
        if store is None:
            raise ValueError(f"{path}: empty time-series artifact")
        return store


def least_squares_slope(points: Sequence[Point]) -> Optional[float]:
    """Ordinary least-squares slope of ``points`` (None if degenerate)."""
    if len(points) < 2:
        return None
    n = float(len(points))
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    sxx = sum((t - mean_t) ** 2 for t, _ in points)
    if sxx == 0.0:
        return None
    sxy = sum((t - mean_t) * (v - mean_v) for t, v in points)
    return sxy / sxx


def resample(points: Sequence[Point], step: float) -> List[Point]:
    """At most one point per ``step``-second bucket (last value wins)."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    out: List[Point] = []
    last_bucket: Optional[int] = None
    for t, v in points:
        bucket = int(t // step)
        if last_bucket is not None and bucket == last_bucket:
            out[-1] = (t, v)
        else:
            out.append((t, v))
            last_bucket = bucket
    return out


def _value_at(points: Sequence[Point], t: float) -> Optional[float]:
    """Last value at or before ``t`` (None if the series starts later)."""
    value = None
    for pt, pv in points:
        if pt > t:
            break
        value = pv
    return value


def forecast_exhaustion(
    store: TimeSeriesStore,
    *,
    window: Optional[float] = None,
    now: Optional[float] = None,
) -> Optional[dict]:
    """Budget forecast from the charge-rate window, or None.

    Reads the ``release.epsilon_charged`` counter's trailing rate and
    the session budget-remaining gauge; returns seconds (and, when
    the release rate is known, releases) to exhaustion.  This is the
    arithmetic behind the windowed ``BudgetBurnRule`` and the ``repro
    watch`` forecast line.
    """
    end = store._resolve_now(now)
    rate = store.rate(MetricsRegistry.RELEASE_EPSILON, window=window, now=end)
    remaining = store.latest(MetricsRegistry.BUDGET_REMAINING, until=end)
    if rate is None or rate <= 0.0 or remaining is None:
        return None
    seconds = remaining / rate
    forecast = {
        "epsilon_per_second": rate,
        "remaining_epsilon": remaining,
        "seconds_to_exhaustion": seconds,
    }
    release_rate = store.rate(
        MetricsRegistry.RELEASES, window=window, now=end
    )
    if release_rate is not None and release_rate > 0.0:
        forecast["releases_to_exhaustion"] = seconds * release_rate
    return forecast


def order_series(
    names: Iterable[str], key_series: Sequence[str] = KEY_SERIES
) -> List[str]:
    """Order ``names`` with the key series (and their labelled family
    members) first, everything else alphabetically after."""
    from repro.obs.exporters import split_labeled_name

    names = list(names)
    leading: List[str] = []
    for key in key_series:
        for name in sorted(names):
            base, _ = split_labeled_name(name)
            if (name == key or base == key) and name not in leading:
                leading.append(name)
    trailing = sorted(n for n in names if n not in leading)
    return leading + trailing


__all__ = [
    "COUNTER",
    "GAUGE",
    "KEY_SERIES",
    "TIMESERIES_FORMAT",
    "TimeSeriesStore",
    "forecast_exhaustion",
    "least_squares_slope",
    "order_series",
    "resample",
]
