"""`repro watch`: a refreshing terminal view of a monitored session.

The dashboard answers "open a browser"; ``watch`` answers "I have a
terminal and a port".  It polls a live
:class:`~repro.obs.server.ObservabilityServer` (``/timeseries`` for the
sampled series, ``/healthz`` for alert state) — or replays a
``--timeseries`` JSONL artifact — and renders one aligned table of key
series with unicode sparklines, the budget-exhaustion forecast, and
every firing alert.

Rendering is pure (payload dicts in, string out) so tests can golden
the exact terminal output from a synthetic artifact; the CLI loop in
:mod:`repro.cli` only adds polling, screen clearing and sleep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.metrics import MetricsRegistry
from repro.obs.timeseries import order_series

#: eight-level unicode bars, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: ANSI "clear screen + home" used by the live loop between refreshes.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def spark(values: Sequence[float], width: int = 24) -> str:
    """Unicode sparkline of ``values``, downsampled to ``width`` cells.

    A flat (or single-point) series renders at the lowest level; an
    empty one renders as spaces so table columns stay aligned.
    """
    if not values:
        return " " * width
    values = list(values)
    if len(values) > width:
        # bucket-mean downsample so a long history still fits one cell
        # row without aliasing away short spikes entirely.
        buckets: List[float] = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    vmin, vmax = min(values), max(values)
    span = vmax - vmin
    if span <= 0:
        line = SPARK_LEVELS[0] * len(values)
    else:
        line = "".join(
            SPARK_LEVELS[
                min(
                    len(SPARK_LEVELS) - 1,
                    int((v - vmin) / span * len(SPARK_LEVELS)),
                )
            ]
            for v in values
        )
    return line.ljust(width)


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def budget_forecast(payload: Mapping[str, Any]) -> Optional[Dict[str, float]]:
    """Exhaustion forecast recomputed from a ``/timeseries`` payload.

    Mirrors :func:`repro.obs.timeseries.forecast_exhaustion` but works
    on the serialized payload, so a watch client needs no store object:
    the charge rate comes from the ``release.epsilon_charged`` series'
    reported trailing rate, the balance from the last point of the
    session budget gauge.
    """
    series = payload.get("series") or {}
    charged = series.get(MetricsRegistry.RELEASE_EPSILON)
    remaining = series.get(MetricsRegistry.BUDGET_REMAINING)
    if not charged or not remaining:
        return None
    rate = charged.get("rate_per_second")
    balance = remaining.get("latest")
    if rate is None or rate <= 0 or balance is None:
        return None
    seconds = float(balance) / float(rate)
    forecast = {
        "epsilon_per_second": float(rate),
        "remaining_epsilon": float(balance),
        "seconds_to_exhaustion": seconds,
    }
    releases = series.get(MetricsRegistry.RELEASES) or {}
    release_rate = releases.get("rate_per_second")
    if release_rate:
        forecast["releases_to_exhaustion"] = seconds * float(release_rate)
    return forecast


def render_watch(
    payload: Mapping[str, Any],
    health: Optional[Mapping[str, Any]] = None,
    *,
    series: Optional[Sequence[str]] = None,
    max_rows: int = 16,
    spark_width: int = 24,
    source: str = "",
) -> str:
    """One full watch frame: header, series table, forecast, alerts.

    ``payload`` is a ``/timeseries`` JSON document (live or rebuilt
    from an artifact via ``TimeSeriesStore.to_payload()``); ``health``
    is a ``/healthz`` document when available.  ``series`` restricts
    and orders the table explicitly; by default the key series lead
    and the rest fill up to ``max_rows`` (the dropped count is always
    printed — never a silent cap).
    """
    from repro.analysis import format_table

    all_series: Dict[str, Any] = dict(payload.get("series") or {})
    if series:
        ordered = [s for s in series if s in all_series]
    else:
        ordered = order_series(all_series)
    dropped = max(0, len(ordered) - max_rows)
    ordered = ordered[:max_rows]

    lines: List[str] = []
    status = (health or {}).get("status", "unknown")
    lines.append(
        f"repro watch · {source or 'time-series'} · "
        f"{payload.get('ticks', 0)} sample(s) · "
        f"{len(all_series)} series · health: {status}"
    )
    lines.append("")

    rows: List[Tuple[str, str, str, str, str]] = []
    for name in ordered:
        entry = all_series[name]
        points = entry.get("points") or []
        values = [p[1] for p in points]
        rows.append((
            name,
            _format_number(entry.get("latest")),
            _format_number(entry.get("rate_per_second")),
            spark(values, width=spark_width),
            str(entry.get("kind", "?")),
        ))
    if rows:
        lines.append(format_table(
            ["series", "latest", "rate/s", "trend", "kind"], rows
        ))
    else:
        lines.append("(no series sampled yet)")
    if dropped:
        lines.append(f"... {dropped} more series (use --series to select)")
    lines.append("")

    forecast = budget_forecast(payload)
    if forecast is not None:
        releases = forecast.get("releases_to_exhaustion")
        suffix = (
            f" (~{releases:.0f} release(s))" if releases is not None else ""
        )
        lines.append(
            "budget: exhaustion forecast in "
            f"~{forecast['seconds_to_exhaustion']:.0f}s{suffix} at "
            f"{forecast['epsilon_per_second']:.4g} eps/s · remaining "
            f"epsilon {forecast['remaining_epsilon']:.4g}"
        )
    else:
        lines.append("budget: no charge-rate forecast (no accountant "
                     "series sampled)")

    alerts = list((health or {}).get("alerts") or [])
    if alerts:
        lines.append(f"alerts ({len(alerts)} fired):")
        for alert in alerts:
            lines.append(
                f"  {str(alert.get('severity', '?')).upper()} "
                f"{alert.get('rule', '?')}: {alert.get('message', '')}"
            )
    else:
        lines.append("alerts: none fired")
    return "\n".join(lines) + "\n"


__all__ = [
    "CLEAR_SCREEN",
    "SPARK_LEVELS",
    "budget_forecast",
    "render_watch",
    "spark",
]
