"""Privacy audit ledger: what the pipeline *did* with the budget.

FLEX-style systems are auditable because their sensitivity derivation
is inspectable; UPA's sensitivity is *sampled and fitted*, which makes
inspectability more important, not less.  The ledger records, per
``UPASession.run``/``run_sql``, the fitted normal parameters (mu,
sigma) per output coordinate, the inferred output range ``O_f``, the
local sensitivity the mechanism was calibrated to, what RANGE ENFORCER
did (clamping, repeated-query matches, record removals), the epsilon
charged against the accountant's balance, and answer-cache hits.

The ledger is **append-only**: entries can be recorded and read, never
edited or removed (``clear`` does not exist by design).  It serializes
to JSONL — a self-describing header line followed by one JSON object
per entry — and is queryable in-process for tests and ``repro
report``.

The header also records the *execution* context of the run: alongside
the DP configuration (epsilon, n, seed, mechanism), ``UPASession``
refreshes ``backend`` (inline/threads/processes, after legacy
resolution) and ``max_workers`` on every release, so an auditor
reading a ledger can tell a multi-process run from a single-threaded
one — the accounting is identical, the operational blast radius is
not.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, TextIO, Tuple,
)


def _as_floats(values: Any) -> Tuple[float, ...]:
    """Normalize array-likes to a JSON-friendly tuple of floats."""
    if values is None:
        return ()
    try:
        return tuple(float(v) for v in values)
    except TypeError:  # scalar
        return (float(values),)


@dataclass(frozen=True)
class LedgerEntry:
    """One audited release (or cache hit) of a query answer.

    All fields are safe to persist: they describe the *mechanism's
    calibration*, not the raw data (the range and fit are themselves
    derived from sampled neighbours and are what the DP analysis
    reasons about — contrast with ``UPAResult.raw_output``, which must
    never leave the curator).
    """

    #: position in the ledger (0-based, append order).
    sequence: int
    query: str
    epsilon_charged: float
    delta: float
    mechanism: str
    sample_size: int
    #: MLE normal fit per output coordinate (Algorithm 1).
    fitted_mean: Tuple[float, ...]
    fitted_std: Tuple[float, ...]
    #: the inferred output range O_f per coordinate.
    range_lower: Tuple[float, ...]
    range_upper: Tuple[float, ...]
    #: range width the mechanism's noise was calibrated to.
    local_sensitivity: float
    #: the Definition II.1 estimate (Fig. 2(a) comparison).
    estimated_local_sensitivity: float
    #: RANGE ENFORCER (Algorithm 2) outcomes.
    clamped: bool
    matched_prior: bool
    records_removed: int
    #: accountant balance after this charge (None: no accountant).
    accountant_spent_epsilon: Optional[float] = None
    accountant_remaining_epsilon: Optional[float] = None
    #: the answer came from the repeat-submission cache (no new spend).
    cache_hit: bool = False
    elapsed_seconds: float = 0.0
    unix_time: float = field(default_factory=time.time)

    @property
    def clamp_count(self) -> int:
        return 1 if self.clamped else 0

    def to_dict(self) -> dict:
        data = asdict(self)
        for key in ("fitted_mean", "fitted_std", "range_lower", "range_upper"):
            data[key] = list(data[key])
        return data


class PrivacyLedger:
    """Thread-safe, append-only record of every budgeted release.

    Example:
        >>> ledger = PrivacyLedger()
        >>> from repro.core import UPASession  # doctest: +SKIP
        >>> session = UPASession(ledger=ledger)  # doctest: +SKIP
    """

    FORMAT = "upa-ledger/1"

    def __init__(self, header: Optional[Dict[str, Any]] = None):
        self._lock = threading.Lock()
        self._entries: List[LedgerEntry] = []
        self.header: Dict[str, Any] = dict(header or {})
        #: observers called with each appended entry (alert engines,
        #: incremental JSONL flushers).  Observer code must never break
        #: a release, so exceptions are swallowed with a warning.
        self._listeners: List[Callable[[LedgerEntry], None]] = []

    def add_listener(self, listener: Callable[[LedgerEntry], None]) -> None:
        """Register ``listener`` to be called after every append."""
        with self._lock:
            self._listeners.append(listener)

    def ensure_header(self, header: Dict[str, Any]) -> None:
        """Fill the header once; later calls are no-ops (the first
        session to touch an anonymous ledger describes it)."""
        with self._lock:
            if not self.header:
                self.header = dict(header)

    def update_header(self, **fields: Any) -> None:
        """Overwrite individual header fields.  For counters that grow
        over the ledger's life (plan-cache hits), where the header is
        written at export time and should carry the final value even
        when a CLI pre-filled it at construction."""
        with self._lock:
            self.header.update(fields)

    def append(self, entry: LedgerEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            listeners = list(self._listeners)
        # Outside the lock: a listener may read the ledger (entries(),
        # update_header()) without deadlocking.
        for listener in listeners:
            try:
                listener(entry)
            except Exception as exc:  # noqa: BLE001 - observer isolation
                warnings.warn(
                    f"ledger listener {listener!r} raised "
                    f"{type(exc).__name__}: {exc}; entry {entry.sequence} "
                    "was recorded, the listener was skipped",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def next_sequence(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[LedgerEntry]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries())

    # -- queries (tests, reports) ------------------------------------
    def query(
        self,
        query_name: Optional[str] = None,
        clamped: Optional[bool] = None,
        matched_prior: Optional[bool] = None,
        cache_hit: Optional[bool] = None,
    ) -> List[LedgerEntry]:
        """Filter entries by any combination of audit dimensions."""
        out = []
        for entry in self.entries():
            if query_name is not None and entry.query != query_name:
                continue
            if clamped is not None and entry.clamped != clamped:
                continue
            if matched_prior is not None and entry.matched_prior != matched_prior:
                continue
            if cache_hit is not None and entry.cache_hit != cache_hit:
                continue
            out.append(entry)
        return out

    def totals(self) -> Dict[str, float]:
        """Ledger-wide aggregates for the report summary."""
        entries = self.entries()
        return {
            "entries": len(entries),
            "epsilon_charged": sum(e.epsilon_charged for e in entries),
            "clamp_count": sum(e.clamp_count for e in entries),
            "matched_prior": sum(1 for e in entries if e.matched_prior),
            "records_removed": sum(e.records_removed for e in entries),
            "cache_hits": sum(1 for e in entries if e.cache_hit),
        }

    # -- serialization -----------------------------------------------
    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.dump_jsonl(handle)

    def dump_jsonl(self, handle: TextIO) -> None:
        """Header line, then one compact JSON object per entry."""
        header = {"format": self.FORMAT, **self.header}
        handle.write(json.dumps(header, sort_keys=True, default=str) + "\n")
        for entry in self.entries():
            handle.write(
                json.dumps(entry.to_dict(), sort_keys=True, default=str)
                + "\n"
            )

    def append_jsonl(self, path: str, entry: LedgerEntry) -> None:
        """Flush one entry to ``path`` incrementally (append mode).

        Writes the self-describing header line first when the file does
        not exist yet (or is empty), then appends the entry — so a
        ledger being recorded release by release is valid JSONL at
        every instant, and ``repro report`` / the ``/ledger`` endpoint
        can read it while the run is still in flight.  Contrast with
        :meth:`write_jsonl`, which rewrites the whole file.
        """
        with self._lock:
            header = {"format": self.FORMAT, **self.header}
        needs_header = (
            not os.path.exists(path) or os.path.getsize(path) == 0
        )
        with open(path, "a", encoding="utf-8") as handle:
            if needs_header:
                handle.write(json.dumps(header, sort_keys=True, default=str)
                             + "\n")
            handle.write(
                json.dumps(entry.to_dict(), sort_keys=True, default=str)
                + "\n"
            )
            handle.flush()

    @classmethod
    def read_jsonl(cls, path: str) -> "PrivacyLedger":
        """Load a ledger written by :meth:`write_jsonl`/:meth:`append_jsonl`.

        Crash-safe by design: blank lines are skipped, and a truncated
        or otherwise corrupt line — the normal state of the *final*
        line while another process is appending — produces a
        :class:`RuntimeWarning` and is dropped instead of raising, so
        live readers (``/ledger``, ``repro report``) always get the
        longest valid prefix.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            return cls()

        def _bad(index: int, what: str) -> None:
            warnings.warn(
                f"{path}:{index + 1}: skipping {what} ledger line "
                "(truncated by a concurrent writer?)",
                RuntimeWarning,
                stacklevel=3,
            )

        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            _bad(0, "corrupt header")
            header = {}
        if not isinstance(header, dict):
            _bad(0, "non-object header")
            header = {}
        header.pop("format", None)
        ledger = cls(header=header)
        for index, line in enumerate(lines[1:], start=1):
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                _bad(index, "corrupt")
                continue
            try:
                for key in ("fitted_mean", "fitted_std",
                            "range_lower", "range_upper"):
                    data[key] = tuple(float(v) for v in data.get(key, ()))
                ledger.append(LedgerEntry(**data))
            except (TypeError, ValueError, KeyError, AttributeError):
                _bad(index, "malformed")
        return ledger


def make_entry(
    *,
    sequence: int,
    query: str,
    epsilon_charged: float,
    delta: float,
    mechanism: str,
    sample_size: int,
    mean: Any,
    std: Any,
    lower: Any,
    upper: Any,
    local_sensitivity: float,
    estimated_local_sensitivity: float,
    clamped: bool,
    matched_prior: bool,
    records_removed: int,
    accountant_spent_epsilon: Optional[float] = None,
    accountant_remaining_epsilon: Optional[float] = None,
    cache_hit: bool = False,
    elapsed_seconds: float = 0.0,
) -> LedgerEntry:
    """Build a :class:`LedgerEntry`, normalizing numpy arrays to tuples."""
    return LedgerEntry(
        sequence=sequence,
        query=query,
        epsilon_charged=float(epsilon_charged),
        delta=float(delta),
        mechanism=mechanism,
        sample_size=int(sample_size),
        fitted_mean=_as_floats(mean),
        fitted_std=_as_floats(std),
        range_lower=_as_floats(lower),
        range_upper=_as_floats(upper),
        local_sensitivity=float(local_sensitivity),
        estimated_local_sensitivity=float(estimated_local_sensitivity),
        clamped=bool(clamped),
        matched_prior=bool(matched_prior),
        records_removed=int(records_removed),
        accountant_spent_epsilon=accountant_spent_epsilon,
        accountant_remaining_epsilon=accountant_remaining_epsilon,
        cache_hit=bool(cache_hit),
        elapsed_seconds=float(elapsed_seconds),
    )
