"""Introspection server: live HTTP endpoints over a running session.

A daemon-thread :class:`ObservabilityServer` (stdlib ``http.server``)
exposes what `repro report` shows post-hoc, *while the run is in
flight*:

========== ==========================================================
endpoint    serves
========== ==========================================================
``/``        JSON index of the endpoints below
``/metrics`` Prometheus text exposition of the engine registry, plus
             budget/alert gauges (``?format=otlp`` for OTLP-style
             JSON)
``/healthz`` ``{"status": "ok"}`` — or 503 ``"degraded"`` once any
             alert rule has fired
``/ledger``  privacy-ledger JSONL tail; ``?n=5`` for the last five
             entries, ``?since=SEQ`` for entries after a sequence
             cursor (combine both)
``/traces``  Chrome trace-event JSON of the spans finished so far
             (``?format=otlp`` for OTLP-style spans)
``/budget``  per-accountant balance snapshots
``/profile`` the sampling profiler's collapsed stacks so far
``/workers`` per-worker health JSON (processes backend): pid, rss,
             uptime, tasks completed, task-seconds summary — derived
             from the ``worker``-labelled series the cross-process
             telemetry merge records (:mod:`repro.obs.crossproc`)
``/timeseries`` sampled metric history from the attached
             :class:`~repro.obs.timeseries.TimeSeriesStore`;
             ``?series=a,b`` filters (exact names or labelled-family
             bases), ``?since=T`` bounds, ``?step=S`` resamples,
             ``?window=W`` sets the rate window
``/dashboard`` self-contained HTML over the same store: inline-SVG
             sparklines, alert badges, budget forecast; auto-refreshes
             (``?refresh=S``, ``0`` disables)
========== ==========================================================

Every data source (metrics registry, tracer, ledger, accountant,
profiler, time-series store) is already thread-safe, so scrape threads
never contend with the pipeline beyond those locks.  Embed via
:meth:`repro.engine.context.EngineContext.serve` /
:meth:`repro.core.session.UPASession.serve`, or the CLI's ``--serve``
flag / ``repro serve`` command.  Starting a server from inside a
mapper/reducer is flagged by upalint (UPA013).

Malformed query parameters (``?n=banana``) answer 400 with a JSON
error body — a scrape must never surface a stack-trace 500 for a typo.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.dp.budget import PrivacyAccountant
from repro.engine.metrics import MetricsRegistry
from repro.obs.alerts import AlertEngine
from repro.obs.exporters import (
    prometheus_block,
    render_otlp_metrics,
    render_otlp_spans,
    render_prometheus,
)
from repro.obs.ledger import PrivacyLedger
from repro.obs.profiler import SamplingProfiler
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracing import Tracer

#: (status, content-type, body) triple every route returns.
_Response = Tuple[int, str, bytes]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_response(payload: Any, status: int = 200) -> _Response:
    body = json.dumps(payload, indent=2, sort_keys=True, default=str)
    return status, "application/json; charset=utf-8", body.encode("utf-8")


class _BadParam(ValueError):
    """A malformed query parameter; answered as HTTP 400 + JSON."""


def _str_param(params: Dict[str, List[str]], key: str) -> Optional[str]:
    values = params.get(key)
    return values[0] if values else None


def _int_param(params: Dict[str, List[str]], key: str) -> Optional[int]:
    raw = _str_param(params, key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise _BadParam(
            f"query parameter {key!r} must be an integer, got {raw!r}"
        ) from None


def _float_param(
    params: Dict[str, List[str]], key: str, positive: bool = False
) -> Optional[float]:
    raw = _str_param(params, key)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise _BadParam(
            f"query parameter {key!r} must be a number, got {raw!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise _BadParam(
            f"query parameter {key!r} must be finite, got {raw!r}"
        )
    if positive and value <= 0:
        raise _BadParam(
            f"query parameter {key!r} must be positive, got {raw!r}"
        )
    return value


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        owner: "ObservabilityServer" = self.server.owner  # type: ignore
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        try:
            status, content_type, body = owner.handle(split.path, params)
        except Exception as exc:  # noqa: BLE001 - must answer something
            status, content_type, body = (
                500, "text/plain; charset=utf-8",
                f"internal error: {type(exc).__name__}: {exc}\n"
                .encode("utf-8"),
            )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter (scrapes arrive every
        few seconds; the observer must not spam the observed)."""


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "ObservabilityServer"


class ObservabilityServer:
    """Live monitoring endpoints over a session's observability state.

    All sources are optional — endpoints whose source is absent answer
    404, so the same server class backs a bare engine (metrics only),
    a full session (metrics + tracer + ledger + accountant + alerts +
    profiler), and ``repro serve`` over artifacts (a re-loaded ledger
    and a static trace document).

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after :meth:`start`.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        ledger: Optional[PrivacyLedger] = None,
        accountants: Optional[
            Union[PrivacyAccountant, Mapping[str, PrivacyAccountant]]
        ] = None,
        alerts: Optional[AlertEngine] = None,
        profiler: Optional[SamplingProfiler] = None,
        timeseries: Optional[TimeSeriesStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "upa",
        static_trace: Optional[dict] = None,
    ):
        self.metrics = metrics
        self.tracer = tracer
        self.ledger = ledger
        if isinstance(accountants, PrivacyAccountant):
            accountants = {"default": accountants}
        self.accountants: Dict[str, PrivacyAccountant] = dict(
            accountants or {}
        )
        self.alerts = alerts
        self.profiler = profiler
        self.timeseries = timeseries
        self.namespace = namespace
        #: a pre-rendered Chrome trace document served when no live
        #: tracer is attached (``repro serve --trace artifact.json``).
        self.static_trace = static_trace
        self._host = host
        self._requested_port = port
        self._server: Optional[_HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._scrapes = 0

    # -- lifecycle ----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._server is not None:
            return self
        server = _HTTPServer((self._host, self._requested_port), _Handler)
        server.owner = self
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name=f"repro-obs-server:{self.port}",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- routing ------------------------------------------------------
    def handle(self, path: str, params: Dict[str, List[str]]) -> _Response:
        """Dispatch one GET (exposed for in-process tests)."""
        with self._lock:
            self._scrapes += 1
        path = path.rstrip("/") or "/"
        try:
            if path == "/":
                return self._index()
            if path == "/metrics":
                return self._metrics(params)
            if path == "/healthz":
                return self._healthz()
            if path == "/ledger":
                return self._ledger(params)
            if path == "/traces":
                return self._traces(params)
            if path == "/budget":
                return self._budget()
            if path == "/profile":
                return self._profile()
            if path == "/workers":
                return self._workers()
            if path == "/timeseries":
                return self._timeseries(params)
            if path == "/dashboard":
                return self._dashboard(params)
        except _BadParam as exc:
            return _json_response({"error": str(exc)}, status=400)
        return (
            404, "text/plain; charset=utf-8",
            f"no such endpoint: {path}\n".encode("utf-8"),
        )

    # -- endpoints ----------------------------------------------------
    def _index(self) -> _Response:
        available = {
            "/metrics": self.metrics is not None,
            "/healthz": True,
            "/ledger": self.ledger is not None,
            "/traces": (
                self.tracer is not None or self.static_trace is not None
            ),
            "/budget": bool(self.accountants),
            "/profile": self.profiler is not None,
            "/workers": self.metrics is not None,
            "/timeseries": self.timeseries is not None,
            "/dashboard": self.timeseries is not None,
        }
        return _json_response({
            "service": "repro.obs",
            "endpoints": available,
        })

    def _tick_alerts(self) -> None:
        """One metrics tick per scrape: evaluate metric-driven rules.

        When a live time-series store is attached this also drives a
        rate-limited store tick (which in turn evaluates the windowed
        rules through the store's listeners) — so on an idle-but-
        serving session the act of scraping keeps the series, and
        therefore the alert state, fresh between releases.  A store
        rebuilt from an artifact (``metrics is None``) is never ticked:
        replayed history must stay exactly as recorded.
        """
        if (
            self.timeseries is not None
            and self.timeseries.metrics is not None
        ):
            self.timeseries.tick_if_due()
        if self.alerts is not None and self.metrics is not None:
            self.alerts.observe_metrics(self.metrics.snapshot())

    def _extra_prometheus_blocks(self) -> List[List[str]]:
        ns = self.namespace
        blocks: List[List[str]] = []
        for name, accountant in sorted(self.accountants.items()):
            balance = accountant.describe()
            for field in ("total_epsilon", "spent_epsilon",
                          "remaining_epsilon"):
                blocks.append(prometheus_block(
                    f"{ns}_budget_{field}", "gauge",
                    f"Privacy accountant {field.replace('_', ' ')}.",
                    [("", {"accountant": name}, balance[field])],
                ))
        if self.alerts is not None:
            alerts = self.alerts.alerts()
            blocks.append(prometheus_block(
                f"{ns}_alerts_fired_total", "counter",
                "Alert-rule firings since the session started.",
                [("", None, float(len(alerts)))],
            ))
            blocks.append(prometheus_block(
                f"{ns}_health_degraded", "gauge",
                "1 once any alert rule has fired, else 0.",
                [("", None, 1.0 if self.alerts.degraded else 0.0)],
            ))
        with self._lock:
            scrapes = self._scrapes
        blocks.append(prometheus_block(
            f"{ns}_server_requests_total", "counter",
            "Requests served by the introspection server.",
            [("", None, float(scrapes))],
        ))
        return blocks

    def _metrics(self, params: Dict[str, List[str]]) -> _Response:
        if self.metrics is None:
            return (404, "text/plain; charset=utf-8",
                    b"no metrics registry attached\n")
        self._tick_alerts()
        snapshot = self.metrics.snapshot()
        if params.get("format", [""])[0] == "otlp":
            return _json_response(render_otlp_metrics(snapshot))
        body = render_prometheus(
            snapshot, namespace=self.namespace,
            extra_blocks=self._extra_prometheus_blocks(),
        )
        return 200, _PROM_CONTENT_TYPE, body.encode("utf-8")

    def _healthz(self) -> _Response:
        self._tick_alerts()
        degraded = self.alerts is not None and self.alerts.degraded
        payload = {
            "status": "degraded" if degraded else "ok",
            "firing_rules":
                self.alerts.firing_rules() if self.alerts else [],
            "alerts": self.alerts.to_dicts() if self.alerts else [],
        }
        return _json_response(payload, status=503 if degraded else 200)

    def _ledger(self, params: Dict[str, List[str]]) -> _Response:
        if self.ledger is None:
            return (404, "text/plain; charset=utf-8",
                    b"no privacy ledger attached\n")
        entries = self.ledger.entries()
        cursor = _int_param(params, "since")
        if cursor is not None:
            entries = [e for e in entries if e.sequence > cursor]
        n = _int_param(params, "n")
        if n is not None:
            count = max(0, n)
            entries = entries[len(entries) - count:] if count else []
        header = {"format": PrivacyLedger.FORMAT, **self.ledger.header}
        lines = [json.dumps(header, sort_keys=True, default=str)]
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True, default=str)
            for e in entries
        )
        body = "\n".join(lines) + "\n"
        return (200, "application/x-ndjson; charset=utf-8",
                body.encode("utf-8"))

    def _traces(self, params: Dict[str, List[str]]) -> _Response:
        if self.tracer is not None:
            if params.get("format", [""])[0] == "otlp":
                return _json_response(render_otlp_spans(self.tracer))
            return _json_response(self.tracer.to_chrome_trace())
        if self.static_trace is not None:
            return _json_response(self.static_trace)
        return (404, "text/plain; charset=utf-8",
                b"no tracer attached\n")

    def _budget(self) -> _Response:
        if not self.accountants:
            return (404, "text/plain; charset=utf-8",
                    b"no privacy accountant attached\n")
        return _json_response({
            "accountants": {
                name: accountant.describe()
                for name, accountant in self.accountants.items()
            },
        })

    def _profile(self) -> _Response:
        if self.profiler is None:
            return (404, "text/plain; charset=utf-8",
                    b"no profiler attached\n")
        body = self.profiler.collapsed_stacks()
        return 200, "text/plain; charset=utf-8", body.encode("utf-8")

    def _workers(self) -> _Response:
        if self.metrics is None:
            return (404, "text/plain; charset=utf-8",
                    b"no metrics registry attached\n")
        from repro.obs.crossproc import worker_table

        workers = worker_table(self.metrics.snapshot())
        return _json_response({
            "workers": workers,
            "count": len(workers),
        })

    def _timeseries_params(
        self, params: Dict[str, List[str]]
    ) -> Tuple[Optional[List[str]], Optional[float], Optional[float]]:
        raw_series = _str_param(params, "series")
        names = None
        if raw_series:
            names = [s for s in raw_series.split(",") if s.strip()]
        since = _float_param(params, "since")
        step = _float_param(params, "step", positive=True)
        return names, since, step

    def _timeseries(self, params: Dict[str, List[str]]) -> _Response:
        if self.timeseries is None:
            return (404, "text/plain; charset=utf-8",
                    b"no time-series store attached\n")
        names, since, step = self._timeseries_params(params)
        window = _float_param(params, "window", positive=True)
        self._tick_alerts()
        return _json_response(self.timeseries.to_payload(
            series=names, since=since, step=step, rate_window=window,
        ))

    def _dashboard(self, params: Dict[str, List[str]]) -> _Response:
        if self.timeseries is None:
            return (404, "text/plain; charset=utf-8",
                    b"no time-series store attached\n")
        from repro.obs.exporters import render_dashboard

        names, since, step = self._timeseries_params(params)
        refresh = _float_param(params, "refresh")
        if refresh is not None and refresh < 0:
            raise _BadParam(
                f"query parameter 'refresh' must be >= 0, got {refresh!r}"
            )
        if refresh is None:
            refresh = max(2.0, self.timeseries.interval)
        self._tick_alerts()
        html = render_dashboard(
            self.timeseries,
            alerts=self.alerts.to_dicts() if self.alerts else None,
            refresh=refresh or None,
            series=names,
            since=since,
            step=step,
        )
        return 200, "text/html; charset=utf-8", html.encode("utf-8")
