"""Brute-force local sensitivity: the ground truth (Definition II.1).

Evaluates the query on *every* removal neighbour (all |x| of them) and
on a pool of sampled addition neighbours, then takes the extremes.

Naively this is |x| full query evaluations (the paper's "one million
runs" complaint).  Because our queries expose their monoid reducer, the
same exact values are computed in O(|x|) combines with prefix/suffix
folds — this changes the cost, not the values (verified against literal
re-evaluation in tests).  ``neighbour_outputs`` feeds Fig. 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.rng import make_rng
from repro.core.query import MapReduceQuery, Tables
from repro.obs.tracing import trace


@dataclass(frozen=True)
class BruteForceResult:
    """Exact neighbourhood statistics of f around x.

    Attributes:
        output: f(x).
        removal_outputs: f(x - r) for every record r (shape (|x|, d)).
        addition_outputs: f(x + r) for sampled domain records.
        local_sensitivity: max over neighbours y of the L1 distance
            |f(x) - f(y)|  (Definition II.1).
        range_width: L1 width of the neighbour-output envelope,
            sum_j (max_y f_j(y) - min_y f_j(y)) with f(x) included —
            the quantity UPA's inferred output range estimates (the
            blue lines in the paper's Figure 3).
        range_lower/range_upper: the envelope bounds per coordinate.
    """

    output: np.ndarray
    removal_outputs: np.ndarray
    addition_outputs: np.ndarray
    local_sensitivity: float
    range_width: float
    range_lower: np.ndarray
    range_upper: np.ndarray

    @property
    def neighbour_outputs(self) -> np.ndarray:
        if self.addition_outputs.size == 0:
            return self.removal_outputs
        return np.vstack([self.removal_outputs, self.addition_outputs])


def exact_local_sensitivity(
    query: MapReduceQuery,
    tables: Tables,
    addition_samples: int = 0,
    seed: int = 0,
    max_removals: Optional[int] = None,
) -> BruteForceResult:
    """Compute the exact neighbourhood of f around x.

    Args:
        addition_samples: how many "+1 record" neighbours to include
            (the removal side is always exhaustive).
        max_removals: optionally cap the removal neighbours (useful in
            quick tests); None = all records.
    """
    with trace("baseline.bruteforce", query=query.name,
               addition_samples=addition_samples):
        return _exact_local_sensitivity(
            query, tables, addition_samples, seed, max_removals
        )


def _exact_local_sensitivity(
    query: MapReduceQuery,
    tables: Tables,
    addition_samples: int,
    seed: int,
    max_removals: Optional[int],
) -> BruteForceResult:
    aux = query.build_aux(tables)
    records = tables[query.protected_table]
    mapped = query.map_batch(records, aux)

    full_agg = query.fold_batch(mapped)
    output = query.finalize(full_agg, aux)

    # Batched prefix/suffix folds: fold(mapped minus i) for all i in one
    # vectorized pass (O(N) combines; same values as literal re-folds).
    n_removals = len(records)
    if max_removals is not None:
        n_removals = min(n_removals, max_removals)
    if n_removals > 0:
        all_but_one = query.prefix_suffix_batch(mapped)
        removal_outputs = np.asarray(
            query.finalize_batch(all_but_one, aux), dtype=float
        )[:n_removals]
    else:
        removal_outputs = np.empty((0, query.output_dim))

    rng = make_rng(seed, "bruteforce-additions")
    added_records: List = [
        query.sample_domain_record(rng, tables)
        for _ in range(addition_samples)
    ]
    if added_records:
        extras = query.map_batch(added_records, aux)
        addition_outputs = np.asarray(
            query.finalize_batch(query.combine_batch(full_agg, extras), aux),
            dtype=float,
        )
    else:
        addition_outputs = np.empty((0, query.output_dim))

    neighbours = (
        np.vstack([removal_outputs, addition_outputs])
        if addition_outputs.size
        else removal_outputs
    )
    if neighbours.size == 0:
        raise ValueError("dataset has no neighbours to evaluate")

    deltas = np.abs(neighbours - output).sum(axis=1)
    local_sensitivity = float(deltas.max())

    everything = np.vstack([neighbours, output.reshape(1, -1)])
    range_lower = everything.min(axis=0)
    range_upper = everything.max(axis=0)
    range_width = float(np.sum(range_upper - range_lower))

    return BruteForceResult(
        output=output,
        removal_outputs=removal_outputs,
        addition_outputs=addition_outputs,
        local_sensitivity=local_sensitivity,
        range_width=range_width,
        range_lower=range_lower,
        range_upper=range_upper,
    )


def literal_local_sensitivity(
    query: MapReduceQuery, tables: Tables, max_removals: Optional[int] = None
) -> float:
    """Definition II.1 by literally re-running the query per neighbour.

    O(N^2); only for small test datasets, to validate the prefix/suffix
    implementation above.
    """
    records = tables[query.protected_table]
    output = query.output(tables)
    n = len(records) if max_removals is None else min(len(records), max_removals)
    worst = 0.0
    for i in range(n):
        reduced = dict(tables)
        reduced[query.protected_table] = records[:i] + records[i + 1:]
        neighbour = query.output(reduced)
        worst = max(worst, float(np.abs(neighbour - output).sum()))
    return worst
