"""Comparison systems: brute-force ground truth and FLEX.

* :mod:`repro.baselines.bruteforce` — exact local sensitivity by
  evaluating the query on every neighbouring dataset (Definition II.1);
  the ground truth for Fig. 2(a)/Fig. 3.
* :mod:`repro.baselines.flex` — FLEX's static elastic-sensitivity
  analysis over SQL logical plans, as the paper describes it
  (section II-B): multiplies the max frequencies of join-key columns
  and ignores filters; supports counting queries only.
"""

from repro.baselines.bruteforce import BruteForceResult, exact_local_sensitivity
from repro.baselines.flex import FlexAnalysis, flex_local_sensitivity

__all__ = [
    "BruteForceResult",
    "FlexAnalysis",
    "exact_local_sensitivity",
    "flex_local_sensitivity",
]
