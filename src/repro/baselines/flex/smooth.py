"""FLEX's smooth sensitivity (elastic sensitivity, beta-smoothed).

FLEX bounds local sensitivity at Hamming distance k by **elastic
stability**: each join-key max frequency can grow by at most k when k
records are added, so

    S(k) = prod_i (mf_i + k)

and the beta-smooth sensitivity is ``max_k exp(-beta k) S(k)`` (Nissim
et al.).  UPA only needs local sensitivity (k = 0), but the paper
mentions FLEX computes both, so the reproduction includes it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.common.errors import DPError


def elastic_stability(max_frequencies: Sequence[int], k: int) -> float:
    """prod_i (mf_i + k); 1.0 for a join-free count."""
    if k < 0:
        raise DPError(f"distance k must be non-negative, got {k}")
    product = 1.0
    for mf in max_frequencies:
        product *= max(1, mf) + k
    return product


def flex_smooth_sensitivity(
    max_frequencies: Sequence[int],
    beta: float,
    max_distance: int = 10_000,
) -> float:
    """max_k exp(-beta k) * S(k), searched up to ``max_distance``.

    The objective is unimodal in k (log is concave difference), so the
    scan stops once the value starts decreasing.
    """
    if beta <= 0:
        raise DPError(f"beta must be positive, got {beta}")
    best = 0.0
    previous = -math.inf
    for k in range(max_distance + 1):
        value = math.exp(-beta * k) * elastic_stability(max_frequencies, k)
        if value < previous:
            break
        best = max(best, value)
        previous = value
    return best
