"""FLEX's static sensitivity analysis over logical plans.

Support check (UPA paper, Table II): the plan must be a single global
``COUNT(*)`` (or ``COUNT(col)``) over a tree of Scan / Filter / Project
/ Join operators.  Grouping, non-count aggregates (SUM/AVG/MIN/MAX),
and non-SQL queries are unsupported.

Sensitivity rule (UPA paper, section II-B): for each join the analysis
"multiplies the frequencies of the most frequently-occurring item from
each of the two columns, because removing a record from the dataset can
at most affect such a number of joined records"; with multiple joins
the per-join worst cases multiply — which is exactly where the paper
shows FLEX's error magnifying (TPCH16, TPCH21).  Filters are ignored.
Semi/anti joins (EXISTS / NOT IN) are analyzed like joins: FLEX bounds
how many surviving rows one record can influence through the match
column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import FlexUnsupportedError
from repro.sql.expr import Column, Expression
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)
from repro.baselines.flex.metadata import TableMetadata


@dataclass
class FlexAnalysis:
    """Result of FLEX's static analysis.

    Attributes:
        sensitivity: the inferred local sensitivity of the count.
        factors: human-readable per-join factors (for reports/tests).
        ignored_filters: filter predicates the analysis skipped.
    """

    sensitivity: float
    factors: List[str] = field(default_factory=list)
    ignored_filters: List[str] = field(default_factory=list)


def flex_local_sensitivity(
    plan: LogicalPlan, tables: Dict[str, list]
) -> FlexAnalysis:
    """Analyze a counting query's plan against base-table metadata.

    Raises:
        FlexUnsupportedError: for any query outside FLEX's fragment.
    """
    from repro.obs.tracing import trace

    with trace("baseline.flex"):
        metadata = TableMetadata(tables)
        aggregate = _find_count_aggregate(plan)
        analysis = FlexAnalysis(sensitivity=1.0)
        _walk(aggregate.child, metadata, analysis)
        return analysis


def flex_fragment_reason(plan: LogicalPlan) -> Optional[str]:
    """Why FLEX's fragment rejects ``plan`` — None if it is supported.

    Runs the same structural checks as :func:`flex_local_sensitivity`
    (single global COUNT, Scan/Filter/Project/Join operators,
    raw-column join keys rooted in base tables) but without column
    metadata, so it needs no data.  The static analyzer's UPA103
    cross-check uses this to keep every workload's declared
    ``flex_supported`` flag honest.
    """
    try:
        aggregate = _find_count_aggregate(plan)
        _walk(aggregate.child, None, FlexAnalysis(sensitivity=1.0))
    except FlexUnsupportedError as exc:
        return str(exc)
    return None


def _find_count_aggregate(plan: LogicalPlan) -> Aggregate:
    """Locate the single global COUNT; reject anything else."""
    node = plan
    while isinstance(node, (Project, Sort, Limit)):
        node = node.children()[0]
    if not isinstance(node, Aggregate):
        raise FlexUnsupportedError(
            "FLEX supports only counting queries; no aggregate found"
        )
    if node.group_exprs:
        raise FlexUnsupportedError("FLEX does not support GROUP BY")
    if len(node.aggregates) != 1:
        raise FlexUnsupportedError(
            "FLEX supports a single COUNT aggregate per query"
        )
    spec = node.aggregates[0]
    if spec.func != "count":
        raise FlexUnsupportedError(
            f"FLEX supports COUNT only, not {spec.func.upper()} "
            "(arithmetic and ML queries are out of scope)"
        )
    return node


def _walk(node: LogicalPlan, metadata: Optional[TableMetadata],
          analysis: FlexAnalysis) -> None:
    if isinstance(node, Scan):
        return
    if isinstance(node, Filter):
        analysis.ignored_filters.append(repr(node.condition))
        _walk(node.child, metadata, analysis)
        return
    if isinstance(node, (Project, Distinct)):
        _walk(node.children()[0], metadata, analysis)
        return
    if isinstance(node, Join):
        for left_key, right_key in node.keys:
            left_mf = _key_max_frequency(left_key, node.left, metadata)
            right_mf = _key_max_frequency(right_key, node.right, metadata)
            factor = max(1, left_mf) * max(1, right_mf)
            analysis.sensitivity *= factor
            analysis.factors.append(
                f"join[{node.how}] {left_key!r} (mf={left_mf}) x "
                f"{right_key!r} (mf={right_mf}) -> {factor}"
            )
        _walk(node.left, metadata, analysis)
        _walk(node.right, metadata, analysis)
        return
    raise FlexUnsupportedError(
        f"FLEX cannot analyze operator {type(node).__name__}"
    )


def _key_max_frequency(
    key: Expression, side: LogicalPlan, metadata: Optional[TableMetadata]
) -> int:
    """Max frequency of a join-key column in its *base* table.

    FLEX's metadata is per raw column; computed join keys are outside
    its fragment.  With ``metadata=None`` (fragment check only) the
    structural requirements are still enforced and 1 is returned.
    """
    if not isinstance(key, Column):
        raise FlexUnsupportedError(
            f"FLEX supports only raw-column join keys, got {key!r}"
        )
    scan = _scan_providing(side, key.name)
    if scan is None:
        raise FlexUnsupportedError(
            f"join key {key.name!r} does not come from a base table"
        )
    if metadata is None:
        return 1
    return metadata.max_frequency(scan.table_name, key.name)


def _scan_providing(node: LogicalPlan, column: str) -> Optional[Scan]:
    if isinstance(node, Scan):
        return node if node.schema.has(column) else None
    for child in node.children():
        if child.schema.has(column):
            found = _scan_providing(child, column)
            if found is not None:
                return found
    return None
