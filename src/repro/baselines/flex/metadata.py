"""Dataset metadata FLEX consumes: per-column maximum frequencies.

FLEX never looks at query results — only at precomputed metadata of the
*base* tables (the paper: "an input dataset's metadata, e.g. number of
data records in each input column").  This module computes and caches
that metadata.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List

Row = Dict[str, Any]


def max_frequency(rows: List[Row], column: str) -> int:
    """Count of the most frequent value in ``column`` (0 for no rows)."""
    if not rows:
        return 0
    counts: Counter = Counter(row[column] for row in rows)
    return max(counts.values())


@dataclass
class TableMetadata:
    """Cached max-frequency metadata for one catalog of tables."""

    tables: Dict[str, List[Row]]
    _cache: Dict[tuple, int] = field(default_factory=dict)

    def max_frequency(self, table: str, column: str) -> int:
        key = (table, column)
        if key not in self._cache:
            try:
                rows = self.tables[table]
            except KeyError:
                raise KeyError(
                    f"no metadata for table {table!r}; have {sorted(self.tables)}"
                ) from None
            self._cache[key] = max_frequency(rows, column)
        return self._cache[key]
