"""FLEX baseline (Johnson, Near, Song — "Towards Practical Differential
Privacy for SQL Queries", VLDB 2018), as characterized by the UPA paper.

FLEX statically analyzes a counting query's plan: the local sensitivity
of a count over joins is bounded by multiplying the **maximum
frequency** (most-frequent-value count) of each join-key column, taken
from dataset metadata.  Filters and actual join-key overlap are ignored
— the two inaccuracy sources the UPA paper dissects in section II-B.
Only Select/Filter/Join/Count queries are supported; everything else
raises :class:`repro.common.errors.FlexUnsupportedError`.
"""

from repro.baselines.flex.analysis import FlexAnalysis, flex_local_sensitivity
from repro.baselines.flex.metadata import TableMetadata, max_frequency
from repro.baselines.flex.smooth import elastic_stability, flex_smooth_sensitivity

__all__ = [
    "FlexAnalysis",
    "TableMetadata",
    "elastic_stability",
    "flex_local_sensitivity",
    "flex_smooth_sensitivity",
    "max_frequency",
]
