"""Reproduction of UPA (DSN 2020): automated, accurate, efficient iDP.

Li et al., "UPA: An Automated, Accurate and Efficient Differentially
Private Big-data Mining System", DSN 2020.

Public surface:

* :class:`repro.core.UPASession` — run any MapReduce query under
  epsilon-iDP with automatically inferred local sensitivity.
* :func:`repro.core.dpobject.dpread` + ``DPObject``/``DPObjectKV`` —
  the paper's Table I operator API.
* :class:`repro.engine.EngineContext` — the MapReduce engine substrate.
* :class:`repro.sql.SQLSession` — the SQL/DataFrame layer.
* :mod:`repro.workloads` — the paper's nine evaluated queries.
* :mod:`repro.baselines` — FLEX and brute-force comparators.
"""

from repro._version import __version__
from repro.common.release import declassify
from repro.core import MapReduceQuery, UPAConfig, UPAResult, UPASession
from repro.core.dpobject import DPObject, DPObjectKV, dpread
from repro.engine import EngineContext
from repro.sql import SQLSession

__all__ = [
    "DPObject",
    "DPObjectKV",
    "EngineContext",
    "MapReduceQuery",
    "SQLSession",
    "UPAConfig",
    "UPAResult",
    "UPASession",
    "declassify",
    "dpread",
    "__version__",
]
