"""Physical execution: compile logical plans onto engine RDDs.

Each logical node maps to one or a few RDD transformations; joins and
aggregations become shuffles, so the engine's metrics directly reflect
the plan's shuffle structure (which the Fig. 2(b) benchmark reports).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.engine.rdd import RDD
from repro.sql.expr import Expression, Row
from repro.sql.functions import AggregateSpec
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)


class Executor:
    """Compiles logical plans to RDDs against a catalog."""

    def __init__(self, session):
        self._session = session

    def execute(self, plan: LogicalPlan) -> RDD:
        """Compile ``plan`` into an RDD of dict rows."""
        if isinstance(plan, Scan):
            return self._session.catalog.rdd(plan.table_name)
        if isinstance(plan, Filter):
            condition = plan.condition
            return self.execute(plan.child).filter(
                lambda row: bool(condition.eval(row))
            )
        if isinstance(plan, Project):
            return self._execute_project(plan)
        if isinstance(plan, Join):
            return self._execute_join(plan)
        if isinstance(plan, Aggregate):
            return self._execute_aggregate(plan)
        if isinstance(plan, Sort):
            return self._execute_sort(plan)
        if isinstance(plan, Limit):
            taken = self.execute(plan.child).take(plan.n)
            return self._session.engine.parallelize(taken, 1)
        if isinstance(plan, Distinct):
            return self._execute_distinct(plan)
        if isinstance(plan, Union):
            rdds = [self.execute(child) for child in plan.inputs]
            return self._session.engine.union(rdds)
        raise AnalysisError(f"no physical operator for {type(plan).__name__}")

    # ------------------------------------------------------------------

    def _execute_project(self, plan: Project) -> RDD:
        exprs: List[Tuple[str, Expression]] = [
            (e.output_name(), e) for e in plan.exprs
        ]

        def project_row(row: Row) -> Row:
            return {name: expr.eval(row) for name, expr in exprs}

        return self.execute(plan.child).map(project_row)

    def _execute_join(self, plan: Join) -> RDD:
        left_keys = [k for k, _ in plan.keys]
        right_keys = [k for _, k in plan.keys]
        left_rdd = self.execute(plan.left).map(
            lambda row: (tuple(k.eval(row) for k in left_keys), row)
        )
        right_rdd = self.execute(plan.right).map(
            lambda row: (tuple(k.eval(row) for k in right_keys), row)
        )
        residual = plan.residual
        prefix = Join.RESIDUAL_RIGHT_PREFIX

        if plan.how == "inner":
            overlap = set(plan.left.schema.names) & set(plan.right.schema.names)
            if overlap:
                raise AnalysisError(
                    f"inner join output column collision: {sorted(overlap)}; "
                    "project/rename before joining"
                )

            def merge(kv):
                _key, (left_row, right_row) = kv
                merged = dict(left_row)
                merged.update(right_row)
                return merged

            joined = left_rdd.join(right_rdd).map(merge)
            if residual is not None:
                joined = joined.filter(lambda row: bool(residual.eval(row)))
            return joined

        if plan.how == "left":
            right_names = plan.right.schema.names

            def merge_left(kv):
                _key, (left_row, right_row) = kv
                merged = dict(left_row)
                if right_row is None:
                    merged.update({n: None for n in right_names})
                else:
                    merged.update(right_row)
                return merged

            return left_rdd.left_outer_join(right_rdd).map(merge_left)

        # semi / anti, possibly with a residual condition.
        want_match = plan.how == "semi"

        def matches(left_row: Row, right_rows: Sequence[Row]) -> bool:
            if residual is None:
                return bool(right_rows)
            for right_row in right_rows:
                candidate = dict(left_row)
                for name, value in right_row.items():
                    candidate[prefix + name] = value
                if residual.eval(candidate):
                    return True
            return False

        def emit(kvw):
            _key, (left_rows, right_rows) = kvw
            for left_row in left_rows:
                if matches(left_row, right_rows) == want_match:
                    yield left_row

        return left_rdd.cogroup(right_rdd).flat_map(emit)

    def _execute_aggregate(self, plan: Aggregate) -> RDD:
        child = self.execute(plan.child)
        specs = plan.aggregates
        group_exprs = plan.group_exprs

        def init(row: Row) -> List[Any]:
            return [spec.add(spec.zero(), row) for spec in specs]

        def add(acc: List[Any], row: Row) -> List[Any]:
            return [spec.add(a, row) for spec, a in zip(specs, acc)]

        def merge(a: List[Any], b: List[Any]) -> List[Any]:
            return [spec.merge(x, y) for spec, x, y in zip(specs, a, b)]

        if not group_exprs:
            acc = child.aggregate([spec.zero() for spec in specs], add, merge)
            row = {
                spec.alias: spec.finish(value) for spec, value in zip(specs, acc)
            }
            return self._session.engine.parallelize([row], 1)

        group_names = [e.output_name() for e in group_exprs]

        def to_output(kv) -> Row:
            key, acc = kv
            row = dict(zip(group_names, key))
            for spec, value in zip(specs, acc):
                row[spec.alias] = spec.finish(value)
            return row

        keyed = child.map(
            lambda row: (tuple(e.eval(row) for e in group_exprs), row)
        )
        return keyed.combine_by_key(init, add, merge).map(to_output)

    def _execute_sort(self, plan: Sort) -> RDD:
        child = self.execute(plan.child)
        orders = plan.orders
        directions = {asc for _e, asc in orders}
        if len(directions) == 1:
            ascending = directions.pop()
            return child.sort_by(
                lambda row: tuple(e.eval(row) for e, _a in orders),
                ascending=ascending,
            )
        # Mixed directions: stable multi-pass sort on the driver.  Sorts
        # sit above aggregations in our workloads, so inputs are small.
        rows = child.collect()
        for expr, ascending in reversed(orders):
            rows.sort(key=lambda row, _e=expr: _e.eval(row), reverse=not ascending)
        return self._session.engine.parallelize(rows, 1)

    def _execute_distinct(self, plan: Distinct) -> RDD:
        names = plan.schema.names

        def to_tuple(row: Row) -> Tuple[Any, ...]:
            return tuple(row[n] for n in names)

        def to_row(values: Tuple[Any, ...]) -> Row:
            return dict(zip(names, values))

        return self.execute(plan.child).map(to_tuple).distinct().map(to_row)
