"""SQLSession: catalog + engine + optimizer + parser in one handle."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.common.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.sql.catalog import Catalog
from repro.sql.dataframe import DataFrame
from repro.sql.logical import LogicalPlan, Scan
from repro.sql.optimizer import optimize
from repro.sql.physical import Executor
from repro.sql.types import Schema


class SQLSession:
    """Entry point to the SQL layer.

    Example:
        >>> sess = SQLSession()
        >>> sess.create_table("t", [{"a": 1, "b": 2}])
        >>> sess.table("t").select("a").collect()
        [{'a': 1}]
    """

    def __init__(
        self,
        engine: Optional[EngineContext] = None,
        config: Optional[EngineConfig] = None,
        enable_optimizer: bool = True,
    ):
        self.engine = engine or EngineContext(config)
        self.catalog = Catalog(self.engine)
        self.executor = Executor(self)
        self.enable_optimizer = enable_optimizer

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        rows: Sequence[Dict[str, Any]],
        schema: Optional[Schema] = None,
    ) -> DataFrame:
        """Register in-memory rows as a named table."""
        self.catalog.register(name, rows, schema)
        return self.table(name)

    def table(self, name: str) -> DataFrame:
        """DataFrame scanning a registered table."""
        table = self.catalog.table(name)
        return DataFrame(self, Scan(name, table.schema))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def optimize_plan(self, plan: LogicalPlan) -> LogicalPlan:
        return optimize(plan) if self.enable_optimizer else plan

    def execute_plan(self, plan: LogicalPlan) -> RDD:
        return self.executor.execute(self.optimize_plan(plan))

    def sql(self, text: str) -> DataFrame:
        """Parse SQL text into a DataFrame (subset grammar, see parser)."""
        from repro.sql.parser import parse_sql

        return DataFrame(self, parse_sql(text, self))
