"""SQLSession: catalog + engine + optimizer + parser in one handle."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence

from repro.common.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.metrics import MetricsRegistry
from repro.engine.rdd import RDD
from repro.sql.catalog import Catalog
from repro.sql.compiler import plan_fingerprint
from repro.sql.dataframe import DataFrame
from repro.sql.logical import LogicalPlan, Scan
from repro.sql.optimizer import optimize
from repro.sql.physical import Executor
from repro.sql.types import Schema

#: default cardinality (rows) below which a join side is broadcast.
DEFAULT_BROADCAST_JOIN_THRESHOLD = 10_000


class SQLSession:
    """Entry point to the SQL layer.

    Example:
        >>> sess = SQLSession()
        >>> sess.create_table("t", [{"a": 1, "b": 2}])
        >>> sess.table("t").select("a").collect()
        [{'a': 1}]

    ``compile_expressions`` selects the compiled + fused executor
    (default) or the interpreted row-at-a-time baseline.
    ``broadcast_join_threshold`` caps the estimated build-side rows for
    broadcast hash joins; 0 disables them (every join shuffles, and the
    shuffle's deterministic grouping fixes row order — the sqlbridge
    static path relies on that for bitwise stability).

    Physical plans are cached per canonical plan fingerprint, so the
    ~2n neighbour replays of a single query compile once; hit/miss
    counts land in ``engine.metrics`` under ``sql.plan_cache.*``.
    """

    def __init__(
        self,
        engine: Optional[EngineContext] = None,
        config: Optional[EngineConfig] = None,
        enable_optimizer: bool = True,
        compile_expressions: bool = True,
        broadcast_join_threshold: int = DEFAULT_BROADCAST_JOIN_THRESHOLD,
        plan_cache_size: int = 128,
    ):
        self.engine = engine or EngineContext(config)
        self.catalog = Catalog(self.engine)
        self.executor = Executor(self)
        self.enable_optimizer = enable_optimizer
        self.compile_expressions = compile_expressions
        self.broadcast_join_threshold = broadcast_join_threshold
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[tuple, RDD]" = OrderedDict()

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        rows: Sequence[Dict[str, Any]],
        schema: Optional[Schema] = None,
        columnar: bool = False,
    ) -> DataFrame:
        """Register in-memory rows as a named table.

        ``columnar=True`` stores the table as per-column buffers; the
        compiled executor then runs supported filters vectorized over
        whole blocks, boxing only the surviving rows into dicts.
        Results are identical either way — it is purely a layout and
        execution-strategy choice.
        """
        self.catalog.register(name, rows, schema, columnar=columnar)
        return self.table(name)

    def table(self, name: str) -> DataFrame:
        """DataFrame scanning a registered table."""
        table = self.catalog.table(name)
        return DataFrame(self, Scan(name, table.schema))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def optimize_plan(self, plan: LogicalPlan) -> LogicalPlan:
        return optimize(plan) if self.enable_optimizer else plan

    def execute_plan(self, plan: LogicalPlan) -> RDD:
        key = self._plan_cache_key(plan)
        if key is not None:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self.engine.metrics.incr(MetricsRegistry.SQL_PLAN_CACHE_HITS)
                return cached
            self.engine.metrics.incr(MetricsRegistry.SQL_PLAN_CACHE_MISSES)
        rdd = self.executor.execute(self.optimize_plan(plan))
        if key is not None:
            self._plan_cache[key] = rdd
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
                self.engine.metrics.incr(
                    MetricsRegistry.SQL_PLAN_CACHE_EVICTIONS
                )
        return rdd

    def _plan_cache_key(self, plan: LogicalPlan) -> Optional[tuple]:
        if self.plan_cache_size <= 0:
            return None
        fingerprint = plan_fingerprint(plan)
        # opaque nodes fingerprint by object identity; caching on a
        # recyclable id() could alias two different plans.
        if "(opaque" in fingerprint:
            return None
        return (
            self.catalog.version,
            self.enable_optimizer,
            self.compile_expressions,
            self.broadcast_join_threshold,
            fingerprint,
        )

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    def sql(self, text: str) -> DataFrame:
        """Parse SQL text into a DataFrame (subset grammar, see parser)."""
        from repro.sql.parser import parse_sql

        return DataFrame(self, parse_sql(text, self))
