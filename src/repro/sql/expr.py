"""Expression AST for the SQL layer.

Expressions evaluate against dict rows.  SQL NULL is Python ``None``
with simplified three-valued logic: comparisons involving ``None``
evaluate to ``False`` and arithmetic involving ``None`` yields ``None``.
This matches how the TPC-H workloads use NULLs (they never branch on a
NULL comparison being unknown-vs-false).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AnalysisError

Row = Dict[str, Any]


class Expression:
    """Base expression node.

    Supports Python operator overloading so query code reads naturally:
    ``(col("a") + 1 < col("b")) & col("c").like("x%")``.
    """

    def eval(self, row: Row) -> Any:
        raise NotImplementedError

    def compiled(self) -> Callable[[Row], Any]:
        """A codegen'd closure evaluating this expression (see
        :mod:`repro.sql.compiler`).  Semantically identical to ``eval``
        but without per-row AST interpretation — use it whenever the
        same expression is applied in a loop."""
        from repro.sql.compiler import compile_expression

        return compile_expression(self)

    def references(self) -> Set[str]:
        """Column names this expression reads (for pruning/pushdown)."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    # -- naming --------------------------------------------------------

    def alias(self, name: str) -> "Alias":
        return Alias(self, name)

    def output_name(self) -> str:
        """Name this expression produces in a projection."""
        return repr(self)

    # -- operator sugar -------------------------------------------------

    def _bin(self, op: str, other: Any, swap: bool = False) -> "BinaryOp":
        other_expr = other if isinstance(other, Expression) else Literal(other)
        if swap:
            return BinaryOp(op, other_expr, self)
        return BinaryOp(op, self, other_expr)

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, swap=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, swap=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, swap=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, swap=True)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("=", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._bin("<>", other)

    def __lt__(self, other):
        return self._bin("<", other)

    def __le__(self, other):
        return self._bin("<=", other)

    def __gt__(self, other):
        return self._bin(">", other)

    def __ge__(self, other):
        return self._bin(">=", other)

    def __and__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __invert__(self):
        return UnaryOp("not", self)

    def __neg__(self):
        return UnaryOp("-", self)

    def __hash__(self):
        return id(self)

    # -- SQL-flavoured helpers -------------------------------------------

    def like(self, pattern: str) -> "LikeOp":
        return LikeOp(self, pattern, negated=False)

    def not_like(self, pattern: str) -> "LikeOp":
        return LikeOp(self, pattern, negated=True)

    def isin(self, values: Iterable[Any]) -> "InOp":
        return InOp(self, list(values), negated=False)

    def not_in(self, values: Iterable[Any]) -> "InOp":
        return InOp(self, list(values), negated=True)

    def between(self, low: Any, high: Any) -> "Expression":
        return (self >= low) & (self <= high)

    def is_null(self) -> "IsNullOp":
        return IsNullOp(self, negated=False)

    def is_not_null(self) -> "IsNullOp":
        return IsNullOp(self, negated=True)


class Column(Expression):
    """Reference to a column by name."""

    def __init__(self, name: str):
        self.name = name

    def eval(self, row: Row) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise AnalysisError(
                f"column {self.name!r} not in row with columns {sorted(row)}"
            ) from None

    def references(self) -> Set[str]:
        return {self.name}

    def output_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return self.name


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value

    def eval(self, row: Row) -> Any:
        return self.value

    def references(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return repr(self.value)


_ARITH_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_CMP_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class BinaryOp(Expression):
    """Arithmetic, comparison, or boolean connective."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH_OPS and op not in _CMP_OPS and op not in ("and", "or"):
            raise AnalysisError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Row) -> Any:
        if self.op == "and":
            return bool(self.left.eval(row)) and bool(self.right.eval(row))
        if self.op == "or":
            return bool(self.left.eval(row)) or bool(self.right.eval(row))
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if self.op in _CMP_OPS:
            if lhs is None or rhs is None:
                return False
            return _CMP_OPS[self.op](lhs, rhs)
        if lhs is None or rhs is None:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    """``not`` or numeric negation."""

    def __init__(self, op: str, operand: Expression):
        if op not in ("not", "-"):
            raise AnalysisError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def eval(self, row: Row) -> Any:
        value = self.operand.eval(row)
        if self.op == "not":
            return not bool(value)
        if value is None:
            return None
        return -value

    def references(self) -> Set[str]:
        return self.operand.references()

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


class LikeOp(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards."""

    def __init__(self, operand: Expression, pattern: str, negated: bool):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        self._compiled = re.compile(f"^{regex}$", re.DOTALL)

    def eval(self, row: Row) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return False
        matched = self._compiled.match(str(value)) is not None
        return matched != self.negated

    def references(self) -> Set[str]:
        return self.operand.references()

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        kw = "not like" if self.negated else "like"
        return f"({self.operand!r} {kw} {self.pattern!r})"


class InOp(Expression):
    """SQL IN over a literal value list."""

    def __init__(self, operand: Expression, values: List[Any], negated: bool):
        self.operand = operand
        self.values = values
        self.negated = negated
        try:
            self._value_set = set(values)
        except TypeError:
            self._value_set = None  # unhashable values: fall back to list scan

    def eval(self, row: Row) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return False
        members = self._value_set if self._value_set is not None else self.values
        return (value in members) != self.negated

    def references(self) -> Set[str]:
        return self.operand.references()

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        kw = "not in" if self.negated else "in"
        return f"({self.operand!r} {kw} {self.values!r})"


class IsNullOp(Expression):
    """SQL IS [NOT] NULL."""

    def __init__(self, operand: Expression, negated: bool):
        self.operand = operand
        self.negated = negated

    def eval(self, row: Row) -> Any:
        return (self.operand.eval(row) is None) != self.negated

    def references(self) -> Set[str]:
        return self.operand.references()

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        kw = "is not null" if self.negated else "is null"
        return f"({self.operand!r} {kw})"


class CaseWhen(Expression):
    """SQL ``CASE WHEN cond THEN value [...] [ELSE default] END``.

    Branches are evaluated in order; with no match and no ELSE the
    result is NULL (None).
    """

    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        default: Optional[Expression] = None,
    ):
        if not branches:
            raise AnalysisError("CASE needs at least one WHEN branch")
        self.branches = list(branches)
        self.default = default

    def eval(self, row: Row) -> Any:
        for condition, value in self.branches:
            if condition.eval(row):
                return value.eval(row)
        if self.default is not None:
            return self.default.eval(row)
        return None

    def references(self) -> Set[str]:
        refs: Set[str] = set()
        for condition, value in self.branches:
            refs |= condition.references() | value.references()
        if self.default is not None:
            refs |= self.default.references()
        return refs

    def children(self) -> Sequence[Expression]:
        kids: List[Expression] = []
        for condition, value in self.branches:
            kids.extend((condition, value))
        if self.default is not None:
            kids.append(self.default)
        return tuple(kids)

    def __repr__(self) -> str:
        inner = " ".join(
            f"when {c!r} then {v!r}" for c, v in self.branches
        )
        tail = f" else {self.default!r}" if self.default is not None else ""
        return f"(case {inner}{tail} end)"


class FuncCall(Expression):
    """Scalar function call (registered in ``SCALAR_FUNCTIONS``)."""

    def __init__(self, name: str, args: Sequence[Expression]):
        key = name.lower()
        if key not in SCALAR_FUNCTIONS:
            raise AnalysisError(f"unknown scalar function {name!r}")
        self.name = key
        self.args = list(args)
        self._impl = SCALAR_FUNCTIONS[key]

    def eval(self, row: Row) -> Any:
        return self._impl(*[arg.eval(row) for arg in self.args])

    def references(self) -> Set[str]:
        refs: Set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def children(self) -> Sequence[Expression]:
        return tuple(self.args)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


def _null_safe(f: Callable) -> Callable:
    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return f(*args)

    return wrapper


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "abs": _null_safe(abs),
    "round": _null_safe(round),
    "length": _null_safe(len),
    "lower": _null_safe(lambda s: s.lower()),
    "upper": _null_safe(lambda s: s.upper()),
    "substring": _null_safe(lambda s, start, n: s[start - 1 : start - 1 + n]),
    "year": _null_safe(lambda d: d.year),
    "month": _null_safe(lambda d: d.month),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
}


class Alias(Expression):
    """Give an expression an output column name."""

    def __init__(self, child: Expression, name: str):
        self.child = child
        self.name = name

    def eval(self, row: Row) -> Any:
        return self.child.eval(row)

    def references(self) -> Set[str]:
        return self.child.references()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def output_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{self.child!r} AS {self.name}"


def col(name: str) -> Column:
    """Shorthand for a column reference."""
    return Column(name)


def lit(value: Any) -> Literal:
    """Shorthand for a literal."""
    return Literal(value)


def split_conjuncts(expr: Expression) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def combine_conjuncts(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild a single AND expression (None for an empty list)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result, conjunct)
    return result
