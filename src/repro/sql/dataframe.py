"""DataFrame: the fluent builder over logical plans.

Mirrors the shape of Spark's DataFrame API: transformations build a new
DataFrame with a bigger plan; ``collect``/``count`` execute through the
session's optimizer and physical executor.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import AnalysisError
from repro.engine.rdd import RDD
from repro.sql.expr import Column, Expression, col
from repro.sql.functions import AggregateSpec
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
)

OnClause = Union[str, Sequence[str], Sequence[Tuple[Expression, Expression]]]


def _as_expr(item: Union[str, Expression]) -> Expression:
    return col(item) if isinstance(item, str) else item


class DataFrame:
    """A logical plan plus the session that can run it."""

    def __init__(self, session, plan: LogicalPlan):
        self.session = session
        self.plan = plan

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    @property
    def schema(self):
        return self.plan.schema

    @property
    def columns(self) -> List[str]:
        return self.plan.schema.names

    def filter(self, condition: Expression) -> "DataFrame":
        """Rows where ``condition`` holds (aka ``where``)."""
        return DataFrame(self.session, Filter(self.plan, condition))

    where = filter

    def select(self, *exprs: Union[str, Expression]) -> "DataFrame":
        """Project the given columns / expressions."""
        if not exprs:
            raise AnalysisError("select needs at least one expression")
        return DataFrame(
            self.session, Project(self.plan, [_as_expr(e) for e in exprs])
        )

    def with_column(self, name: str, expr: Expression) -> "DataFrame":
        """Append (or replace) one computed column."""
        kept = [col(n) for n in self.columns if n != name]
        return DataFrame(
            self.session, Project(self.plan, kept + [expr.alias(name)])
        )

    def join(
        self,
        other: "DataFrame",
        on: OnClause,
        how: str = "inner",
        residual: Optional[Expression] = None,
    ) -> "DataFrame":
        """Equi-join with ``other``.

        ``on`` may be a column name (same on both sides), a list of such
        names, or a list of ``(left_expr, right_expr)`` pairs.  See
        :class:`repro.sql.logical.Join` for ``residual`` semantics.
        """
        keys = self._normalize_on(on)
        return DataFrame(
            self.session, Join(self.plan, other.plan, keys, how, residual=residual)
        )

    def semi_join(self, other: "DataFrame", on: OnClause,
                  residual: Optional[Expression] = None) -> "DataFrame":
        """SQL EXISTS: keep left rows with a match in ``other``."""
        return self.join(other, on, how="semi", residual=residual)

    def anti_join(self, other: "DataFrame", on: OnClause,
                  residual: Optional[Expression] = None) -> "DataFrame":
        """SQL NOT EXISTS: keep left rows with no match in ``other``."""
        return self.join(other, on, how="anti", residual=residual)

    @staticmethod
    def _normalize_on(on: OnClause) -> List[Tuple[Expression, Expression]]:
        if isinstance(on, str):
            return [(col(on), col(on))]
        on = list(on)
        if not on:
            raise AnalysisError("join 'on' clause is empty")
        if isinstance(on[0], str):
            return [(col(n), col(n)) for n in on]  # type: ignore[arg-type]
        return [( _as_expr(l), _as_expr(r)) for l, r in on]  # type: ignore[misc]

    def group_by(self, *exprs: Union[str, Expression]) -> "GroupedData":
        """Start a grouped aggregation."""
        return GroupedData(self, [_as_expr(e) for e in exprs])

    def agg(self, *aggregates: AggregateSpec) -> "DataFrame":
        """Global aggregation (no grouping): always yields one row."""
        return DataFrame(self.session, Aggregate(self.plan, [], list(aggregates)))

    def order_by(
        self, *exprs: Union[str, Expression], ascending: Union[bool, Sequence[bool]] = True
    ) -> "DataFrame":
        keys = [_as_expr(e) for e in exprs]
        if isinstance(ascending, bool):
            flags = [ascending] * len(keys)
        else:
            flags = list(ascending)
            if len(flags) != len(keys):
                raise AnalysisError("ascending list must match sort keys")
        return DataFrame(self.session, Sort(self.plan, list(zip(keys, flags))))

    def limit(self, n: int) -> "DataFrame":
        return DataFrame(self.session, Limit(self.plan, n))

    def distinct(self) -> "DataFrame":
        return DataFrame(self.session, Distinct(self.plan))

    def union_all(self, other: "DataFrame") -> "DataFrame":
        """Concatenate two DataFrames with identical column names."""
        from repro.sql.logical import Union

        return DataFrame(self.session, Union([self.plan, other.plan]))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def to_rdd(self) -> RDD:
        """Compile (optimized) and return the RDD of dict rows."""
        return self.session.execute_plan(self.plan)

    def collect(self) -> List[Dict[str, Any]]:
        return self.to_rdd().collect()

    def count(self) -> int:
        return self.to_rdd().count()

    def first(self) -> Dict[str, Any]:
        return self.to_rdd().first()

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        rows = self.collect()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise AnalysisError(
                f"scalar() expects exactly one row and one column, got "
                f"{len(rows)} row(s) with columns {list(rows[0]) if rows else []}"
            )
        return next(iter(rows[0].values()))

    def show(self, n: int = 20) -> str:
        """Render the first ``n`` rows as an aligned text table."""
        rows = self.limit(n).collect()
        names = self.columns
        cells = [[_fmt(row.get(name)) for name in names] for row in rows]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(w) for name, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(value.ljust(w) for value, w in zip(row, widths))
            for row in cells
        ]
        table = "\n".join([header, sep] + body)
        print(table)
        return table

    def explain(self, optimized: bool = True) -> str:
        """Pretty-print the (optionally optimized) logical plan."""
        plan = self.session.optimize_plan(self.plan) if optimized else self.plan
        text = plan.pretty()
        print(text)
        return text


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


class GroupedData:
    """Intermediate object returned by :meth:`DataFrame.group_by`."""

    def __init__(self, df: DataFrame, group_exprs: List[Expression]):
        self._df = df
        self._group_exprs = group_exprs

    def agg(self, *aggregates: AggregateSpec) -> DataFrame:
        return DataFrame(
            self._df.session,
            Aggregate(self._df.plan, self._group_exprs, list(aggregates)),
        )

    def count(self, alias: str = "count") -> DataFrame:
        from repro.sql.functions import count_star

        return self.agg(count_star(alias))
