"""SQL text parser for the subset used by the TPC-H workloads.

Supported grammar (case-insensitive keywords)::

    SELECT item [, item ...]
    FROM table [alias] [, table [alias] ...]
    [WHERE predicate]
    [GROUP BY expr [, expr ...]]
    [HAVING predicate]
    [ORDER BY expr [ASC|DESC] [, ...]]
    [LIMIT n]

with expressions covering arithmetic, comparisons, AND/OR/NOT, LIKE,
BETWEEN, IN (value list or subquery), IS [NOT] NULL, EXISTS / NOT
EXISTS correlated subqueries, uncorrelated scalar subqueries, ``DATE
'yyyy-mm-dd'`` literals, ``INTERVAL 'n' DAY`` arithmetic, and the
aggregates COUNT(*)/COUNT/COUNT(DISTINCT)/SUM/AVG/MIN/MAX.

Joins are expressed TPC-H style: tables in the FROM list with equality
predicates in WHERE.  The planner extracts equi-join edges, builds a
join tree, converts EXISTS/NOT EXISTS into semi/anti joins (including
non-equality correlated residuals, as TPC-H Q21 needs), and evaluates
uncorrelated scalar subqueries eagerly.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AnalysisError, ParseError
from repro.sql.expr import (
    Alias,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    UnaryOp,
    combine_conjuncts,
    split_conjuncts,
)
from repro.sql.functions import AggregateSpec
from repro.sql.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)
from repro.sql.optimizer import substitute

_KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "and", "or", "not", "in", "like", "between", "exists", "is", "null",
    "as", "asc", "desc", "date", "interval", "day", "distinct", "count",
    "sum", "avg", "min", "max", "union", "all", "case", "when", "then",
    "else", "end",
}

_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|\(|\)|,|\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'string' | 'ident' | 'keyword' | 'op' | 'eof'
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        value = match.group()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(Token("keyword", value.lower(), match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


@dataclass
class _SelectItem:
    expr: Expression  # raw (unresolved) expression, or None for '*'
    alias: Optional[str]
    is_star: bool = False


@dataclass
class _SubquerySpec:
    """A [NOT] EXISTS or [NOT] IN subquery found in a WHERE clause."""

    query: "_ParsedQuery"
    negated: bool
    # for IN subqueries: the outer expression being tested.
    in_expr: Optional[Expression] = None


@dataclass
class _ParsedQuery:
    select_items: List[_SelectItem]
    tables: List[Tuple[str, str]]  # (table_name, alias)
    where: Optional[Expression]
    group_by: List[Expression]
    having: Optional[Expression]
    order_by: List[Tuple[Expression, bool]]
    limit: Optional[int]
    subqueries: List[_SubquerySpec] = field(default_factory=list)


class _Parser:
    """Recursive-descent parser producing a :class:`_ParsedQuery`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.value in words:
            self._pos += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise ParseError(f"expected {word.upper()}, got {token.value!r}",
                             token.position)

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.value == op:
            self._pos += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.value != op:
            raise ParseError(f"expected {op!r}, got {token.value!r}", token.position)

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, got {token.value!r}",
                             token.position)
        return token.value

    # -- query -----------------------------------------------------------

    def parse_query(self) -> _ParsedQuery:
        self._expect_keyword("select")
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        self._expect_keyword("from")
        tables = [self._parse_table_ref()]
        while self._accept_op(","):
            tables.append(self._parse_table_ref())

        query = _ParsedQuery(items, tables, None, [], None, [], None)

        if self._accept_keyword("where"):
            query.where = self._parse_expr(query)
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            query.group_by.append(self._parse_expr(query))
            while self._accept_op(","):
                query.group_by.append(self._parse_expr(query))
        if self._accept_keyword("having"):
            query.having = self._parse_expr(query)
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            query.order_by.append(self._parse_order_item(query))
            while self._accept_op(","):
                query.order_by.append(self._parse_order_item(query))
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number":
                raise ParseError("LIMIT expects a number", token.position)
            query.limit = int(token.value)
        return query

    def _parse_select_item(self) -> _SelectItem:
        if self._accept_op("*"):
            return _SelectItem(Literal(1), None, is_star=True)
        expr = self._parse_expr(None)
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return _SelectItem(expr, alias)

    def _parse_table_ref(self) -> Tuple[str, str]:
        name = self._expect_ident()
        alias = name
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return (name, alias)

    def _parse_order_item(self, query: Optional[_ParsedQuery]) -> Tuple[Expression, bool]:
        expr = self._parse_expr(query)
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return (expr, ascending)

    # -- expressions -------------------------------------------------------
    # Column references are kept *raw* here ("alias.col" or "col"); the
    # planner resolves them against the FROM scope afterwards.

    def _parse_expr(self, query: Optional[_ParsedQuery]) -> Expression:
        return self._parse_or(query)

    def _parse_or(self, query) -> Expression:
        expr = self._parse_and(query)
        while self._accept_keyword("or"):
            expr = BinaryOp("or", expr, self._parse_and(query))
        return expr

    def _parse_and(self, query) -> Expression:
        expr = self._parse_not(query)
        while self._accept_keyword("and"):
            expr = BinaryOp("and", expr, self._parse_not(query))
        return expr

    def _parse_not(self, query) -> Expression:
        if self._accept_keyword("not"):
            if self._peek().kind == "keyword" and self._peek().value == "exists":
                return self._parse_exists(query, negated=True)
            return UnaryOp("not", self._parse_not(query))
        if self._peek().kind == "keyword" and self._peek().value == "exists":
            return self._parse_exists(query, negated=False)
        return self._parse_predicate(query)

    def _parse_exists(self, query, negated: bool) -> Expression:
        if query is None:
            raise ParseError("EXISTS only allowed in WHERE clauses",
                             self._peek().position)
        self._expect_keyword("exists")
        self._expect_op("(")
        sub = self._parse_subquery()
        self._expect_op(")")
        marker = _SubqueryMarker(len(query.subqueries))
        query.subqueries.append(_SubquerySpec(sub, negated))
        return marker

    def _parse_subquery(self) -> _ParsedQuery:
        return self.parse_query()

    def _parse_predicate(self, query) -> Expression:
        expr = self._parse_additive(query)
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self._pos += 1
            op = "<>" if token.value == "!=" else token.value
            return BinaryOp(op, expr, self._parse_additive(query))
        negated = False
        if token.kind == "keyword" and token.value == "not":
            follow = self._peek(1)
            if follow.kind == "keyword" and follow.value in ("like", "in", "between"):
                self._pos += 1
                negated = True
                token = self._peek()
        if token.kind == "keyword" and token.value == "like":
            self._pos += 1
            pattern_token = self._next()
            if pattern_token.kind != "string":
                raise ParseError("LIKE expects a string pattern",
                                 pattern_token.position)
            return LikeOp(expr, _unquote(pattern_token.value), negated)
        if token.kind == "keyword" and token.value == "between":
            self._pos += 1
            low = self._parse_additive(query)
            self._expect_keyword("and")
            high = self._parse_additive(query)
            between = BinaryOp(
                "and", BinaryOp(">=", expr, low), BinaryOp("<=", expr, high)
            )
            return UnaryOp("not", between) if negated else between
        if token.kind == "keyword" and token.value == "in":
            self._pos += 1
            return self._parse_in(query, expr, negated)
        if token.kind == "keyword" and token.value == "is":
            self._pos += 1
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNullOp(expr, is_negated)
        return expr

    def _parse_in(self, query, expr: Expression, negated: bool) -> Expression:
        self._expect_op("(")
        if self._peek().kind == "keyword" and self._peek().value == "select":
            if query is None:
                raise ParseError("IN (SELECT ...) only allowed in WHERE clauses",
                                 self._peek().position)
            sub = self._parse_subquery()
            self._expect_op(")")
            marker = _SubqueryMarker(len(query.subqueries))
            query.subqueries.append(_SubquerySpec(sub, negated, in_expr=expr))
            return marker
        values = [self._parse_literal_value()]
        while self._accept_op(","):
            values.append(self._parse_literal_value())
        self._expect_op(")")
        return InOp(expr, values, negated)

    def _parse_literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "keyword" and token.value == "date":
            return self._parse_date_literal()
        raise ParseError(f"expected literal, got {token.value!r}", token.position)

    def _parse_additive(self, query) -> Expression:
        expr = self._parse_multiplicative(query)
        while True:
            if self._accept_op("+"):
                expr = BinaryOp("+", expr, self._parse_multiplicative(query))
            elif self._accept_op("-"):
                expr = BinaryOp("-", expr, self._parse_multiplicative(query))
            else:
                return expr

    def _parse_multiplicative(self, query) -> Expression:
        expr = self._parse_unary(query)
        while True:
            if self._accept_op("*"):
                expr = BinaryOp("*", expr, self._parse_unary(query))
            elif self._accept_op("/"):
                expr = BinaryOp("/", expr, self._parse_unary(query))
            else:
                return expr

    def _parse_unary(self, query) -> Expression:
        if self._accept_op("-"):
            return UnaryOp("-", self._parse_unary(query))
        return self._parse_primary(query)

    def _parse_primary(self, query) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._pos += 1
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self._pos += 1
            return Literal(_unquote(token.value))
        if token.kind == "keyword" and token.value == "date":
            self._pos += 1
            return Literal(self._parse_date_literal())
        if token.kind == "keyword" and token.value == "interval":
            self._pos += 1
            amount_token = self._next()
            if amount_token.kind != "string":
                raise ParseError("INTERVAL expects a quoted amount",
                                 amount_token.position)
            self._expect_keyword("day")
            return Literal(datetime.timedelta(days=int(_unquote(amount_token.value))))
        if token.kind == "keyword" and token.value == "case":
            return self._parse_case(query)
        if token.kind == "keyword" and token.value in _AGG_FUNCS:
            return self._parse_aggregate(query)
        if token.kind == "ident":
            return self._parse_ident_expr(query)
        if self._accept_op("("):
            if self._peek().kind == "keyword" and self._peek().value == "select":
                sub = self._parse_subquery()
                self._expect_op(")")
                return _ScalarSubquery(sub)
            expr = self._parse_expr(query)
            self._expect_op(")")
            return expr
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_case(self, query) -> Expression:
        from repro.sql.expr import CaseWhen

        self._expect_keyword("case")
        branches = []
        while self._accept_keyword("when"):
            condition = self._parse_expr(query)
            self._expect_keyword("then")
            branches.append((condition, self._parse_expr(query)))
        default = None
        if self._accept_keyword("else"):
            default = self._parse_expr(query)
        self._expect_keyword("end")
        if not branches:
            raise ParseError("CASE needs at least one WHEN",
                             self._peek().position)
        return CaseWhen(branches, default)

    def _parse_date_literal(self) -> datetime.date:
        token = self._next()
        if token.kind != "string":
            raise ParseError("DATE expects a quoted string", token.position)
        return datetime.date.fromisoformat(_unquote(token.value))

    def _parse_aggregate(self, query) -> Expression:
        func = self._next().value  # the aggregate keyword
        self._expect_op("(")
        distinct = self._accept_keyword("distinct")
        if func == "count" and self._accept_op("*"):
            self._expect_op(")")
            return _RawAggregate("count", None, distinct=False)
        arg = self._parse_expr(query)
        self._expect_op(")")
        if distinct and func != "count":
            raise ParseError("DISTINCT only supported inside COUNT",
                             self._peek().position)
        return _RawAggregate(func, arg, distinct=distinct)

    def _parse_ident_expr(self, query) -> Expression:
        name = self._expect_ident()
        if self._accept_op("."):
            column = self._expect_ident()
            return Column(f"{name}.{column}")
        if self._peek().kind == "op" and self._peek().value == "(":
            self._pos += 1
            args = []
            if not self._accept_op(")"):
                args.append(self._parse_expr(query))
                while self._accept_op(","):
                    args.append(self._parse_expr(query))
                self._expect_op(")")
            return FuncCall(name, args)
        return Column(name)


class _SubqueryMarker(Expression):
    """Placeholder for an EXISTS/IN-subquery predicate inside WHERE.

    Markers must appear as top-level conjuncts; the planner replaces
    them with semi/anti joins.
    """

    def __init__(self, index: int):
        self.index = index

    def eval(self, row):
        raise AnalysisError("subquery marker cannot be evaluated directly")

    def references(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return f"<subquery #{self.index}>"


class _ScalarSubquery(Expression):
    """Placeholder for an uncorrelated scalar subquery."""

    def __init__(self, query: _ParsedQuery):
        self.query = query

    def eval(self, row):
        raise AnalysisError("scalar subquery must be planned before evaluation")

    def references(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return "<scalar subquery>"


class _RawAggregate(Expression):
    """Placeholder for an aggregate call before planning."""

    def __init__(self, func: str, arg: Optional[Expression], distinct: bool):
        self.func = func
        self.arg = arg
        self.distinct = distinct

    def eval(self, row):
        raise AnalysisError("aggregate must be planned before evaluation")

    def references(self) -> Set[str]:
        return self.arg.references() if self.arg is not None else set()

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "distinct " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


def _unquote(raw: str) -> str:
    return raw[1:-1].replace("''", "'")


# ---------------------------------------------------------------------------
# Planner: _ParsedQuery -> LogicalPlan
# ---------------------------------------------------------------------------


class _Scope:
    """Column resolution scope: alias -> schema, with an optional parent."""

    def __init__(self, session, tables: Sequence[Tuple[str, str]],
                 parent: Optional["_Scope"] = None):
        self.session = session
        self.parent = parent
        self.aliases: Dict[str, Any] = {}
        for table_name, alias in tables:
            if alias in self.aliases:
                raise AnalysisError(f"duplicate table alias {alias!r}")
            self.aliases[alias] = session.catalog.table(table_name)

    def resolve_local(self, raw: str) -> Optional[str]:
        """Resolve a raw reference to a plain column name in this scope."""
        if "." in raw:
            alias, column = raw.split(".", 1)
            table = self.aliases.get(alias)
            if table is None:
                return None
            if not table.schema.has(column):
                raise AnalysisError(
                    f"table alias {alias!r} has no column {column!r}"
                )
            return column
        hits = [a for a, t in self.aliases.items() if t.schema.has(raw)]
        if len(hits) > 1:
            raise AnalysisError(f"ambiguous column reference {raw!r}: {hits}")
        return raw if hits else None

    def classify(self, raw: str) -> str:
        """'local', 'outer', or raise for unresolvable references."""
        if self.resolve_local(raw) is not None:
            return "local"
        if self.parent is not None and self.parent.resolve_local(raw) is not None:
            return "outer"
        raise AnalysisError(f"cannot resolve column reference {raw!r}")


def _resolve_expr(expr: Expression, scope: _Scope,
                  outer_prefix: str = "", local_prefix: str = "") -> Expression:
    """Replace raw column refs with resolved names.

    ``local_prefix`` is applied to local (inner) columns and
    ``outer_prefix`` to columns resolved in the parent scope — used to
    build residual-join conditions where right-side columns carry the
    ``__r_`` prefix.
    """
    mapping: Dict[str, Expression] = {}
    for raw in _collect_columns(expr):
        side = scope.classify(raw)
        if side == "local":
            mapping[raw] = Column(local_prefix + scope.resolve_local(raw))
        else:
            assert scope.parent is not None
            mapping[raw] = Column(outer_prefix + scope.parent.resolve_local(raw))
    return substitute(expr, mapping)


def _collect_columns(expr: Expression) -> Set[str]:
    if isinstance(expr, Column):
        return {expr.name}
    refs: Set[str] = set()
    for child in expr.children():
        refs |= _collect_columns(child)
    return refs


def _expr_sides(expr: Expression, scope: _Scope) -> Set[str]:
    """Which scopes ({'local', 'outer'}) an expression's columns live in."""
    return {scope.classify(raw) for raw in _collect_columns(expr)}


class _Planner:
    """Builds a logical plan from a parsed query."""

    def __init__(self, session):
        self.session = session
        self._agg_counter = 0

    # -- public ----------------------------------------------------------

    def plan(self, query: _ParsedQuery, parent_scope: Optional[_Scope] = None
             ) -> LogicalPlan:
        scope = _Scope(self.session, query.tables, parent_scope)
        plan = self._plan_from_where(query, scope)
        plan = self._plan_aggregation_and_select(query, scope, plan)
        return plan

    # -- FROM + WHERE ------------------------------------------------------

    def _plan_from_where(self, query: _ParsedQuery, scope: _Scope) -> LogicalPlan:
        conjuncts: List[Expression] = (
            split_conjuncts(query.where) if query.where is not None else []
        )
        join_edges: List[Tuple[str, str, Expression, Expression]] = []
        filters: List[Expression] = []
        markers: List[_SubqueryMarker] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, _SubqueryMarker):
                markers.append(conjunct)
                continue
            edge = self._as_join_edge(conjunct, scope)
            if edge is not None:
                join_edges.append(edge)
            else:
                filters.append(conjunct)

        plan = self._build_join_tree(query, scope, join_edges)

        for filter_expr in filters:
            resolved = self._resolve_main(filter_expr, scope)
            plan = Filter(plan, resolved)

        for marker in markers:
            spec = query.subqueries[marker.index]
            plan = self._apply_subquery(plan, spec, scope)
        return plan

    def _as_join_edge(self, conjunct: Expression, scope: _Scope
                      ) -> Optional[Tuple[str, str, Expression, Expression]]:
        """Detect ``a.x = b.y`` with sides in two different FROM tables."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left_alias = self._single_alias(conjunct.left, scope)
        right_alias = self._single_alias(conjunct.right, scope)
        if left_alias is None or right_alias is None or left_alias == right_alias:
            return None
        return (left_alias, right_alias, conjunct.left, conjunct.right)

    def _single_alias(self, expr: Expression, scope: _Scope) -> Optional[str]:
        """The unique FROM alias an expression references, if exactly one."""
        aliases: Set[str] = set()
        for raw in _collect_columns(expr):
            if "." in raw:
                alias = raw.split(".", 1)[0]
                if alias not in scope.aliases:
                    return None
                aliases.add(alias)
            else:
                hits = [a for a, t in scope.aliases.items() if t.schema.has(raw)]
                if len(hits) != 1:
                    return None
                aliases.add(hits[0])
        if len(aliases) != 1:
            return None
        return next(iter(aliases))

    def _build_join_tree(
        self,
        query: _ParsedQuery,
        scope: _Scope,
        edges: List[Tuple[str, str, Expression, Expression]],
    ) -> LogicalPlan:
        plans: Dict[str, LogicalPlan] = {}
        for table_name, alias in query.tables:
            table = self.session.catalog.table(table_name)
            plans[alias] = Scan(table_name, table.schema)
        if len(plans) == 1:
            return next(iter(plans.values()))

        joined: Set[str] = {query.tables[0][1]}
        plan = plans[query.tables[0][1]]
        remaining = list(edges)
        progress = True
        while remaining and progress:
            progress = False
            for edge in list(remaining):
                left_alias, right_alias, left_expr, right_expr = edge
                if left_alias in joined and right_alias in joined:
                    # Both sides already joined: becomes a post-join filter.
                    resolved = self._resolve_main(
                        BinaryOp("=", left_expr, right_expr), scope
                    )
                    plan = Filter(plan, resolved)
                    remaining.remove(edge)
                    progress = True
                elif left_alias in joined or right_alias in joined:
                    if left_alias in joined:
                        new_alias = right_alias
                        joined_key, new_key = left_expr, right_expr
                    else:
                        new_alias = left_alias
                        joined_key, new_key = right_expr, left_expr
                    plan = Join(
                        plan,
                        plans[new_alias],
                        [(
                            self._resolve_main(joined_key, scope),
                            self._resolve_main(new_key, scope),
                        )],
                        how="inner",
                    )
                    joined.add(new_alias)
                    remaining.remove(edge)
                    progress = True
        unjoined = set(plans) - joined
        if unjoined:
            raise AnalysisError(
                f"tables {sorted(unjoined)} are not connected by join "
                "predicates (cross joins are not supported)"
            )
        return plan

    def _apply_subquery(self, plan: LogicalPlan, spec: _SubquerySpec,
                        scope: _Scope) -> LogicalPlan:
        sub_scope = _Scope(self.session, spec.query.tables, scope)
        conjuncts = (
            split_conjuncts(spec.query.where)
            if spec.query.where is not None
            else []
        )
        if spec.query.subqueries:
            raise AnalysisError("nested subqueries inside subqueries are not supported")

        keys: List[Tuple[Expression, Expression]] = []
        inner_filters: List[Expression] = []
        residuals: List[Expression] = []
        for conjunct in conjuncts:
            sides = _expr_sides(conjunct, sub_scope)
            if sides <= {"local"}:
                inner_filters.append(
                    _resolve_expr(conjunct, sub_scope)
                )
                continue
            key_pair = self._as_correlated_key(conjunct, sub_scope)
            if key_pair is not None:
                keys.append(key_pair)
            else:
                residuals.append(
                    _resolve_expr(
                        conjunct, sub_scope,
                        local_prefix=Join.RESIDUAL_RIGHT_PREFIX,
                    )
                )

        inner_plan = self._subquery_scan(spec.query, sub_scope, inner_filters)

        if spec.in_expr is not None:
            # [NOT] IN (SELECT col ...): key is outer expr = subquery output.
            if len(spec.query.select_items) != 1 or spec.query.select_items[0].is_star:
                raise AnalysisError("IN subquery must select exactly one column")
            inner_col = _resolve_expr(
                spec.query.select_items[0].expr, sub_scope
            )
            outer_expr = self._resolve_main(spec.in_expr, scope)
            keys.append((outer_expr, inner_col))

        if not keys:
            raise AnalysisError(
                "subquery has no equality correlation with the outer query; "
                "uncorrelated EXISTS is not supported"
            )
        residual = combine_conjuncts(residuals)
        how = "anti" if spec.negated else "semi"
        return Join(plan, inner_plan, keys, how, residual=residual)

    def _as_correlated_key(self, conjunct: Expression, sub_scope: _Scope
                           ) -> Optional[Tuple[Expression, Expression]]:
        """Detect ``outer_expr = inner_expr`` correlation conjuncts."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left_sides = _expr_sides(conjunct.left, sub_scope)
        right_sides = _expr_sides(conjunct.right, sub_scope)
        if left_sides == {"outer"} and right_sides <= {"local"}:
            outer_side, inner_side = conjunct.left, conjunct.right
        elif right_sides == {"outer"} and left_sides <= {"local"}:
            outer_side, inner_side = conjunct.right, conjunct.left
        else:
            return None
        assert sub_scope.parent is not None
        outer_resolved = _resolve_expr(outer_side, sub_scope.parent)
        inner_resolved = _resolve_expr(inner_side, sub_scope)
        return (outer_resolved, inner_resolved)

    def _subquery_scan(self, query: _ParsedQuery, sub_scope: _Scope,
                       inner_filters: List[Expression]) -> LogicalPlan:
        if len(query.tables) != 1:
            raise AnalysisError("subqueries may only scan a single table")
        table_name, _alias = query.tables[0]
        table = self.session.catalog.table(table_name)
        plan: LogicalPlan = Scan(table_name, table.schema)
        cond = combine_conjuncts(inner_filters)
        if cond is not None:
            plan = Filter(plan, cond)
        return plan

    # -- aggregation + select ------------------------------------------------

    def _resolve_main(self, expr: Expression, scope: _Scope) -> Expression:
        """Resolve an expression in the main query scope.

        Also evaluates scalar subqueries eagerly and resolves raw
        aggregates' argument expressions.
        """
        expr = self._eval_scalar_subqueries(expr)
        return _resolve_expr(expr, scope)

    def _eval_scalar_subqueries(self, expr: Expression) -> Expression:
        if isinstance(expr, _ScalarSubquery):
            value = self._execute_scalar(expr.query)
            return Literal(value)
        if isinstance(expr, _RawAggregate):
            if expr.arg is None:
                return expr
            return _RawAggregate(
                expr.func, self._eval_scalar_subqueries(expr.arg), expr.distinct
            )
        return _map_children(expr, self._eval_scalar_subqueries)

    def _execute_scalar(self, query: _ParsedQuery) -> Any:
        sub_plan = self.plan(query)
        rows = self.session.execute_plan(sub_plan).collect()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise AnalysisError("scalar subquery must produce one row, one column")
        return next(iter(rows[0].values()))

    def _plan_aggregation_and_select(
        self, query: _ParsedQuery, scope: _Scope, plan: LogicalPlan
    ) -> LogicalPlan:
        has_aggregates = any(
            _contains_aggregate(item.expr)
            for item in query.select_items
            if not item.is_star
        ) or (query.having is not None and _contains_aggregate(query.having))

        if not query.group_by and not has_aggregates:
            plan = self._plan_plain_select(query, scope, plan)
        else:
            plan = self._plan_aggregate_select(query, scope, plan)

        if query.order_by:
            orders = []
            out_cols = set(plan.schema.names)
            for expr, ascending in query.order_by:
                resolved = self._resolve_order_key(expr, scope, out_cols)
                orders.append((resolved, ascending))
            plan = Sort(plan, orders)
        if query.limit is not None:
            plan = Limit(plan, query.limit)
        return plan

    def _resolve_order_key(self, expr: Expression, scope: _Scope,
                           out_cols: Set[str]) -> Expression:
        # Prefer output column names (aliases) over source columns.
        if isinstance(expr, Column) and expr.name in out_cols:
            return expr
        resolved = self._resolve_main(expr, scope)
        missing = resolved.references() - out_cols
        if missing:
            raise AnalysisError(
                f"ORDER BY references {sorted(missing)} which are not in the "
                f"output columns {sorted(out_cols)}"
            )
        return resolved

    def _plan_plain_select(self, query: _ParsedQuery, scope: _Scope,
                           plan: LogicalPlan) -> LogicalPlan:
        exprs: List[Expression] = []
        for item in query.select_items:
            if item.is_star:
                exprs.extend(Column(n) for n in plan.schema.names)
                continue
            resolved = self._resolve_main(item.expr, scope)
            if item.alias is not None:
                resolved = Alias(resolved, item.alias)
            exprs.append(resolved)
        return Project(plan, exprs)

    def _plan_aggregate_select(self, query: _ParsedQuery, scope: _Scope,
                               plan: LogicalPlan) -> LogicalPlan:
        group_exprs = [self._resolve_main(e, scope) for e in query.group_by]
        group_names = {e.output_name() for e in group_exprs}

        specs: List[AggregateSpec] = []
        final_exprs: List[Expression] = []
        for item in query.select_items:
            if item.is_star:
                raise AnalysisError("SELECT * is not valid in aggregate queries")
            output, new_specs = self._lower_aggregates(item.expr, scope)
            specs.extend(new_specs)
            if item.alias is not None:
                output = Alias(output, item.alias)
            missing = output.references() - group_names - {
                s.alias for s in specs
            }
            if missing:
                raise AnalysisError(
                    f"select expression references non-grouped columns "
                    f"{sorted(missing)}"
                )
            final_exprs.append(output)

        having_expr: Optional[Expression] = None
        if query.having is not None:
            having_expr, having_specs = self._lower_aggregates(query.having, scope)
            specs.extend(having_specs)

        agg_plan = Aggregate(plan, group_exprs, specs)
        out: LogicalPlan = agg_plan
        if having_expr is not None:
            out = Filter(out, having_expr)
        return Project(out, final_exprs)

    def _lower_aggregates(self, expr: Expression, scope: _Scope
                          ) -> Tuple[Expression, List[AggregateSpec]]:
        """Replace _RawAggregate nodes with references to agg output columns."""
        specs: List[AggregateSpec] = []

        def lower(node: Expression) -> Expression:
            if isinstance(node, _RawAggregate):
                self._agg_counter += 1
                alias = f"__agg_{self._agg_counter}"
                arg = (
                    self._resolve_main(node.arg, scope)
                    if node.arg is not None
                    else None
                )
                func = "count_distinct" if node.distinct else node.func
                specs.append(AggregateSpec(func, arg, alias))
                return Column(alias)
            if isinstance(node, _ScalarSubquery):
                return Literal(self._execute_scalar(node.query))
            if isinstance(node, Column):
                resolved = scope.resolve_local(node.name)
                if resolved is None:
                    raise AnalysisError(f"cannot resolve column {node.name!r}")
                return Column(resolved)
            if isinstance(node, Literal):
                return node
            return _map_children(node, lower)

        return lower(expr), specs


def _map_children(expr: Expression, f) -> Expression:
    """Rebuild an expression applying ``f`` to each child."""
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, f(expr.left), f(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, f(expr.operand))
    if isinstance(expr, LikeOp):
        return LikeOp(f(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, InOp):
        return InOp(f(expr.operand), expr.values, expr.negated)
    if isinstance(expr, IsNullOp):
        return IsNullOp(f(expr.operand), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, [f(a) for a in expr.args])
    if isinstance(expr, Alias):
        return Alias(f(expr.child), expr.name)
    from repro.sql.expr import CaseWhen

    if isinstance(expr, CaseWhen):
        return CaseWhen(
            [(f(c), f(v)) for c, v in expr.branches],
            f(expr.default) if expr.default is not None else None,
        )
    return expr


def _contains_aggregate(expr: Expression) -> bool:
    if isinstance(expr, _RawAggregate):
        return True
    return any(_contains_aggregate(c) for c in expr.children())


def parse_sql(text: str, session) -> LogicalPlan:
    """Parse SQL text (including UNION ALL chains) and plan it."""
    from repro.sql.logical import Union

    parser = _Parser(tokenize(text))
    planner = _Planner(session)
    plans = [planner.plan(parser.parse_query())]
    while parser._accept_keyword("union"):
        parser._expect_keyword("all")
        plans.append(planner.plan(parser.parse_query()))
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError(f"unexpected trailing input {trailing.value!r}",
                         trailing.position)
    if len(plans) == 1:
        return plans[0]
    return Union(plans)
