"""Catalog of named tables backing the SQL layer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import AnalysisError
from repro.engine.rdd import RDD
from repro.sql.types import Schema


class Table:
    """A named table: schema + rows, materialized as an RDD on demand.

    With ``columnar=True`` the table materializes as a
    :class:`~repro.engine.rdd.ColumnarCollectionRDD` — per-column
    buffers instead of row dicts — and the executor's fused stages can
    run vectorized filters over its blocks before any row is boxed.
    """

    def __init__(self, name: str, schema: Schema, rows: List[Dict[str, Any]],
                 columnar: bool = False):
        self.name = name
        self.schema = schema
        self.rows = rows
        self.columnar = columnar
        self._rdd: Optional[RDD] = None

    def invalidate(self) -> None:
        self._rdd = None


class Catalog:
    """Maps table names to :class:`Table` objects."""

    def __init__(self, engine):
        self._engine = engine
        self._tables: Dict[str, Table] = {}
        #: bumped on every register/drop; plan-cache keys include it so
        #: cached RDDs never outlive the table contents they captured.
        self.version = 0

    def register(
        self,
        name: str,
        rows: Sequence[Dict[str, Any]],
        schema: Optional[Schema] = None,
        columnar: bool = False,
    ) -> Table:
        """Register (or replace) a table from in-memory rows."""
        rows = list(rows)
        if schema is None:
            schema = Schema.from_rows(rows)
        table = Table(name, schema, rows, columnar=columnar)
        self._tables[name] = table
        self.version += 1
        return table

    def drop(self, name: str) -> None:
        if self._tables.pop(name, None) is not None:
            self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise AnalysisError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> List[str]:
        return sorted(self._tables)

    def rdd(self, name: str) -> RDD:
        """RDD of a table's rows (created lazily, reused afterwards).

        Columnar tables still iterate dict rows here — the columnar
        block RDD is a view of the same data (see :meth:`block_rdd`).
        """
        table = self.table(name)
        if table._rdd is None:
            if table.columnar:
                table._rdd = self._engine.parallelize_columnar(table.rows)
            else:
                table._rdd = self._engine.parallelize(table.rows)
        return table._rdd

    def is_columnar(self, name: str) -> bool:
        return self.table(name).columnar

    def block_rdd(self, name: str) -> RDD:
        """RDD whose partitions yield raw ColumnarPartition blocks.

        Only meaningful for tables registered ``columnar=True``.
        """
        table = self.table(name)
        if not table.columnar:
            raise AnalysisError(
                f"table {name!r} is not registered columnar"
            )
        return self.rdd(name).blocks_rdd()
