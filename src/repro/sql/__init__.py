"""A small SQL/DataFrame layer compiled onto the MapReduce engine.

This is the "SparkSQL" stand-in: expression AST, logical plans, a
rule-based optimizer, physical execution over RDDs, a DataFrame builder
API, and a text parser for the SQL subset used by the TPC-H workloads.

The FLEX baseline (:mod:`repro.baselines.flex`) performs its static
analysis directly on the logical plans produced here, exactly as the
original operated on SQL query plans.

Example:
    >>> from repro.sql import SQLSession
    >>> sess = SQLSession()
    >>> sess.create_table("t", [{"a": 1}, {"a": 2}, {"a": 2}])
    >>> sess.sql("SELECT COUNT(*) AS n FROM t WHERE a = 2").collect()
    [{'n': 2}]
"""

from repro.sql.compiler import (
    compile_expression,
    compile_predicate,
    compile_projection,
    expr_fingerprint,
    plan_fingerprint,
)
from repro.sql.dataframe import DataFrame
from repro.sql.expr import Expression, col, lit
from repro.sql.functions import avg, count, count_distinct, count_star, max_, min_, sum_
from repro.sql.session import SQLSession

__all__ = [
    "DataFrame",
    "Expression",
    "SQLSession",
    "avg",
    "col",
    "compile_expression",
    "compile_predicate",
    "compile_projection",
    "count",
    "count_distinct",
    "count_star",
    "expr_fingerprint",
    "lit",
    "max_",
    "min_",
    "plan_fingerprint",
    "sum_",
]
