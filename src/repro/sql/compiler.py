"""Expression codegen: lower ``Expression`` trees to Python closures.

The interpreted executor walks the AST once per row per operator — a
method call, a dict lookup and an isinstance dance per node.  This
module generates straight-line Python source for an expression (or a
whole projection / key tuple / predicate), compiles it once with
``compile()``, and hands back a plain closure the physical operators
can run over entire partitions.

Design notes, in the order they bit us:

* **Null semantics are copied verbatim from expr.py** — comparisons
  with ``None`` are ``False``, arithmetic with ``None`` is ``None``,
  ``LIKE``/``IN`` over ``None`` are ``False`` — so compiled and
  interpreted paths agree bit for bit (the property tests enforce it).
* **Laziness is preserved.**  ``and``/``or`` short-circuit and
  ``CASE WHEN`` evaluates branches in order, so guarded expressions
  like ``CASE WHEN n > 0 THEN s / n END`` must not evaluate the guarded
  branch eagerly.  Unconditionally-evaluated subexpressions are hoisted
  into common-subexpression locals; conditional positions are emitted
  as nested Python short-circuit expressions (helper calls where a bare
  inline form would evaluate an operand twice).
* **Constant folding** happens at emit time: any known, column-free
  subtree that evaluates cleanly against the empty row becomes a
  literal.  Folding failures (e.g. ``1/0``) fall through so the error
  still surfaces at run time, exactly as interpreted.
* **Everything falls back.**  Unknown ``Expression`` subclasses compile
  to a per-node ``expr.eval(row)`` call, and any codegen failure at all
  returns a closure over the interpreted ``eval`` — compilation is an
  optimization, never a semantics change.

Closures are cached by a structural fingerprint (``repr`` is *not*
structural: a column named ``"(a + b)"`` must not unify with the
arithmetic node it shadows), so the ~2n neighbour replays of one query
compile exactly once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.sql.expr import (
    Alias,
    BinaryOp,
    CaseWhen,
    Column,
    Expression,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    Row,
    UnaryOp,
)

__all__ = [
    "CompiledExpression",
    "clear_closure_cache",
    "closure_cache_stats",
    "compile_expression",
    "compile_key",
    "compile_predicate",
    "compile_projection",
    "compiled",
    "expr_fingerprint",
    "plan_fingerprint",
]


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def expr_fingerprint(expr: Expression) -> str:
    """A structural identity for ``expr``, usable as a cache/CSE key.

    Two expressions with equal fingerprints evaluate identically on
    every row.  Unknown subclasses fingerprint by object identity, so
    they are never unified with anything else.
    """
    if isinstance(expr, Column):
        return f"(col {expr.name!r})"
    if isinstance(expr, Literal):
        return f"(lit {type(expr.value).__name__} {expr.value!r})"
    if isinstance(expr, Alias):
        return f"(as {expr.name!r} {expr_fingerprint(expr.child)})"
    if isinstance(expr, BinaryOp):
        return (
            f"(bin {expr.op} {expr_fingerprint(expr.left)} "
            f"{expr_fingerprint(expr.right)})"
        )
    if isinstance(expr, UnaryOp):
        return f"(un {expr.op} {expr_fingerprint(expr.operand)})"
    if isinstance(expr, LikeOp):
        return (
            f"(like {expr.pattern!r} {expr.negated} "
            f"{expr_fingerprint(expr.operand)})"
        )
    if isinstance(expr, InOp):
        return (
            f"(in {expr.values!r} {expr.negated} "
            f"{expr_fingerprint(expr.operand)})"
        )
    if isinstance(expr, IsNullOp):
        return f"(isnull {expr.negated} {expr_fingerprint(expr.operand)})"
    if isinstance(expr, CaseWhen):
        branches = " ".join(
            f"{expr_fingerprint(c)}:{expr_fingerprint(v)}"
            for c, v in expr.branches
        )
        default = (
            expr_fingerprint(expr.default) if expr.default is not None else ""
        )
        return f"(case {branches} else {default})"
    if isinstance(expr, FuncCall):
        args = " ".join(expr_fingerprint(a) for a in expr.args)
        return f"(func {expr.name} {args})"
    if isinstance(expr, CompiledExpression):
        return expr_fingerprint(expr.expr)
    return f"(opaque {type(expr).__qualname__} {id(expr)})"


def plan_fingerprint(plan) -> str:
    """Canonical fingerprint of a logical plan (for the plan cache)."""
    from repro.sql.logical import (
        Aggregate,
        Distinct,
        Filter,
        Join,
        Limit,
        Project,
        Scan,
        Sort,
        Union,
    )

    if isinstance(plan, Scan):
        return f"(scan {plan.table_name!r})"
    if isinstance(plan, Filter):
        return (
            f"(filter {expr_fingerprint(plan.condition)} "
            f"{plan_fingerprint(plan.child)})"
        )
    if isinstance(plan, Project):
        exprs = " ".join(expr_fingerprint(e) for e in plan.exprs)
        return f"(project [{exprs}] {plan_fingerprint(plan.child)})"
    if isinstance(plan, Join):
        keys = " ".join(
            f"{expr_fingerprint(l)}={expr_fingerprint(r)}"
            for l, r in plan.keys
        )
        residual = (
            expr_fingerprint(plan.residual)
            if plan.residual is not None else ""
        )
        return (
            f"(join {plan.how} [{keys}] res[{residual}] "
            f"{plan_fingerprint(plan.left)} {plan_fingerprint(plan.right)})"
        )
    if isinstance(plan, Aggregate):
        groups = " ".join(expr_fingerprint(e) for e in plan.group_exprs)
        aggs = " ".join(
            f"{s.func}:"
            f"{expr_fingerprint(s.expr) if s.expr is not None else '*'}:"
            f"{s.alias!r}"
            for s in plan.aggregates
        )
        return f"(agg [{groups}] [{aggs}] {plan_fingerprint(plan.child)})"
    if isinstance(plan, Sort):
        orders = " ".join(
            f"{expr_fingerprint(e)}:{asc}" for e, asc in plan.orders
        )
        return f"(sort [{orders}] {plan_fingerprint(plan.child)})"
    if isinstance(plan, Limit):
        return f"(limit {plan.n} {plan_fingerprint(plan.child)})"
    if isinstance(plan, Union):
        inputs = " ".join(plan_fingerprint(c) for c in plan.inputs)
        return f"(union {inputs})"
    if isinstance(plan, Distinct):
        return f"(distinct {plan_fingerprint(plan.child)})"
    return f"(opaque {type(plan).__qualname__} {id(plan)})"


# ---------------------------------------------------------------------------
# Runtime helpers (referenced from generated code)
# ---------------------------------------------------------------------------
#
# The inline non-lazy forms evaluate their operands exactly once because
# the operands are CSE locals; in lazy (conditional) positions the
# operand text is an arbitrary expression, so these helpers keep the
# single-evaluation guarantee there.


def _column_error(exc: KeyError, row: Row) -> None:
    name = exc.args[0] if exc.args else "?"
    raise AnalysisError(
        f"column {name!r} not in row with columns {sorted(row)}"
    ) from None


def _eq(a, b):
    return False if a is None or b is None else a == b


def _ne(a, b):
    return False if a is None or b is None else a != b


def _lt(a, b):
    return False if a is None or b is None else a < b


def _le(a, b):
    return False if a is None or b is None else a <= b


def _gt(a, b):
    return False if a is None or b is None else a > b


def _ge(a, b):
    return False if a is None or b is None else a >= b


def _add(a, b):
    return None if a is None or b is None else a + b


def _sub(a, b):
    return None if a is None or b is None else a - b


def _mul(a, b):
    return None if a is None or b is None else a * b


def _div(a, b):
    return None if a is None or b is None else a / b


def _neg(a):
    return None if a is None else -a


def _like(value, regex, negated):
    if value is None:
        return False
    return (regex.match(str(value)) is not None) != negated


def _isin(value, members, negated):
    if value is None:
        return False
    return (value in members) != negated


_HELPERS = {
    "_colerr": _column_error,
    "_eq": _eq, "_ne": _ne, "_lt": _lt, "_le": _le, "_gt": _gt, "_ge": _ge,
    "_add": _add, "_sub": _sub, "_mul": _mul, "_div": _div, "_neg": _neg,
    "_like": _like, "_isin": _isin,
}

_CMP_HELPER = {"=": "_eq", "<>": "_ne", "<": "_lt", "<=": "_le",
               ">": "_gt", ">=": "_ge"}
_CMP_PY = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_HELPER = {"+": "_add", "-": "_sub", "*": "_mul", "/": "_div"}

#: literal types whose repr() round-trips exactly through compile().
_INLINE_LITERALS = (bool, int, float, str, bytes)

#: expression types the generator understands (constant folding is
#: restricted to these — they are pure by construction).
_KNOWN_TYPES = (
    Column, Literal, Alias, BinaryOp, UnaryOp, LikeOp, InOp, IsNullOp,
    CaseWhen, FuncCall,
)


class _Uncompilable(Exception):
    """Internal: abort codegen and fall back to interpreted eval."""


# ---------------------------------------------------------------------------
# Code generator
# ---------------------------------------------------------------------------


class _CodeGen:
    """Accumulates CSE locals, env constants and generated statements."""

    def __init__(self) -> None:
        self.stmts: List[str] = []
        self.locals: Dict[str, str] = {}  # fingerprint -> local name
        self.env: Dict[str, Any] = {}     # const name -> value
        self._counter = 0
        self.uses_column = False

    def const(self, value: Any) -> str:
        name = f"_c{len(self.env)}"
        self.env[name] = value
        return name

    # -- emission ------------------------------------------------------

    def emit(self, expr: Expression, lazy: bool) -> str:
        """Return a Python expression text computing ``expr``.

        Non-lazy positions are hoisted to (deduplicated) locals; lazy
        positions return inline text evaluated only when reached.
        """
        if isinstance(expr, Alias):
            return self.emit(expr.child, lazy)
        folded = self._try_fold(expr)
        if folded is not None:
            return folded
        if isinstance(expr, Literal):
            return self._literal(expr.value)
        fp = expr_fingerprint(expr)
        known = self.locals.get(fp)
        if known is not None:
            return known
        text = self._gen(expr, lazy)
        if lazy:
            return text
        name = f"_v{self._counter}"
        self._counter += 1
        self.stmts.append(f"{name} = {text}")
        self.locals[fp] = name
        return name

    def _try_fold(self, expr: Expression) -> Optional[str]:
        if isinstance(expr, (Literal, Column)):
            return None
        if not isinstance(expr, _KNOWN_TYPES):
            return None
        try:
            if expr.references():
                return None
            value = expr.eval({})
        except Exception:
            return None
        return self._literal(value)

    def _literal(self, value: Any) -> str:
        if value is None or isinstance(value, _INLINE_LITERALS):
            return repr(value)
        return self.const(value)

    @staticmethod
    def _nullness(text: str) -> Optional[bool]:
        """Compile-time nullability of an emitted operand text.

        True = definitely None, False = definitely non-None (an inline
        literal), None = unknown (a local, const, or nested form).
        """
        if text == "None":
            return True
        if (
            text[0] in "'\"0123456789-"
            or text in ("True", "False")
            or text.startswith(("b'", 'b"'))
        ):
            return False
        return None

    def _null_guard(
        self, operands: Sequence[str], result_if_null: str, body: str
    ) -> str:
        """Wrap ``body`` in None checks for the operands that need them."""
        kinds = [self._nullness(t) for t in operands]
        if any(kind is True for kind in kinds):
            return result_if_null
        checks = [t for t, kind in zip(operands, kinds) if kind is None]
        if not checks:
            return body
        cond = " or ".join(f"{t} is None" for t in checks)
        return f"({result_if_null} if {cond} else {body})"

    def _gen(self, expr: Expression, lazy: bool) -> str:
        if isinstance(expr, Column):
            self.uses_column = True
            return f"row[{expr.name!r}]"
        if isinstance(expr, BinaryOp):
            return self._gen_binary(expr, lazy)
        if isinstance(expr, UnaryOp):
            operand = self.emit(expr.operand, lazy)
            if expr.op == "not":
                return f"(not bool({operand}))"
            if lazy and self._nullness(operand) is None:
                return f"_neg({operand})"
            return self._null_guard([operand], "None", f"(-{operand})")
        if isinstance(expr, LikeOp):
            operand = self.emit(expr.operand, lazy)
            regex = self.const(expr._compiled)
            if lazy and self._nullness(operand) is None:
                return f"_like({operand}, {regex}, {expr.negated})"
            return self._null_guard(
                [operand],
                "False",
                f"(({regex}.match(str({operand})) is not None) "
                f"!= {expr.negated})",
            )
        if isinstance(expr, InOp):
            operand = self.emit(expr.operand, lazy)
            members = (
                expr._value_set if expr._value_set is not None
                else expr.values
            )
            name = self.const(members)
            if lazy and self._nullness(operand) is None:
                return f"_isin({operand}, {name}, {expr.negated})"
            return self._null_guard(
                [operand],
                "False",
                f"(({operand} in {name}) != {expr.negated})",
            )
        if isinstance(expr, IsNullOp):
            operand = self.emit(expr.operand, lazy)
            kind = self._nullness(operand)
            if kind is not None:
                return repr(kind != expr.negated)
            return f"(({operand} is None) != {expr.negated})"
        if isinstance(expr, CaseWhen):
            return self._gen_case(expr, lazy)
        if isinstance(expr, FuncCall):
            impl = self.const(expr._impl)
            args = ", ".join(self.emit(a, lazy) for a in expr.args)
            return f"{impl}({args})"
        if isinstance(expr, CompiledExpression):
            return self.emit(expr.expr, lazy)
        # Unknown subclass: per-node interpreted fallback.
        node = self.const(expr)
        return f"{node}.eval(row)"

    def _gen_binary(self, expr: BinaryOp, lazy: bool) -> str:
        op = expr.op
        if op in ("and", "or"):
            left = self.emit(expr.left, lazy)
            right = self.emit(expr.right, True)  # RHS short-circuits
            return f"(bool({left}) {op} bool({right}))"
        left = self.emit(expr.left, lazy)
        right = self.emit(expr.right, lazy)
        unknown = (
            self._nullness(left) is None or self._nullness(right) is None
        )
        if op in _CMP_HELPER:
            if lazy and unknown:
                return f"{_CMP_HELPER[op]}({left}, {right})"
            return self._null_guard(
                [left, right], "False", f"({left} {_CMP_PY[op]} {right})"
            )
        if op in _ARITH_HELPER:
            if lazy and unknown:
                return f"{_ARITH_HELPER[op]}({left}, {right})"
            return self._null_guard(
                [left, right], "None", f"({left} {op} {right})"
            )
        raise _Uncompilable(f"unknown binary operator {op!r}")

    def _gen_case(self, expr: CaseWhen, lazy: bool) -> str:
        # The first WHEN condition is evaluated unconditionally; all
        # values and later conditions are reached only on demand.
        tail = (
            self.emit(expr.default, True)
            if expr.default is not None else "None"
        )
        for i, (condition, value) in reversed(
            list(enumerate(expr.branches))
        ):
            cond = self.emit(condition, lazy or i > 0)
            val = self.emit(value, True)
            tail = f"({val} if {cond} else {tail})"
        return tail

    # -- assembly ------------------------------------------------------

    def build(self, return_stmt: str, tag: str) -> Callable[[Row], Any]:
        params = ["row"]
        params.extend(f"{name}={name}" for name in self.env)
        body = list(self.stmts) + [return_stmt]
        if self.uses_column:
            inner = "".join(f"        {line}\n" for line in body)
            text = (
                f"def _compiled({', '.join(params)}):\n"
                f"    try:\n{inner}"
                f"    except KeyError as _e:\n"
                f"        _colerr(_e, row)\n"
            )
        else:
            inner = "".join(f"    {line}\n" for line in body)
            text = f"def _compiled({', '.join(params)}):\n{inner}"
        namespace: Dict[str, Any] = dict(_HELPERS)
        namespace.update(self.env)
        exec(compile(text, f"<sqlcompiler:{tag}>", "exec"), namespace)
        fn = namespace["_compiled"]
        fn._source = text  # introspection / debugging
        return fn


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

_CACHE_LIMIT = 512
_cache_lock = threading.Lock()
_closure_cache: "OrderedDict[str, Callable]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def closure_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the module-level closure cache."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "size": len(_closure_cache),
        }


def clear_closure_cache() -> None:
    global _cache_hits, _cache_misses
    with _cache_lock:
        _closure_cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def _cached(key: str, build: Callable[[], Callable]) -> Callable:
    global _cache_hits, _cache_misses
    if "(opaque" in key:
        # Identity-fingerprinted nodes: id() can be recycled after GC,
        # so these closures are never shared across calls.
        return build()
    with _cache_lock:
        fn = _closure_cache.get(key)
        if fn is not None:
            _cache_hits += 1
            _closure_cache.move_to_end(key)
            return fn
        _cache_misses += 1
    fn = build()
    with _cache_lock:
        _closure_cache[key] = fn
        while len(_closure_cache) > _CACHE_LIMIT:
            _closure_cache.popitem(last=False)
    return fn


def compile_expression(expr: Expression) -> Callable[[Row], Any]:
    """A closure computing ``expr.eval(row)`` (interpreted on failure)."""
    if isinstance(expr, CompiledExpression):
        return expr._fn

    def build() -> Callable[[Row], Any]:
        try:
            gen = _CodeGen()
            final = gen.emit(expr, lazy=False)
            return gen.build(f"return {final}", "expr")
        except Exception:
            return lambda row: expr.eval(row)

    return _cached(f"expr|{expr_fingerprint(expr)}", build)


def compile_predicate(expr: Expression) -> Callable[[Row], bool]:
    """A closure computing ``bool(expr.eval(row))``."""

    def build() -> Callable[[Row], bool]:
        try:
            gen = _CodeGen()
            final = gen.emit(expr, lazy=False)
            return gen.build(
                f"return (True if {final} else False)", "pred"
            )
        except Exception:
            return lambda row: bool(expr.eval(row))

    return _cached(f"pred|{expr_fingerprint(expr)}", build)


def compile_projection(
    exprs: Sequence[Expression],
) -> Callable[[Row], Row]:
    """One closure computing a whole projected row, with CSE across
    output expressions."""
    exprs = list(exprs)
    pairs: List[Tuple[str, Expression]] = [
        (e.output_name(), e) for e in exprs
    ]

    def build() -> Callable[[Row], Row]:
        try:
            gen = _CodeGen()
            items = ", ".join(
                f"{name!r}: {gen.emit(e, lazy=False)}" for name, e in pairs
            )
            return gen.build(f"return {{{items}}}", "project")
        except Exception:
            return lambda row: {name: e.eval(row) for name, e in pairs}

    key = "project|" + ";".join(
        f"{name!r}={expr_fingerprint(e)}" for name, e in pairs
    )
    return _cached(key, build)


def compile_key(
    exprs: Sequence[Expression],
) -> Callable[[Row], Tuple[Any, ...]]:
    """One closure computing a key tuple (join/group/sort keys)."""
    exprs = list(exprs)

    def build() -> Callable[[Row], Tuple[Any, ...]]:
        try:
            gen = _CodeGen()
            parts = "".join(
                f"{gen.emit(e, lazy=False)}, " for e in exprs
            )
            return gen.build(f"return ({parts})", "key")
        except Exception:
            return lambda row: tuple(e.eval(row) for e in exprs)

    key = "key|" + ";".join(expr_fingerprint(e) for e in exprs)
    return _cached(key, build)


class CompiledExpression(Expression):
    """An :class:`Expression` whose ``eval`` runs the compiled closure.

    Drop-in wherever an expression is evaluated per row (e.g. inside
    :class:`~repro.sql.functions.AggregateSpec`), while remaining a
    structural citizen — references/children/output_name delegate to
    the wrapped node.
    """

    def __init__(self, expr: Expression):
        self.expr = expr
        self._fn = compile_expression(expr)

    def eval(self, row: Row) -> Any:
        return self._fn(row)

    def references(self):
        return self.expr.references()

    def children(self) -> Sequence[Expression]:
        return self.expr.children()

    def output_name(self) -> str:
        return self.expr.output_name()

    def __repr__(self) -> str:
        return repr(self.expr)


def compiled(expr: Optional[Expression]) -> Optional[Expression]:
    """Wrap ``expr`` for compiled evaluation (None passes through)."""
    if expr is None or isinstance(expr, CompiledExpression):
        return expr
    return CompiledExpression(expr)
