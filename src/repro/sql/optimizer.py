"""Rule-based logical-plan optimizer.

Implemented rules (each a pure plan-to-plan function, applied to a
fixpoint):

* **CombineFilters** — collapse stacked filters into one conjunction.
* **PushFilterThroughProject** — move a filter below a projection when
  the projection only renames/forwards columns the filter needs.
* **PushFilterIntoJoin** — split a filter above a join into conjuncts
  and push each conjunct to the side whose columns it references.
* **PruneColumns** — insert projections directly above scans so only
  columns actually consumed upstream are materialized.

The optimizer is semantics-preserving; tests compare optimized vs
unoptimized results row-for-row on randomized plans.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.sql.expr import (
    Alias,
    BinaryOp,
    CaseWhen,
    Column,
    Expression,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    UnaryOp,
    combine_conjuncts,
    split_conjuncts,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)


def substitute(expr: Expression, mapping: Dict[str, Expression]) -> Expression:
    """Rebuild ``expr`` with column references replaced via ``mapping``."""
    if isinstance(expr, Column):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Alias):
        return Alias(substitute(expr.child, mapping), expr.name)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, LikeOp):
        return LikeOp(substitute(expr.operand, mapping), expr.pattern, expr.negated)
    if isinstance(expr, InOp):
        return InOp(substitute(expr.operand, mapping), expr.values, expr.negated)
    if isinstance(expr, IsNullOp):
        return IsNullOp(substitute(expr.operand, mapping), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, [substitute(a, mapping) for a in expr.args])
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            [
                (substitute(c, mapping), substitute(v, mapping))
                for c, v in expr.branches
            ],
            substitute(expr.default, mapping)
            if expr.default is not None
            else None,
        )
    return expr


def _rewrite_bottom_up(
    plan: LogicalPlan, rule: Callable[[LogicalPlan], LogicalPlan]
) -> LogicalPlan:
    children = [_rewrite_bottom_up(c, rule) for c in plan.children()]
    if children:
        plan = plan.with_children(children)
    return rule(plan)


def combine_filters(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Filter) and isinstance(plan.child, Filter):
        merged = combine_conjuncts([plan.child.condition, plan.condition])
        assert merged is not None
        return Filter(plan.child.child, merged)
    return plan


def push_filter_through_project(plan: LogicalPlan) -> LogicalPlan:
    if not (isinstance(plan, Filter) and isinstance(plan.child, Project)):
        return plan
    project = plan.child
    mapping: Dict[str, Expression] = {}
    for expr in project.exprs:
        if isinstance(expr, Column):
            mapping[expr.name] = expr
        elif isinstance(expr, Alias) and isinstance(expr.child, Column):
            mapping[expr.name] = expr.child
        # computed expressions are not simple renames: pushing a filter
        # through them would duplicate work, so those names stay blocked.
    refs = plan.condition.references()
    if not refs <= set(mapping):
        return plan
    pushed = substitute(plan.condition, mapping)
    return Project(Filter(project.child, pushed), project.exprs)


def push_filter_into_join(plan: LogicalPlan) -> LogicalPlan:
    if not (isinstance(plan, Filter) and isinstance(plan.child, Join)):
        return plan
    join = plan.child
    left_cols = set(join.left.schema.names)
    right_cols = set(join.right.schema.names)
    left_pushed: List[Expression] = []
    right_pushed: List[Expression] = []
    kept: List[Expression] = []
    for conjunct in split_conjuncts(plan.condition):
        refs = conjunct.references()
        if refs <= left_cols:
            left_pushed.append(conjunct)
        elif join.how == "inner" and refs <= right_cols:
            right_pushed.append(conjunct)
        else:
            kept.append(conjunct)
    if not left_pushed and not right_pushed:
        return plan
    new_left = join.left
    left_cond = combine_conjuncts(left_pushed)
    if left_cond is not None:
        new_left = Filter(new_left, left_cond)
    new_right = join.right
    right_cond = combine_conjuncts(right_pushed)
    if right_cond is not None:
        new_right = Filter(new_right, right_cond)
    new_join = Join(new_left, new_right, join.keys, join.how,
                    residual=join.residual)
    kept_cond = combine_conjuncts(kept)
    if kept_cond is None:
        return new_join
    return Filter(new_join, kept_cond)


def _required_for_node(plan: LogicalPlan, required_out: Set[str]) -> List[Set[str]]:
    """Columns each child must provide so this node can produce
    ``required_out`` of its own output columns."""
    if isinstance(plan, Filter):
        return [required_out | plan.condition.references()]
    if isinstance(plan, Project):
        needed: Set[str] = set()
        for expr in plan.exprs:
            if expr.output_name() in required_out:
                needed |= expr.references()
        return [needed]
    if isinstance(plan, Aggregate):
        needed = set()
        for expr in plan.group_exprs:
            needed |= expr.references()
        for agg in plan.aggregates:
            needed |= agg.references()
        return [needed]
    if isinstance(plan, Join):
        left_cols = set(plan.left.schema.names)
        right_cols = set(plan.right.schema.names)
        left_needed = required_out & left_cols
        right_needed = required_out & right_cols
        for left_key, right_key in plan.keys:
            left_needed |= left_key.references()
            right_needed |= right_key.references()
        if plan.residual is not None:
            for ref in plan.residual.references():
                if ref.startswith(Join.RESIDUAL_RIGHT_PREFIX):
                    right_needed.add(ref[len(Join.RESIDUAL_RIGHT_PREFIX):])
                else:
                    left_needed.add(ref)
        if plan.how in ("semi", "anti"):
            left_needed |= required_out
        return [left_needed, right_needed]
    if isinstance(plan, Sort):
        needed = set(required_out)
        for expr, _asc in plan.orders:
            needed |= expr.references()
        return [needed]
    if isinstance(plan, (Limit, Distinct)):
        # Distinct semantics depend on every column, so keep them all.
        if isinstance(plan, Distinct):
            return [set(plan.child.schema.names)]
        return [set(required_out)]
    return [set(c.schema.names) for c in plan.children()]


def prune_columns(plan: LogicalPlan, required: Optional[Set[str]] = None) -> LogicalPlan:
    """Insert column-pruning projections directly above scans."""
    if required is None:
        required = set(plan.schema.names)
    if isinstance(plan, Scan):
        keep = [n for n in plan.schema.names if n in required]
        if len(keep) < len(plan.schema.names) and keep:
            return Project(plan, [Column(n) for n in keep])
        return plan
    child_required = _required_for_node(plan, required)
    new_children = [
        prune_columns(child, child_req)
        for child, child_req in zip(plan.children(), child_required)
    ]
    return plan.with_children(new_children)


def estimate_rows(plan: LogicalPlan, catalog) -> Optional[int]:
    """Conservative upper bound on ``plan``'s output cardinality.

    Used by the physical planner to decide whether a join side is small
    enough to broadcast, so estimates only ever err high: filters are
    assumed to pass everything, inner/left joins multiply.  ``None``
    means "unknown" (e.g. an unregistered table) and disables the
    broadcast path for that side.
    """
    if isinstance(plan, Scan):
        if not catalog.has(plan.table_name):
            return None
        return len(catalog.table(plan.table_name).rows)
    if isinstance(plan, (Filter, Project, Sort, Distinct)):
        return estimate_rows(plan.child, catalog)
    if isinstance(plan, Limit):
        child = estimate_rows(plan.child, catalog)
        return plan.n if child is None else min(plan.n, child)
    if isinstance(plan, Aggregate):
        if not plan.group_exprs:
            return 1
        return estimate_rows(plan.child, catalog)
    if isinstance(plan, Join):
        left = estimate_rows(plan.left, catalog)
        if plan.how in ("semi", "anti"):
            return left
        right = estimate_rows(plan.right, catalog)
        if left is None or right is None:
            return None
        return left * right
    if isinstance(plan, Union):
        total = 0
        for child in plan.inputs:
            est = estimate_rows(child, catalog)
            if est is None:
                return None
            total += est
        return total
    return None


_REWRITE_RULES = (combine_filters, push_filter_through_project, push_filter_into_join)


def optimize(plan: LogicalPlan, max_iterations: int = 10) -> LogicalPlan:
    """Apply all rules to a fixpoint (bounded), then prune columns."""
    for _ in range(max_iterations):
        before = plan.pretty()
        for rule in _REWRITE_RULES:
            plan = _rewrite_bottom_up(plan, rule)
        if plan.pretty() == before:
            break
    return prune_columns(plan)
