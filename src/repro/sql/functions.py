"""Aggregate function specifications.

An :class:`AggregateSpec` is a monoid (zero / add / merge / finish), so
physical execution can combine partial aggregates in any order — the
commutativity + associativity property UPA's sensitivity inference
relies on (paper section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.common.errors import AnalysisError
from repro.sql.expr import Expression, Row

_SUPPORTED = ("count", "count_distinct", "sum", "avg", "min", "max",
              "var", "stddev")


@dataclass
class AggregateSpec:
    """One aggregate in a GROUP BY's output.

    Attributes:
        func: one of count / count_distinct / sum / avg / min / max.
        expr: argument expression; None means ``COUNT(*)``.
        alias: output column name.
    """

    func: str
    expr: Optional[Expression]
    alias: str

    def __post_init__(self) -> None:
        if self.func not in _SUPPORTED:
            raise AnalysisError(
                f"unsupported aggregate {self.func!r}; expected one of {_SUPPORTED}"
            )
        if self.expr is None and self.func != "count":
            raise AnalysisError(f"{self.func} requires an argument expression")

    def references(self) -> Set[str]:
        return self.expr.references() if self.expr is not None else set()

    # -- monoid interface ------------------------------------------------

    def zero(self) -> Any:
        if self.func == "count":
            return 0
        if self.func == "count_distinct":
            return set()
        if self.func == "sum":
            return None  # SQL SUM of no rows is NULL
        if self.func in ("avg",):
            return (0.0, 0)
        if self.func in ("var", "stddev"):
            return (0.0, 0.0, 0)  # (sum, sum of squares, count)
        return None  # min/max of no rows is NULL

    def add(self, acc: Any, row: Row) -> Any:
        if self.func == "count":
            if self.expr is None:
                return acc + 1
            return acc + (1 if self.expr.eval(row) is not None else 0)
        value = self.expr.eval(row)  # type: ignore[union-attr]
        if value is None:
            return acc
        if self.func == "count_distinct":
            acc.add(value)
            return acc
        if self.func == "sum":
            return value if acc is None else acc + value
        if self.func == "avg":
            total, n = acc
            return (total + value, n + 1)
        if self.func in ("var", "stddev"):
            total, squares, n = acc
            return (total + value, squares + value * value, n + 1)
        if self.func == "min":
            return value if acc is None or value < acc else acc
        return value if acc is None or value > acc else acc  # max

    def merge(self, a: Any, b: Any) -> Any:
        if self.func == "count":
            return a + b
        if self.func == "count_distinct":
            a |= b
            return a
        if self.func == "sum":
            if a is None:
                return b
            if b is None:
                return a
            return a + b
        if self.func == "avg":
            return (a[0] + b[0], a[1] + b[1])
        if self.func in ("var", "stddev"):
            return (a[0] + b[0], a[1] + b[1], a[2] + b[2])
        if self.func == "min":
            if a is None:
                return b
            if b is None:
                return a
            return a if a <= b else b
        if a is None:
            return b
        if b is None:
            return a
        return a if a >= b else b  # max

    def finish(self, acc: Any) -> Any:
        if self.func == "count_distinct":
            return len(acc)
        if self.func == "avg":
            total, n = acc
            return None if n == 0 else total / n
        if self.func in ("var", "stddev"):
            total, squares, n = acc
            if n == 0:
                return None
            variance = max(0.0, squares / n - (total / n) ** 2)
            return variance if self.func == "var" else variance ** 0.5
        return acc

    def __repr__(self) -> str:
        arg = "*" if self.expr is None else repr(self.expr)
        return f"{self.func}({arg}) AS {self.alias}"


def count_star(alias: str = "count") -> AggregateSpec:
    """``COUNT(*)``."""
    return AggregateSpec("count", None, alias)


def count(expr: Expression, alias: str = "count") -> AggregateSpec:
    """``COUNT(expr)`` (non-null values)."""
    return AggregateSpec("count", expr, alias)


def count_distinct(expr: Expression, alias: str = "count_distinct") -> AggregateSpec:
    return AggregateSpec("count_distinct", expr, alias)


def sum_(expr: Expression, alias: str = "sum") -> AggregateSpec:
    return AggregateSpec("sum", expr, alias)


def avg(expr: Expression, alias: str = "avg") -> AggregateSpec:
    return AggregateSpec("avg", expr, alias)


def var(expr: Expression, alias: str = "var") -> AggregateSpec:
    """Population variance."""
    return AggregateSpec("var", expr, alias)


def stddev(expr: Expression, alias: str = "stddev") -> AggregateSpec:
    """Population standard deviation."""
    return AggregateSpec("stddev", expr, alias)


def min_(expr: Expression, alias: str = "min") -> AggregateSpec:
    return AggregateSpec("min", expr, alias)


def max_(expr: Expression, alias: str = "max") -> AggregateSpec:
    return AggregateSpec("max", expr, alias)
