"""Logical query plans.

Plan nodes are immutable-ish trees that carry an output schema.  They
are built by the DataFrame API or the SQL parser, rewritten by the
optimizer, and executed by :mod:`repro.sql.physical`.  The FLEX
baseline walks these trees for its static sensitivity analysis.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.sql.expr import Expression
from repro.sql.functions import AggregateSpec
from repro.sql.types import ANY, Field, Schema

JOIN_TYPES = ("inner", "left", "semi", "anti")


class LogicalPlan:
    """Base class: every node knows its children and output schema."""

    def children(self) -> Sequence["LogicalPlan"]:
        raise NotImplementedError

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        """Rebuild this node with new children (for optimizer rewrites)."""
        raise NotImplementedError

    # -- pretty printing --------------------------------------------------

    def _describe(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self._describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.pretty()

    # -- traversal helpers -------------------------------------------------

    def walk(self):
        """Yield every node, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def base_tables(self) -> "set[str]":
        """Names of every base table this plan scans.

        Used by the static analyzer and the SQL bridge to decide which
        subtrees touch the protected table.
        """
        return {
            node.table_name for node in self.walk()
            if isinstance(node, Scan)
        }


class Scan(LogicalPlan):
    """Read a named table from the catalog."""

    def __init__(self, table_name: str, schema: Schema):
        self.table_name = table_name
        self._schema = schema

    def children(self) -> Sequence[LogicalPlan]:
        return ()

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Scan":
        if children:
            raise AnalysisError("Scan takes no children")
        return self

    def _describe(self) -> str:
        return f"Scan({self.table_name})"


class Filter(LogicalPlan):
    """Keep rows where ``condition`` is true."""

    def __init__(self, child: LogicalPlan, condition: Expression):
        missing = condition.references() - set(child.schema.names)
        if missing:
            raise AnalysisError(
                f"filter references unknown columns {sorted(missing)}; "
                f"child has {child.schema.names}"
            )
        self.child = child
        self.condition = condition

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        (child,) = children
        return Filter(child, self.condition)

    def _describe(self) -> str:
        return f"Filter({self.condition!r})"


class Project(LogicalPlan):
    """Compute output columns from expressions."""

    def __init__(self, child: LogicalPlan, exprs: Sequence[Expression]):
        child_cols = set(child.schema.names)
        for expr in exprs:
            missing = expr.references() - child_cols
            if missing:
                raise AnalysisError(
                    f"projection {expr!r} references unknown columns "
                    f"{sorted(missing)}"
                )
        names = [e.output_name() for e in exprs]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate output names in projection: {names}")
        self.child = child
        self.exprs = list(exprs)
        self._schema = Schema([Field(n, ANY) for n in names])

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.exprs)

    def _describe(self) -> str:
        return f"Project({', '.join(e.output_name() for e in self.exprs)})"


class Join(LogicalPlan):
    """Equi-join on key expression pairs, with an optional residual.

    ``how`` in {'inner', 'left', 'semi', 'anti'}.  Semi/anti output only
    the left side's columns (SQL EXISTS / NOT EXISTS).

    ``residual`` is an extra match condition evaluated per candidate
    pair *after* the equi-key match.  Because semi/anti self-joins can
    have identical column names on both sides (e.g. TPC-H Q21 joins
    lineitem with lineitem), the residual sees the right side's columns
    under the prefix :data:`RESIDUAL_RIGHT_PREFIX` — e.g.
    ``col("__r_l_suppkey") != col("l_suppkey")``.
    """

    RESIDUAL_RIGHT_PREFIX = "__r_"

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        keys: Sequence[Tuple[Expression, Expression]],
        how: str = "inner",
        residual: Optional[Expression] = None,
    ):
        if how not in JOIN_TYPES:
            raise AnalysisError(f"join type {how!r} not in {JOIN_TYPES}")
        if not keys:
            raise AnalysisError("join needs at least one key pair")
        left_cols = set(left.schema.names)
        right_cols = set(right.schema.names)
        for left_key, right_key in keys:
            if left_key.references() - left_cols:
                raise AnalysisError(
                    f"left join key {left_key!r} not in {sorted(left_cols)}"
                )
            if right_key.references() - right_cols:
                raise AnalysisError(
                    f"right join key {right_key!r} not in {sorted(right_cols)}"
                )
        if residual is not None:
            prefix = self.RESIDUAL_RIGHT_PREFIX
            for ref in residual.references():
                if ref.startswith(prefix):
                    if ref[len(prefix):] not in right_cols:
                        raise AnalysisError(
                            f"residual references unknown right column {ref!r}"
                        )
                elif ref not in left_cols:
                    raise AnalysisError(
                        f"residual references unknown left column {ref!r}"
                    )
        self.left = left
        self.right = right
        self.keys = list(keys)
        self.how = how
        self.residual = residual
        if how in ("semi", "anti"):
            self._schema = left.schema
        else:
            overlap = left_cols & right_cols
            if overlap:
                raise AnalysisError(
                    f"join output column collision: {sorted(overlap)}; "
                    "project/rename one side before joining"
                )
            self._schema = left.schema.merge(right.schema)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.left, self.right)

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.keys, self.how, residual=self.residual)

    def _describe(self) -> str:
        key_desc = ", ".join(f"{l!r}={r!r}" for l, r in self.keys)
        extra = f", residual={self.residual!r}" if self.residual is not None else ""
        return f"Join[{self.how}]({key_desc}{extra})"


class Aggregate(LogicalPlan):
    """GROUP BY with aggregate outputs (empty group list = global agg)."""

    def __init__(
        self,
        child: LogicalPlan,
        group_exprs: Sequence[Expression],
        aggregates: Sequence[AggregateSpec],
    ):
        child_cols = set(child.schema.names)
        for expr in group_exprs:
            if expr.references() - child_cols:
                raise AnalysisError(f"group expression {expr!r} references unknown columns")
        for agg in aggregates:
            if agg.references() - child_cols:
                raise AnalysisError(f"aggregate {agg!r} references unknown columns")
        if not aggregates and not group_exprs:
            raise AnalysisError("aggregate needs group expressions or aggregates")
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        names = [e.output_name() for e in self.group_exprs] + [
            a.alias for a in self.aggregates
        ]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate output names in aggregate: {names}")
        self._schema = Schema([Field(n, ANY) for n in names])

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_exprs, self.aggregates)

    def _describe(self) -> str:
        groups = ", ".join(e.output_name() for e in self.group_exprs)
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"Aggregate(by=[{groups}], aggs=[{aggs}])"


class Sort(LogicalPlan):
    """ORDER BY one or more (expression, ascending) pairs."""

    def __init__(self, child: LogicalPlan, orders: Sequence[Tuple[Expression, bool]]):
        child_cols = set(child.schema.names)
        for expr, _asc in orders:
            if expr.references() - child_cols:
                raise AnalysisError(f"sort key {expr!r} references unknown columns")
        self.child = child
        self.orders = list(orders)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.orders)

    def _describe(self) -> str:
        keys = ", ".join(
            f"{e!r} {'asc' if asc else 'desc'}" for e, asc in self.orders
        )
        return f"Sort({keys})"


class Limit(LogicalPlan):
    """Keep the first N rows."""

    def __init__(self, child: LogicalPlan, n: int):
        if n < 0:
            raise AnalysisError("limit must be non-negative")
        self.child = child
        self.n = n

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.n)

    def _describe(self) -> str:
        return f"Limit({self.n})"


class Union(LogicalPlan):
    """UNION ALL: concatenate plans with identical column names."""

    def __init__(self, inputs: Sequence[LogicalPlan]):
        if len(inputs) < 2:
            raise AnalysisError("UNION ALL needs at least two inputs")
        names = inputs[0].schema.names
        for child in inputs[1:]:
            if child.schema.names != names:
                raise AnalysisError(
                    f"UNION ALL column mismatch: {names} vs "
                    f"{child.schema.names}"
                )
        self.inputs = list(inputs)

    def children(self) -> Sequence[LogicalPlan]:
        return tuple(self.inputs)

    @property
    def schema(self) -> Schema:
        return self.inputs[0].schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Union":
        return Union(list(children))

    def _describe(self) -> str:
        return f"Union({len(self.inputs)} inputs)"


class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    def __init__(self, child: LogicalPlan):
        self.child = child

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)
