"""Vectorized predicate compilation over columnar partition blocks.

:func:`compile_mask` turns a supported predicate
:class:`~repro.sql.expr.Expression` into a function
``block -> bool ndarray`` evaluated whole-column at a time over a
:class:`~repro.engine.columnar.ColumnarPartition` — no per-row dict is
ever built.  The supported subset is the one filters in the TPC-H
workloads actually use: comparisons, ``and``/``or``/``not``, and
arithmetic over columns and literals.  Anything else (LIKE, IN,
IS NULL, CASE, function calls) returns ``None`` and the executor keeps
the row-at-a-time compiled path for that predicate.

Semantics mirror ``Expression.eval`` exactly, including the SQL-NULL
rules (comparison with ``None`` is False, arithmetic with ``None`` is
``None``): numeric columns are evaluated with numpy ufuncs — which
produce bit-identical float64 results to the per-row Python operators —
while object columns (dates, strings, anything holding ``None``) drop
to a guarded per-value loop over just that column.  The guarded loop
still avoids the expensive part of row execution, the dict boxing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.engine.columnar import ColumnarPartition
from repro.sql.expr import BinaryOp, Column, Expression, Literal, UnaryOp

MaskFn = Callable[[ColumnarPartition], np.ndarray]
ValueFn = Callable[[ColumnarPartition], Any]


class _NotVectorizable(Exception):
    """Internal: this expression is outside the supported subset."""


_NUMPY_CMP = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_PY_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NUMPY_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}

_PY_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def compile_mask(expr: Expression) -> Optional[MaskFn]:
    """A ``block -> bool ndarray`` evaluator, or None if unsupported."""
    try:
        return _compile_bool(expr)
    except _NotVectorizable:
        return None


# ----------------------------------------------------------------------
# Boolean level
# ----------------------------------------------------------------------


def _compile_bool(expr: Expression) -> MaskFn:
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return _AndMask(_compile_bool(expr.left), _compile_bool(expr.right))
        if expr.op == "or":
            return _OrMask(_compile_bool(expr.left), _compile_bool(expr.right))
        if expr.op in _NUMPY_CMP:
            return _CompareMask(
                _compile_value(expr.left), _compile_value(expr.right), expr.op
            )
    if isinstance(expr, UnaryOp) and expr.op == "not":
        return _NotMask(_compile_bool(expr.operand))
    raise _NotVectorizable(type(expr).__name__)


class _AndMask:
    __slots__ = ("left", "right")

    def __init__(self, left: MaskFn, right: MaskFn):
        self.left, self.right = left, right

    def __call__(self, block: ColumnarPartition) -> np.ndarray:
        return self.left(block) & self.right(block)


class _OrMask:
    __slots__ = ("left", "right")

    def __init__(self, left: MaskFn, right: MaskFn):
        self.left, self.right = left, right

    def __call__(self, block: ColumnarPartition) -> np.ndarray:
        return self.left(block) | self.right(block)


class _NotMask:
    __slots__ = ("operand",)

    def __init__(self, operand: MaskFn):
        self.operand = operand

    def __call__(self, block: ColumnarPartition) -> np.ndarray:
        return ~self.operand(block)


class _CompareMask:
    """Comparison with SQL-NULL semantics (NULL compares False)."""

    __slots__ = ("left", "right", "op")

    def __init__(self, left: ValueFn, right: ValueFn, op: str):
        self.left, self.right, self.op = left, right, op

    def __call__(self, block: ColumnarPartition) -> np.ndarray:
        a = self.left(block)
        b = self.right(block)
        if _is_object(a) or _is_object(b) or a is None or b is None:
            cmp = _PY_CMP[self.op]
            out = np.empty(len(block), dtype=bool)
            for i, (x, y) in enumerate(_pairs(a, b, len(block))):
                out[i] = (
                    False if x is None or y is None else bool(cmp(x, y))
                )
            return out
        return _NUMPY_CMP[self.op](a, b)


# ----------------------------------------------------------------------
# Value level (column vectors and scalars)
# ----------------------------------------------------------------------


def _compile_value(expr: Expression) -> ValueFn:
    if isinstance(expr, Column):
        return _ColumnValue(expr.name)
    if isinstance(expr, Literal):
        return _LiteralValue(expr.value)
    if isinstance(expr, BinaryOp) and expr.op in _NUMPY_ARITH:
        return _ArithValue(
            _compile_value(expr.left), _compile_value(expr.right), expr.op
        )
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return _NegValue(_compile_value(expr.operand))
    raise _NotVectorizable(type(expr).__name__)


class _ColumnValue:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, block: ColumnarPartition):
        return block.numpy_column(self.name)


class _LiteralValue:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __call__(self, _block: ColumnarPartition):
        return self.value


class _ArithValue:
    """Arithmetic with SQL-NULL semantics (NULL propagates)."""

    __slots__ = ("left", "right", "op")

    def __init__(self, left: ValueFn, right: ValueFn, op: str):
        self.left, self.right, self.op = left, right, op

    def __call__(self, block: ColumnarPartition):
        a = self.left(block)
        b = self.right(block)
        if a is None or b is None:
            return None
        if _is_object(a) or _is_object(b):
            arith = _PY_ARITH[self.op]
            out = np.empty(len(block), dtype=object)
            for i, (x, y) in enumerate(_pairs(a, b, len(block))):
                out[i] = None if x is None or y is None else arith(x, y)
            return out
        return _NUMPY_ARITH[self.op](a, b)


class _NegValue:
    __slots__ = ("operand",)

    def __init__(self, operand: ValueFn):
        self.operand = operand

    def __call__(self, block: ColumnarPartition):
        value = self.operand(block)
        if value is None:
            return None
        if _is_object(value):
            out = np.empty(len(value), dtype=object)
            for i, x in enumerate(value):
                out[i] = None if x is None else -x
            return out
        return -value


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _is_object(value: Any) -> bool:
    return isinstance(value, np.ndarray) and value.dtype == object


def _pairs(a: Any, b: Any, n: int):
    """Zip two operands elementwise, broadcasting scalars to length n."""
    a_seq = a if isinstance(a, np.ndarray) else (a,) * n
    b_seq = b if isinstance(b, np.ndarray) else (b,) * n
    return zip(a_seq, b_seq)
