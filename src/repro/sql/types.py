"""Schema and column types for the SQL layer.

Rows are plain dicts (column name -> value); the schema carries names
and declared types for analysis (column resolution, pruning, and FLEX's
metadata computation).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class DataType:
    """Marker base class for column types."""

    name = "any"

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


class IntegerType(DataType):
    name = "int"


class FloatType(DataType):
    name = "float"


class StringType(DataType):
    name = "string"


class DateType(DataType):
    name = "date"


class BooleanType(DataType):
    name = "bool"


class AnyType(DataType):
    name = "any"


INTEGER = IntegerType()
FLOAT = FloatType()
STRING = StringType()
DATE = DateType()
BOOLEAN = BooleanType()
ANY = AnyType()


def infer_type(value: Any) -> DataType:
    """Best-effort type inference from a Python value."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, datetime.date):
        return DATE
    return ANY


@dataclass(frozen=True)
class Field:
    """A named, typed column."""

    name: str
    dtype: DataType = ANY

    def __repr__(self) -> str:
        return f"{self.name}:{self.dtype.name}"


class Schema:
    """Ordered collection of fields with O(1) name lookup."""

    def __init__(self, fields: Sequence[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._by_name: Dict[str, Field] = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            names = [f.name for f in self.fields]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Schema":
        return cls([Field(n) for n in names])

    @classmethod
    def from_rows(cls, rows: Sequence[Dict[str, Any]]) -> "Schema":
        """Infer a schema from sample rows (first non-null value per column)."""
        if not rows:
            return cls([])
        names = list(rows[0].keys())
        fields = []
        for name in names:
            dtype: DataType = ANY
            for row in rows:
                value = row.get(name)
                if value is not None:
                    dtype = infer_type(value)
                    break
            fields.append(Field(name, dtype))
        return cls(fields)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._by_name)}"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def merge(self, other: "Schema") -> "Schema":
        """Schema of a join output (column names must not collide)."""
        return Schema(list(self.fields) + list(other.fields))

    def select(self, names: Sequence[str]) -> "Schema":
        return Schema([self.field(n) for n in names])

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"Schema({inner})"
