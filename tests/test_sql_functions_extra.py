"""Tests for var/stddev aggregates and remaining scalar functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import SQLSession, col
from repro.sql.expr import FuncCall, lit
from repro.sql.functions import AggregateSpec, stddev, var


class TestVarianceAggregates:
    @pytest.fixture
    def session(self):
        sess = SQLSession()
        sess.create_table(
            "t", [{"v": float(v), "g": i % 3}
                  for i, v in enumerate([2, 4, 4, 4, 5, 5, 7, 9])]
        )
        return sess

    def test_var_global(self, session):
        assert session.table("t").agg(var(col("v"), "x")).scalar() == 4.0

    def test_stddev_global(self, session):
        assert session.table("t").agg(stddev(col("v"), "x")).scalar() == 2.0

    def test_var_of_constant_is_zero(self):
        sess = SQLSession()
        sess.create_table("c", [{"v": 5.0}] * 10)
        assert sess.table("c").agg(var(col("v"), "x")).scalar() == 0.0

    def test_var_empty_is_null(self):
        spec = var(col("v"), "x")
        assert spec.finish(spec.zero()) is None

    def test_var_skips_nulls(self):
        spec = var(col("v"), "x")
        acc = spec.zero()
        for value in (1.0, None, 3.0):
            acc = spec.add(acc, {"v": value})
        assert spec.finish(acc) == pytest.approx(1.0)

    @given(
        left=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        right=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_var_merge_matches_whole(self, left, right):
        spec = var(col("v"), "x")

        def fold(values):
            acc = spec.zero()
            for value in values:
                acc = spec.add(acc, {"v": value})
            return acc

        merged = spec.finish(spec.merge(fold(left), fold(right)))
        whole = spec.finish(fold(left + right))
        assert merged == pytest.approx(whole, abs=1e-6)

    @given(values=st.lists(st.floats(-50, 50), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_var_matches_numpy(self, values):
        spec = var(col("v"), "x")
        acc = spec.zero()
        for value in values:
            acc = spec.add(acc, {"v": value})
        assert spec.finish(acc) == pytest.approx(
            float(np.var(values)), abs=1e-6
        )


class TestScalarFunctions:
    ROW = {"s": "Hello", "d": None}

    def test_substring(self):
        expr = FuncCall("substring", [lit("abcdef"), lit(2), lit(3)])
        assert expr.eval({}) == "bcd"

    def test_lower_upper_roundtrip(self):
        lowered = FuncCall("lower", [lit("MiXeD")])
        assert FuncCall("upper", [lowered]).eval({}) == "MIXED"

    def test_round(self):
        assert FuncCall("round", [lit(3.14159), lit(2)]).eval({}) == 3.14

    def test_month(self):
        import datetime

        expr = FuncCall("month", [lit(datetime.date(1995, 7, 4))])
        assert expr.eval({}) == 7

    def test_coalesce_takes_first_non_null(self):
        expr = FuncCall("coalesce", [col("d"), lit(None), lit(9)])
        assert expr.eval(self.ROW) == 9

    def test_coalesce_all_null(self):
        expr = FuncCall("coalesce", [col("d")])
        assert expr.eval(self.ROW) is None
