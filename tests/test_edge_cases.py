"""Edge-case tests across the stack: tiny datasets, degenerate configs,
boundary conditions the benchmarks never hit."""

import random

import numpy as np
import pytest

from repro.common.errors import DPError
from repro.core import MapReduceQuery, UPAConfig, UPASession
from repro.core.inference import InferenceConfig, infer_output_range
from repro.core.sampling import partition_and_sample


class _TinyQuery(MapReduceQuery):
    name = "tiny-sum"
    protected_table = "vals"
    output_dim = 1

    def map_record(self, record, aux):
        return float(record["v"])

    def zero(self):
        return 0.0

    def combine(self, a, b):
        return a + b

    def finalize(self, agg, aux):
        return np.asarray([agg])

    def sample_domain_record(self, rng, tables):
        return {"v": float(rng.randrange(100))}


class _ConstantDomainQuery(_TinyQuery):
    """Domain records always contribute 5 (keeps neighbours two-point)."""

    def sample_domain_record(self, rng, tables):
        return {"v": 5.0}


class _ZeroDomainQuery(_TinyQuery):
    """Domain records contribute nothing."""

    def sample_domain_record(self, rng, tables):
        return {"v": 0.0}


def _tables(values):
    return {"vals": [{"v": float(v)} for v in values]}


class TestTinyDatasets:
    def test_two_record_dataset(self):
        session = UPASession(UPAConfig(sample_size=1000, seed=0))
        result = session.run(_TinyQuery(), _tables([1, 2]), epsilon=1.0)
        # every record sampled; exact neighbour set
        assert result.sample_size == 2
        assert result.plain_output[0] == 3.0

    def test_single_record_dataset(self):
        session = UPASession(UPAConfig(sample_size=10, seed=0))
        result = session.run(_TinyQuery(), _tables([42]), epsilon=1.0)
        assert result.plain_output[0] == 42.0
        assert result.removal_outputs.shape == (1, 1)
        assert result.removal_outputs[0, 0] == 0.0

    def test_all_identical_records(self):
        session = UPASession(UPAConfig(sample_size=50, seed=0))
        result = session.run(
            _ConstantDomainQuery(), _tables([5] * 100), epsilon=1.0
        )
        # removals give sum-5, additions sum+5: two-point distribution,
        # so the discrete fallback produces the exact range.
        assert result.inferred_range.used_fallback[0]
        assert result.local_sensitivity == 10.0

    def test_enforcer_exhaustion_on_tiny_repeats(self):
        """Repeated attacks on a tiny dataset run out of removable
        records and fail closed (exception), never open."""
        session = UPASession(UPAConfig(sample_size=10, seed=0))
        tables = _tables(range(6))
        session.run(_TinyQuery(), tables, epsilon=1.0)
        with pytest.raises(DPError):
            for _ in range(5):
                neighbour = _tables(range(5))
                session.run(_TinyQuery(), neighbour, epsilon=1.0)
                tables = neighbour

    def test_zero_valued_dataset(self):
        session = UPASession(UPAConfig(sample_size=10, seed=0))
        result = session.run(
            _ZeroDomainQuery(), _tables([0, 0, 0]), epsilon=1.0
        )
        assert result.local_sensitivity == 0.0
        # zero sensitivity => zero noise
        assert result.noisy_scalar() == result.raw_output[0]


class TestSamplingBoundaries:
    def test_sample_size_one(self):
        sample = partition_and_sample(
            _TinyQuery(), _tables(range(50)), 1, random.Random(0)
        )
        assert sample.sample_size == 1

    def test_sample_equals_dataset(self):
        sample = partition_and_sample(
            _TinyQuery(), _tables(range(20)), 20, random.Random(0)
        )
        assert sample.sample_size == 20
        assert sample.remaining == ([], [])


class TestInferenceBoundaries:
    def test_single_neighbour_output(self):
        inferred = infer_output_range(np.array([[7.0]]), population=100)
        assert inferred.lower[0] <= 7.0 <= inferred.upper[0]

    def test_two_identical_outputs(self):
        inferred = infer_output_range(
            np.array([[3.0], [3.0]]), population=100
        )
        assert inferred.local_sensitivity == 0.0

    def test_population_smaller_than_sample(self):
        rng = np.random.default_rng(0)
        outputs = rng.normal(0, 1, size=(500, 1))
        inferred = infer_output_range(outputs, population=10)
        assert np.isfinite(inferred.local_sensitivity)

    def test_distinct_threshold_boundary(self):
        # exactly `threshold` distinct values still uses the fallback
        config = InferenceConfig(discrete_distinct_threshold=3)
        outputs = np.array([[1.0], [2.0], [3.0]] * 10)
        inferred = infer_output_range(outputs, 1000, config)
        assert inferred.used_fallback[0]
        # one more distinct value switches to the normal fit
        outputs = np.array([[1.0], [2.0], [3.0], [4.0]] * 10)
        inferred = infer_output_range(outputs, 1000, config)
        assert not inferred.used_fallback[0]

    def test_huge_magnitudes(self):
        outputs = np.array([[1e15], [1.1e15]] * 20)
        inferred = infer_output_range(outputs, 1000)
        assert inferred.contains(np.array([1.05e15]))


class TestVectorOutputs:
    def test_vector_clamp_per_coordinate(self):
        outputs = np.array([[0.0, 100.0], [10.0, 200.0]] * 20)
        inferred = infer_output_range(outputs, 100)
        clamped = inferred.clamp(np.array([-5.0, 150.0]))
        assert clamped[0] == inferred.lower[0]
        assert clamped[1] == 150.0

    def test_vector_coverage_requires_all_coordinates(self):
        outputs = np.array([[0.0, 0.0], [10.0, 10.0]] * 10)
        inferred = infer_output_range(outputs, 100)
        half_out = np.array([[5.0, 99.0]])
        assert inferred.coverage(half_out) == 0.0
