"""Tests for the observability subsystem: tracing, metrics, ledger.

Covers the repro.obs package in isolation, its integration with the
engine (span propagation across pool threads, histogram recording, the
auto-wired JobListener), the UPASession audit trail, and the CLI
artifact round-trip (``repro run --trace/--ledger`` -> ``repro
report``).
"""

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.engine import EngineContext
from repro.engine.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
)
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    ObservedRun,
    PrivacyLedger,
    Tracer,
    current_span,
    get_tracer,
    make_entry,
    run_header,
    set_tracer,
    trace,
    use_tracer,
)
from repro.obs.report import PHASE_ORDER


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_records_timing_and_name(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            pass
        assert len(tracer) == 1
        done = tracer.spans()[0]
        assert done is span
        assert done.name == "work"
        assert done.attributes["size"] == 3
        assert done.end is not None and done.end >= done.start
        assert done.duration >= 0.0

    def test_nesting_sets_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        inner_done, outer_done = tracer.spans()
        assert inner_done.name == "inner"
        assert inner_done.parent_id == outer_done.span_id
        assert outer_done.parent_id is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        span = tracer.spans()[0]
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None

    def test_set_attribute_while_live(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set_attribute("records", 42)
        assert tracer.spans()[0].attributes["records"] == 42

    def test_find_and_phase_spans(self):
        tracer = Tracer()
        with tracer.span("phase:noise"):
            pass
        with tracer.span("phase:map"):
            pass
        with tracer.span("other"):
            pass
        assert [s.name for s in tracer.find("other")] == ["other"]
        # start order, not completion or canonical order
        assert [s.name for s in tracer.phase_spans()] == [
            "phase:noise", "phase:map",
        ]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_thread_safety_of_record(self):
        tracer = Tracer()

        def work():
            for _ in range(100):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 800
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == 800  # ids unique under contention

    def test_chrome_trace_format(self):
        tracer = Tracer(header={"workload": "t", "epsilon": 0.5})
        with tracer.span("outer"):
            with tracer.span("inner", n=7):
                pass
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"] == {"workload": "t", "epsilon": 0.5}
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert "span_id" in event["args"]
        inner = next(e for e in events if e["name"] == "inner")
        outer = next(e for e in events if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert inner["args"]["n"] == 7
        json.dumps(doc)  # must be serializable as-is

    def test_write_exports(self, tmp_path):
        tracer = Tracer(header={"h": 1})
        with tracer.span("s"):
            pass
        chrome = tmp_path / "t.json"
        tree = tmp_path / "spans.json"
        tracer.write_chrome_trace(str(chrome))
        tracer.write_json(str(tree))
        with open(chrome) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"][0]["name"] == "s"
        with open(tree) as handle:
            doc = json.load(handle)
        assert doc["header"] == {"h": 1}
        assert doc["spans"][0]["name"] == "s"


class TestNullTracerAndAmbient:
    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", big=1)
        with span:
            span.set_attribute("x", 1)
        assert len(NULL_TRACER) == 0
        # every call returns the same shared no-op object
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_tracer_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)

    def test_ambient_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace("scoped", k=1):
                pass
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans()] == ["scoped"]
        assert tracer.spans()[0].attributes == {"k": 1}

    def test_trace_is_free_when_disabled(self):
        with trace("ignored"):
            pass  # ambient is NULL_TRACER: nothing recorded anywhere

    def test_trace_as_decorator(self):
        tracer = Tracer()

        @trace("decorated")
        def f(x):
            return x + 1

        assert f(1) == 2  # disabled: plain call
        with use_tracer(tracer):
            assert f(2) == 3
        assert [s.name for s in tracer.spans()] == ["decorated"]

    def test_trace_decorator_defaults_to_qualname(self):
        tracer = Tracer()

        @trace()
        def named():
            return 1

        with use_tracer(tracer):
            named()
        assert "named" in tracer.spans()[0].name


# ---------------------------------------------------------------------------
# Metrics: percentiles, histograms, gauges, snapshot diff
# ---------------------------------------------------------------------------


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero samples"):
            percentile([], 50.0)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_tied_values(self):
        assert percentile([3.0, 3.0, 3.0, 3.0], 90.0) == 3.0

    def test_matches_numpy_linear_interpolation(self):
        data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert percentile(data, q) == pytest.approx(
                float(np.percentile(data, q))
            )

    def test_input_order_irrelevant(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0


class TestHistogramSummary:
    def test_empty_summary_is_zeroed(self):
        summary = HistogramSummary.from_values([])
        assert summary.count == 0
        assert summary.mean == 0.0 and summary.p99 == 0.0

    def test_summary_statistics(self):
        summary = HistogramSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.mean == 2.5
        assert summary.p50 == 2.5

    def test_to_dict_keys(self):
        d = HistogramSummary.from_values([1.0]).to_dict()
        assert set(d) == {"count", "min", "max", "mean", "p50", "p90",
                          "p95", "p99", "stddev"}

    def test_p95_and_stddev(self):
        summary = HistogramSummary.from_values([2.0, 4.0, 4.0, 4.0, 5.0,
                                                5.0, 7.0, 9.0])
        assert summary.stddev == pytest.approx(2.0)
        assert summary.p95 == pytest.approx(8.3)

    def test_defaulted_fields_accept_old_positional_construction(self):
        summary = HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        assert summary.p95 == 0.0 and summary.stddev == 0.0


class TestMetricsRegistry:
    def test_observe_and_summary(self):
        registry = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            registry.observe("lat", v)
        summary = registry.histogram_summary("lat")
        assert summary.count == 3 and summary.p50 == 2.0
        assert registry.histogram_summary("missing").count == 0

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 4)
        registry.set_gauge("depth", 9)
        assert registry.get_gauge("depth") == 9.0
        assert registry.get_gauge("missing") == 0.0

    def test_snapshot_includes_all_stores(self):
        registry = MetricsRegistry()
        registry.incr("c")
        registry.observe("h", 1.5)
        registry.set_gauge("g", 2.0)
        snap = registry.snapshot()
        assert snap.get("c") == 1.0
        assert snap.histogram("h") == (1.5,)
        assert snap.get_gauge("g") == 2.0
        registry.reset()
        empty = registry.snapshot()
        assert not empty.counters and not empty.histograms
        assert not empty.gauges


class TestMetricsSnapshotDiff:
    def test_diff_with_disjoint_counter_keys(self):
        earlier = MetricsSnapshot(counters={"a": 2.0})
        later = MetricsSnapshot(counters={"b": 3.0})
        delta = later.diff(earlier)
        assert delta.get("a") == -2.0  # reset/absent counts negative
        assert delta.get("b") == 3.0
        assert delta.get("missing") == 0.0

    def test_diff_histograms_take_appended_suffix(self):
        earlier = MetricsSnapshot(histograms={"h": (1.0, 2.0)})
        later = MetricsSnapshot(histograms={"h": (1.0, 2.0, 3.0, 4.0)})
        assert later.diff(earlier).histogram("h") == (3.0, 4.0)

    def test_diff_histogram_new_name_keeps_everything(self):
        earlier = MetricsSnapshot()
        later = MetricsSnapshot(histograms={"new": (5.0,)})
        assert later.diff(earlier).histogram("new") == (5.0,)

    def test_diff_histogram_absent_later_is_dropped(self):
        earlier = MetricsSnapshot(histograms={"old": (1.0,)})
        later = MetricsSnapshot()
        assert later.diff(earlier).histogram("old") == ()

    def test_diff_gauges_keep_current_value(self):
        earlier = MetricsSnapshot(gauges={"g": 1.0})
        later = MetricsSnapshot(gauges={"g": 5.0})
        assert later.diff(earlier).get_gauge("g") == 5.0

    def test_diff_drops_gauge_deleted_in_between(self):
        earlier = MetricsSnapshot(gauges={"stale": 7.0})
        later = MetricsSnapshot(gauges={"live": 1.0})
        delta = later.diff(earlier)
        assert "stale" not in delta.gauges
        assert delta.get_gauge("live") == 1.0

    def test_delete_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 2.0)
        registry.delete_gauge("g")
        registry.delete_gauge("never-existed")  # no-op, no raise
        assert "g" not in registry.snapshot().gauges

    def test_engine_level_diff(self):
        registry = MetricsRegistry()
        registry.incr("jobs_run")
        registry.observe("task_seconds", 0.5)
        before = registry.snapshot()
        registry.incr("jobs_run")
        registry.observe("task_seconds", 0.7)
        delta = registry.snapshot().diff(before)
        assert delta.get("jobs_run") == 1.0
        assert delta.histogram("task_seconds") == (0.7,)


# ---------------------------------------------------------------------------
# Privacy ledger
# ---------------------------------------------------------------------------


def _entry(sequence=0, query="q", epsilon=0.1, cache_hit=False,
           clamped=False, matched_prior=False, removed=0):
    return make_entry(
        sequence=sequence,
        query=query,
        epsilon_charged=epsilon,
        delta=0.0,
        mechanism="laplace",
        sample_size=100,
        mean=np.array([1.0, 2.0]),
        std=np.array([0.1, 0.2]),
        lower=np.array([0.5, 1.5]),
        upper=np.array([1.5, 2.5]),
        local_sensitivity=2.0,
        estimated_local_sensitivity=1.8,
        clamped=clamped,
        matched_prior=matched_prior,
        records_removed=removed,
        cache_hit=cache_hit,
        elapsed_seconds=0.01,
    )


class TestPrivacyLedger:
    def test_make_entry_normalizes_numpy(self):
        entry = _entry()
        assert entry.fitted_mean == (1.0, 2.0)
        assert isinstance(entry.fitted_mean, tuple)
        assert isinstance(entry.local_sensitivity, float)

    def test_append_only_no_clear(self):
        ledger = PrivacyLedger()
        assert not hasattr(ledger, "clear")
        ledger.append(_entry(0))
        ledger.append(_entry(1))
        assert len(ledger) == 2
        assert [e.sequence for e in ledger] == [0, 1]

    def test_next_sequence_tracks_length(self):
        ledger = PrivacyLedger()
        assert ledger.next_sequence() == 0
        ledger.append(_entry(0))
        assert ledger.next_sequence() == 1

    def test_query_filters(self):
        ledger = PrivacyLedger()
        ledger.append(_entry(0, query="a"))
        ledger.append(_entry(1, query="b", clamped=True))
        ledger.append(_entry(2, query="a", cache_hit=True, epsilon=0.0))
        assert len(ledger.query(query_name="a")) == 2
        assert len(ledger.query(clamped=True)) == 1
        assert len(ledger.query(query_name="a", cache_hit=False)) == 1
        assert len(ledger.query(matched_prior=True)) == 0

    def test_totals(self):
        ledger = PrivacyLedger()
        ledger.append(_entry(0, epsilon=0.1, clamped=True, removed=2))
        ledger.append(_entry(1, epsilon=0.2, cache_hit=True))
        totals = ledger.totals()
        assert totals["entries"] == 2
        assert totals["epsilon_charged"] == pytest.approx(0.3)
        assert totals["clamp_count"] == 1
        assert totals["records_removed"] == 2
        assert totals["cache_hits"] == 1

    def test_ensure_header_fills_once(self):
        ledger = PrivacyLedger()
        ledger.ensure_header({"epsilon": 0.1})
        ledger.ensure_header({"epsilon": 9.9})
        assert ledger.header == {"epsilon": 0.1}

    def test_jsonl_round_trip(self, tmp_path):
        ledger = PrivacyLedger(header={"workload": "t", "epsilon": 0.1})
        ledger.append(_entry(0))
        ledger.append(_entry(1, cache_hit=True, epsilon=0.0))
        path = tmp_path / "ledger.jsonl"
        ledger.write_jsonl(str(path))

        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + 2 entries
        header = json.loads(lines[0])
        assert header["format"] == PrivacyLedger.FORMAT
        assert header["workload"] == "t"

        loaded = PrivacyLedger.read_jsonl(str(path))
        assert loaded.header == {"workload": "t", "epsilon": 0.1}
        assert len(loaded) == 2
        first = loaded.entries()[0]
        assert first.fitted_mean == (1.0, 2.0)
        assert first.local_sensitivity == 2.0
        assert loaded.entries()[1].cache_hit is True

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(PrivacyLedger.read_jsonl(str(path))) == 0


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineTracing:
    def test_install_tracer_wires_scheduler_and_listener(self):
        ctx = EngineContext()
        tracer = Tracer()
        assert ctx.job_listener is None
        ctx.install_tracer(tracer)
        assert ctx.tracer is tracer
        assert ctx.scheduler.tracer is tracer
        assert ctx.job_listener is not None  # auto-wired

    def test_install_tracer_without_events(self):
        ctx = EngineContext()
        ctx.install_tracer(Tracer(), events=False)
        assert ctx.job_listener is None

    def test_install_null_tracer_does_not_wire_listener(self):
        ctx = EngineContext()
        ctx.install_tracer(NULL_TRACER)
        assert ctx.job_listener is None

    def test_jobs_emit_spans_with_parents_across_threads(self):
        ctx = EngineContext()
        tracer = Tracer()
        ctx.install_tracer(tracer)
        with tracer.span("driver"):
            ctx.parallelize(range(100), 4).map(lambda v: v * 2).collect()
        jobs = tracer.find("engine.job")
        assert len(jobs) == 1
        driver = tracer.find("driver")[0]
        # the job span parents under the live driver span even though
        # tasks execute on pool threads
        assert jobs[0].parent_id == driver.span_id
        assert jobs[0].attributes["partitions"] == 4

    def test_job_and_task_histograms_recorded(self):
        ctx = EngineContext()
        ctx.parallelize(range(10), 2).collect()
        snap = ctx.metrics.snapshot()
        assert len(snap.histogram(MetricsRegistry.JOB_SECONDS)) == 1
        assert len(snap.histogram(MetricsRegistry.TASK_SECONDS)) == 2

    def test_shuffle_span_and_histogram(self):
        ctx = EngineContext()
        tracer = Tracer()
        ctx.install_tracer(tracer)
        ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        shuffles = tracer.find("engine.shuffle")
        assert len(shuffles) == 1
        assert shuffles[0].attributes["records"] == 3
        snap = ctx.metrics.snapshot()
        assert snap.histogram(MetricsRegistry.SHUFFLE_RECORDS) == (3.0,)

    def test_disabled_tracer_records_nothing(self):
        ctx = EngineContext()
        ctx.parallelize(range(10), 2).collect()
        assert len(NULL_TRACER) == 0


# ---------------------------------------------------------------------------
# Session integration: phases + audit trail
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def observed_session():
    from repro.core.session import UPAConfig, UPASession
    from repro.dp.budget import PrivacyAccountant
    from repro.workloads import workload_by_name

    workload = workload_by_name("tpch1")
    tables = workload.make_tables(300, 0)
    tracer = Tracer()
    ledger = PrivacyLedger()
    accountant = PrivacyAccountant(total_epsilon=10.0)
    session = UPASession(
        UPAConfig(epsilon=1.0, sample_size=50, seed=1, answer_cache=True),
        accountant=accountant,
        tracer=tracer,
        ledger=ledger,
    )
    result = session.run(workload.query, tables)
    cached = session.run(workload.query, tables)  # answer-cache hit
    return session, tracer, ledger, result, cached


class TestSessionObservability:
    def test_all_five_phases_traced(self, observed_session):
        _, tracer, _, _, _ = observed_session
        phase_names = [s.name for s in tracer.phase_spans()]
        assert phase_names == list(PHASE_ORDER)

    def test_phases_nest_under_run_span(self, observed_session):
        _, tracer, _, _, _ = observed_session
        run = tracer.find("upa.run")[0]
        for span in tracer.phase_spans():
            assert span.parent_id == run.span_id

    def test_engine_jobs_nest_under_map_phase(self, observed_session):
        _, tracer, _, _, _ = observed_session
        map_phase = tracer.find("phase:map")[0]
        jobs = tracer.find("engine.job")
        assert jobs and all(j.parent_id == map_phase.span_id for j in jobs)

    def test_ledger_audit_fields(self, observed_session):
        _, _, ledger, result, _ = observed_session
        entry = ledger.entries()[0]
        assert entry.query == "tpch1"
        assert entry.epsilon_charged == 1.0
        assert entry.mechanism == "laplace"
        assert entry.sample_size == 50
        inferred = result.inferred_range
        assert entry.fitted_mean == tuple(float(v) for v in
                                          np.atleast_1d(inferred.mean))
        assert entry.fitted_std == tuple(float(v) for v in
                                         np.atleast_1d(inferred.std))
        assert entry.range_lower == tuple(float(v) for v in
                                          np.atleast_1d(inferred.lower))
        assert entry.range_upper == tuple(float(v) for v in
                                          np.atleast_1d(inferred.upper))
        assert entry.local_sensitivity == result.local_sensitivity
        assert entry.clamped == result.enforcement.clamped
        assert entry.records_removed == result.enforcement.records_removed
        assert entry.elapsed_seconds > 0

    def test_ledger_tracks_accountant_balance(self, observed_session):
        session, _, ledger, _, _ = observed_session
        entry = ledger.entries()[0]
        assert entry.accountant_spent_epsilon == pytest.approx(1.0)
        assert entry.accountant_remaining_epsilon == pytest.approx(9.0)

    def test_cache_hit_audited_without_spend(self, observed_session):
        _, _, ledger, result, cached = observed_session
        assert len(ledger) == 2
        hit = ledger.entries()[1]
        assert hit.cache_hit is True
        assert hit.epsilon_charged == 0.0
        assert np.allclose(cached.noisy_output, result.noisy_output)
        totals = ledger.totals()
        assert totals["epsilon_charged"] == pytest.approx(1.0)
        assert totals["cache_hits"] == 1

    def test_session_auto_installs_tracer_into_engine(self, observed_session):
        session, tracer, _, _, _ = observed_session
        assert session.engine.tracer is tracer
        assert session.engine.job_listener is not None

    def test_session_without_obs_stays_null(self):
        from repro.core.session import UPAConfig, UPASession
        from repro.workloads import workload_by_name

        workload = workload_by_name("tpch1")
        tables = workload.make_tables(200, 0)
        session = UPASession(UPAConfig(sample_size=30, seed=2))
        session.run(workload.query, tables)
        assert session.tracer is NULL_TRACER
        assert session.ledger is None
        assert session.engine.tracer is NULL_TRACER

    def test_session_follows_ambient_tracer(self):
        from repro.core.session import UPAConfig, UPASession
        from repro.workloads import workload_by_name

        workload = workload_by_name("tpch1")
        tables = workload.make_tables(200, 0)
        session = UPASession(UPAConfig(sample_size=30, seed=2))
        tracer = Tracer()
        with use_tracer(tracer):
            session.run(workload.query, tables)
        assert len(tracer.find("upa.run")) == 1

    def test_neighbour_batch_histogram(self, observed_session):
        session, _, _, _, _ = observed_session
        values = session.engine.metrics.snapshot().histogram(
            MetricsRegistry.NEIGHBOUR_BATCH
        )
        assert values and all(v == 50.0 for v in values)


# ---------------------------------------------------------------------------
# ObservedRun report
# ---------------------------------------------------------------------------


class TestObservedRun:
    def test_run_header_contents(self):
        header = run_header(epsilon=0.1, seed=3)
        assert header["epsilon"] == 0.1 and header["seed"] == 3
        assert "repro_version" in header and "python_version" in header

    def test_from_live(self, observed_session):
        session, tracer, ledger, _, _ = observed_session
        observed = ObservedRun.from_live(
            tracer, session.engine.metrics.snapshot(), ledger
        )
        stats = observed.phase_stats()
        assert [s.name for s in stats] == list(PHASE_ORDER)
        assert all(s.count == 1 for s in stats)
        assert observed.ledger_totals["entries"] == 2
        assert "task_seconds" in observed.histogram_summaries()

    def test_phase_stats_canonical_order(self):
        observed = ObservedRun(span_durations=[
            ("phase:noise", 0.1), ("phase:map", 0.2), ("other", 0.3),
        ])
        assert [s.name for s in observed.phase_stats()] == [
            "phase:map", "phase:noise",
        ]

    def test_span_stats_aggregate(self):
        observed = ObservedRun(span_durations=[
            ("a", 1.0), ("a", 3.0), ("b", 2.0),
        ])
        by_name = {s.name: s for s in observed.span_stats()}
        assert by_name["a"].count == 2
        assert by_name["a"].total_seconds == 4.0
        assert by_name["a"].mean_seconds == 2.0
        assert by_name["a"].max_seconds == 3.0
        assert by_name["b"].count == 1

    def test_render_text_empty(self):
        assert "nothing to report" in ObservedRun().render_text()

    def test_render_json_round_trips(self, observed_session):
        session, tracer, ledger, _, _ = observed_session
        observed = ObservedRun.from_live(
            tracer, session.engine.metrics.snapshot(), ledger
        )
        payload = json.loads(observed.render_json())
        assert len(payload["phases"]) == 5
        assert payload["ledger"]["totals"]["entries"] == 2

    def test_from_artifacts_round_trip(self, tmp_path, observed_session):
        _, tracer, ledger, _, _ = observed_session
        trace_path = tmp_path / "t.json"
        ledger_path = tmp_path / "l.jsonl"
        tracer.write_chrome_trace(str(trace_path))
        ledger.write_jsonl(str(ledger_path))
        observed = ObservedRun.from_artifacts(
            trace_path=str(trace_path), ledger_path=str(ledger_path)
        )
        assert [s.name for s in observed.phase_stats()] == list(PHASE_ORDER)
        assert observed.ledger_totals["entries"] == 2
        text = observed.render_text()
        assert "pipeline phases" in text
        assert "privacy ledger totals" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestObservabilityCLI:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_run_writes_trace_and_ledger(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        ledger_path = tmp_path / "l.jsonl"
        assert main([
            "run", "tpch1", "--scale", "300", "--sample-size", "50",
            "--trace", str(trace_path), "--ledger", str(ledger_path),
            "--events",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert "privacy ledger written" in out
        assert "stage=" in out  # --events summary

        with open(trace_path) as handle:
            doc = json.load(handle)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert set(PHASE_ORDER) <= names
        assert doc["metadata"]["workload"] == "tpch1"
        assert "repro_version" in doc["metadata"]

        ledger = PrivacyLedger.read_jsonl(str(ledger_path))
        assert len(ledger) == 1
        entry = ledger.entries()[0]
        assert entry.query == "tpch1"
        assert entry.fitted_mean and entry.fitted_std
        assert entry.range_lower and entry.range_upper
        assert entry.local_sensitivity > 0

    def test_run_sql_traces_compilation(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main([
            "run-sql", "SELECT COUNT(*) AS n FROM lineitem",
            "--protect", "lineitem", "--scale", "300",
            "--trace", str(trace_path),
        ]) == 0
        with open(trace_path) as handle:
            doc = json.load(handle)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "sqlbridge.compile" in names
        assert set(PHASE_ORDER) <= names

    def test_compare_traces_baselines(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main([
            "compare", "tpch1", "--scale", "300",
            "--trace", str(trace_path),
        ]) == 0
        with open(trace_path) as handle:
            doc = json.load(handle)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "baseline.bruteforce" in names
        assert "baseline.flex" in names
        assert set(PHASE_ORDER) <= names  # all in ONE comparable trace

    def test_report_from_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        ledger_path = tmp_path / "l.jsonl"
        main([
            "run", "tpch1", "--scale", "300", "--sample-size", "50",
            "--trace", str(trace_path), "--ledger", str(ledger_path),
        ])
        capsys.readouterr()
        assert main([
            "report", "--trace", str(trace_path),
            "--ledger", str(ledger_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "pipeline phases" in out
        assert "phase:partition_sample" in out
        assert "privacy ledger totals" in out

        assert main([
            "report", "--trace", str(trace_path),
            "--ledger", str(ledger_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["phases"]) == 5

    def test_report_requires_artifacts(self, capsys):
        assert main(["report"]) == 2
        assert "pass --trace" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", "--trace",
                     str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# upalint UPA011
# ---------------------------------------------------------------------------


class TestUPA011ObserverInMonoid:
    def _check(self, query_cls):
        from repro.staticcheck.purity import check_query

        return [d for d in check_query(query_cls) if d.code == "UPA011"]

    def test_trace_call_in_mapper_flagged(self):
        from repro.core.query import MapReduceQuery

        class TracedMapper(MapReduceQuery):
            name = "traced"
            protected_table = "t"

            def map_record(self, record, aux):
                with trace("per-record"):
                    return record["v"]

            def zero(self):
                return 0.0

            def combine(self, a, b):
                return a + b

            def finalize(self, agg, aux):
                return np.array([agg])

        findings = self._check(TracedMapper)
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"
        assert "map_record" in findings[0].message

    def test_qualified_obs_call_flagged(self):
        from repro.core.query import MapReduceQuery

        class QualifiedObs(MapReduceQuery):
            name = "qualified"
            protected_table = "t"

            def combine(self, a, b):
                import repro.obs as obs

                obs.get_tracer()
                return a + b

        findings = self._check(QualifiedObs)
        assert len(findings) == 1
        assert "combine" in findings[0].message

    def test_trace_decorator_flagged(self):
        from repro.core.query import MapReduceQuery

        class DecoratedFinalize(MapReduceQuery):
            name = "decorated"
            protected_table = "t"

            @trace("finalize")
            def finalize(self, agg, aux):
                return np.array([agg])

        findings = self._check(DecoratedFinalize)
        assert len(findings) == 1
        assert "decorated with" in findings[0].message

    def test_clean_query_not_flagged(self):
        from repro.tpch.workload import query_by_name

        assert self._check(type(query_by_name("tpch1"))) == []

    def test_registry_has_upa011(self):
        from repro.staticcheck.diagnostics import CODE_REGISTRY, Severity

        info = CODE_REGISTRY["UPA011"]
        assert info.title == "observer-in-monoid"
        assert info.default_severity == Severity.WARNING
