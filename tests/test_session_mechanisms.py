"""Tests for the mechanism choice in UPASession (Laplace vs Gaussian)."""

import numpy as np
import pytest

from repro.common.errors import DPError, PrivacyBudgetExceeded
from repro.core import UPAConfig, UPASession
from repro.dp import PrivacyAccountant
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import query_by_name


@pytest.fixture(scope="module")
def tables():
    return TPCHGenerator(TPCHConfig(scale_rows=1500, seed=6)).generate()


class TestMechanismChoice:
    def test_invalid_mechanism_rejected(self):
        with pytest.raises(DPError):
            UPAConfig(mechanism="exponential")

    def test_gaussian_runs(self, tables):
        session = UPASession(
            UPAConfig(sample_size=60, seed=1, mechanism="gaussian",
                      delta=1e-6)
        )
        result = session.run(query_by_name("tpch1"), tables, epsilon=0.5)
        assert np.isfinite(result.noisy_scalar())

    def test_gaussian_charges_delta(self, tables):
        accountant = PrivacyAccountant(total_epsilon=1.0, total_delta=1.5e-6)
        session = UPASession(
            UPAConfig(sample_size=60, seed=1, mechanism="gaussian",
                      delta=1e-6),
            accountant=accountant,
        )
        session.run(query_by_name("tpch1"), tables, epsilon=0.3)
        _eps, delta = accountant.spent()
        assert delta == pytest.approx(1e-6)
        with pytest.raises(PrivacyBudgetExceeded):
            session.run(query_by_name("tpch1"), tables, epsilon=0.3)

    def test_laplace_charges_no_delta(self, tables):
        accountant = PrivacyAccountant(total_epsilon=1.0, total_delta=0.0)
        session = UPASession(
            UPAConfig(sample_size=60, seed=1), accountant=accountant
        )
        session.run(query_by_name("tpch1"), tables, epsilon=0.3)
        assert accountant.spent()[1] == 0.0

    def test_noise_reproducible_per_mechanism(self, tables):
        def release(mechanism):
            session = UPASession(
                UPAConfig(sample_size=60, seed=9, mechanism=mechanism)
            )
            return session.run(
                query_by_name("tpch1"), tables, epsilon=0.5
            ).noisy_scalar()

        assert release("laplace") == release("laplace")
        assert release("gaussian") == release("gaussian")
        assert release("laplace") != release("gaussian")

    def test_gaussian_epsilon_must_be_subunit(self, tables):
        session = UPASession(
            UPAConfig(sample_size=60, seed=1, mechanism="gaussian")
        )
        with pytest.raises(DPError):
            session.run(query_by_name("tpch1"), tables, epsilon=2.0)
